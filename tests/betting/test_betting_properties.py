"""Property-based tests for the betting engine (hypothesis)."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.betting import (
    BettingRule,
    breaks_even_analytic,
    constant_strategy,
    expected_winnings,
    is_safe_analytic,
    refuting_strategy,
)
from repro.core import opponent_assignment
from repro.testing import parity_fact, random_psys

SLOW = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

seeds = st.integers(0, 100)
alphas = st.sampled_from(
    [Fraction(1, 4), Fraction(1, 3), Fraction(1, 2), Fraction(2, 3), Fraction(1)]
)
profiles = st.sampled_from([("clock", "full"), ("parity", "full"), ("full", "clock")])


def build(seed, profile):
    return random_psys(seed, depth=2, observability=profile)


@SLOW
@given(seeds, profiles, alphas)
def test_safety_is_monotone_in_alpha(seed, profile, alpha):
    """If Bet(phi, alpha) is safe, any lower threshold is safe too."""
    psys = build(seed, profile)
    pa = opponent_assignment(psys, 1)
    fact = parity_fact()
    point = psys.system.points[0]
    if is_safe_analytic(pa, 0, point, fact, alpha):
        for lower in (alpha / 2, alpha / 3):
            if lower > 0:
                assert is_safe_analytic(pa, 0, point, fact, lower)


@SLOW
@given(seeds, profiles, alphas)
def test_refuting_strategy_agrees_with_safety(seed, profile, alpha):
    """A refuting strategy exists iff the analytic safety check fails."""
    psys = build(seed, profile)
    pa = opponent_assignment(psys, 1)
    fact = parity_fact()
    for point in list(psys.system.points)[::5]:
        safe = is_safe_analytic(pa, 0, point, fact, alpha)
        witness = refuting_strategy(pa, 0, 1, point, fact, alpha)
        assert safe == (witness is None)


@SLOW
@given(seeds, profiles, alphas)
def test_refuting_strategy_actually_loses(seed, profile, alpha):
    """Whenever a refutation exists, it yields negative expected winnings."""
    psys = build(seed, profile)
    pa = opponent_assignment(psys, 1)
    fact = parity_fact()
    rule = BettingRule(fact, alpha)
    for point in list(psys.system.points)[::5]:
        witness = refuting_strategy(pa, 0, 1, point, fact, alpha)
        if witness is None:
            continue
        losses = [
            expected_winnings(pa.space(0, candidate), rule.winnings(witness))
            for candidate in psys.system.knowledge_set(0, point)
        ]
        assert min(losses) < 0


@SLOW
@given(seeds, profiles)
def test_fair_odds_break_even_exactly(seed, profile):
    """Offering 1/p for an event of measurable probability p is exactly fair."""
    psys = build(seed, profile)
    pa = opponent_assignment(psys, 1)
    fact = parity_fact()
    for point in list(psys.system.points)[::5]:
        space = pa.space(0, point)
        event = fact.restricted_to(pa.sample_space(0, point))
        if not space.is_measurable(event):
            continue
        probability = space.measure(event)
        if probability == 0:
            continue
        rule = BettingRule(fact, probability)
        value = expected_winnings(
            space, rule.winnings(constant_strategy(1, 1 / probability))
        )
        assert value == 0


@SLOW
@given(seeds, profiles, alphas)
def test_break_even_matches_inner_probability(seed, profile, alpha):
    """The analytic break-even test is exactly the inner-measure threshold."""
    psys = build(seed, profile)
    pa = opponent_assignment(psys, 1)
    fact = parity_fact()
    for point in list(psys.system.points)[::7]:
        expected = pa.inner_probability(0, point, fact) >= alpha
        assert breaks_even_analytic(pa, 0, point, fact, alpha) == expected
