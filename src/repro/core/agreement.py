"""Aumann's agreement theorem, executable (Appendix B.3's closing remark).

The appendix observes that if the betting dialogue continues until the
offered odds stabilise, Aumann's theorem [Aum76] applies: rational agents
with a common prior "cannot agree to disagree" -- if their posterior
probabilities for a fact are common knowledge, the posteriors are equal.

Our systems provide exactly Aumann's setting once we fix a computation tree
and a time ``k`` in a synchronous system: the state space is the set of
time-``k`` points, the common prior is the tree's run measure, each agent's
information partition is its knowledge partition restricted to the slice,
and the posterior is ``P_post``.  The *meet* (finest common coarsening) of
the partitions is the carrier of common knowledge; the theorem says that on
any meet cell where every agent's posterior is constant, all those
constants coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import ModelError
from .assignments import ProbabilityAssignment
from .facts import Fact
from .model import Point
from .standard import PostAssignment

if TYPE_CHECKING:
    # Annotation-only: core sits below trees in the import DAG (RL002).
    from ..trees.probabilistic_system import ProbabilisticSystem
    from ..trees.tree import ComputationTree

PointSet = FrozenSet[Point]


def knowledge_partition(
    psys: ProbabilisticSystem, agent: int, slice_points: Sequence[Point]
) -> List[PointSet]:
    """The agent's information partition restricted to a point slice.

    This is the partition Aumann's setting [Aum76] (Appendix B.3's closing
    remark) requires of each agent.  The slice must be closed under the
    agent's indistinguishability (true for time slices of a synchronous
    system).
    """
    slice_set = frozenset(slice_points)
    cells: List[PointSet] = []
    seen: set = set()
    for point in slice_points:
        if point in seen:
            continue
        cell = psys.system.knowledge_set(agent, point)
        if not cell <= slice_set:
            raise ModelError(
                "slice is not closed under the agent's indistinguishability; "
                "use a time slice of a synchronous system"
            )
        cells.append(cell)
        seen |= cell
    return cells


def meet_partition(partitions: Sequence[Sequence[PointSet]]) -> List[PointSet]:
    """The meet: the finest partition coarser than every given partition.

    The meet is the carrier of common knowledge in Aumann's theorem
    [Aum76] (Appendix B.3).  Its cells are the connected components of the
    graph joining any two points that share a cell in *some* partition --
    exactly the reachability notion underlying common knowledge (HM90).
    """
    parent: Dict[Point, Point] = {}

    def find(point: Point) -> Point:
        root = point
        while parent[root] != root:
            root = parent[root]
        while parent[point] != root:
            parent[point], point = root, parent[point]
        return root

    def union(first: Point, second: Point) -> None:
        parent[find(first)] = find(second)

    for partition in partitions:
        for cell in partition:
            for point in cell:
                parent.setdefault(point, point)
    for partition in partitions:
        for cell in partition:
            members = list(cell)
            for other in members[1:]:
                union(members[0], other)
    components: Dict[Point, set] = {}
    for point in parent:
        components.setdefault(find(point), set()).add(point)
    return [frozenset(component) for component in components.values()]


@dataclass
class AgreementReport:
    """Outcome of checking Aumann's theorem on one time slice."""

    holds: bool
    slice_size: int
    meet_cells: int
    disagreements: List[Tuple[PointSet, Dict[int, Fraction]]]


def aumann_agreement(
    psys: ProbabilisticSystem,
    tree: ComputationTree,
    time: int,
    group: Sequence[int],
    fact: Fact,
    assignment: Optional[ProbabilityAssignment] = None,
) -> AgreementReport:
    """Check Aumann's agreement theorem [Aum76] on one tree's time-``k``
    slice, as suggested by the closing remark of Appendix B.3.

    For every meet cell on which each group member's posterior probability
    of ``fact`` is constant (i.e. the posteriors are common knowledge
    there), those constants must all be equal.  Returns the verification
    report; ``disagreements`` is empty exactly when the theorem holds.
    """
    psys.system.require_synchronous()
    posterior = assignment or ProbabilityAssignment(PostAssignment(psys))
    slice_points = [point for point in tree.points if point.time == time]
    if not slice_points:
        raise ModelError(f"tree has no points at time {time}")
    partitions = [
        knowledge_partition(psys, agent, slice_points) for agent in group
    ]
    meet = meet_partition(partitions)
    disagreements: List[Tuple[PointSet, Dict[int, Fraction]]] = []
    for cell in meet:
        constants: Dict[int, Fraction] = {}
        all_constant = True
        for agent in group:
            values = {
                posterior.inner_probability(agent, point, fact) for point in cell
            }
            if len(values) == 1:
                constants[agent] = values.pop()
            else:
                all_constant = False
        if all_constant and len(set(constants.values())) > 1:
            disagreements.append((cell, constants))
    return AgreementReport(
        holds=not disagreements,
        slice_size=len(slice_points),
        meet_cells=len(meet),
        disagreements=disagreements,
    )


@dataclass
class DialogueRound:
    """One round of the posterior-announcement dialogue."""

    speaker: int
    announced: Fraction
    partitions_after: Dict[int, int]  # agent -> number of cells


@dataclass
class DialogueResult:
    """Outcome of :func:`agreement_dialogue`."""

    rounds: List[DialogueRound]
    final_posteriors: Dict[int, Fraction]
    agreed: bool


def agreement_dialogue(
    psys: ProbabilisticSystem,
    tree: ComputationTree,
    time: int,
    agents: Sequence[int],
    fact: Fact,
    start: Point,
    max_rounds: int = 32,
) -> DialogueResult:
    """The Geanakoplos-Polemarchakis announcement process behind Appendix
    B.3's closing remark.

    Agents take turns announcing their current posterior for ``fact``.
    Each announcement is public, so every listener refines its information
    partition by the set of points where the speaker would have announced
    that same value.  With a common prior (the tree's run measure) the
    process converges, and at convergence the posteriors are common
    knowledge -- hence, by Aumann's theorem, equal: "rational agents cannot
    agree to disagree".

    Returns the round-by-round transcript and the final posteriors at the
    ``start`` point.
    """
    psys.system.require_synchronous()
    slice_points = [point for point in tree.points if point.time == time]
    if start not in slice_points:
        raise ModelError("start point must lie on the chosen slice")
    prior_space = tree.run_space()
    total = prior_space.measure(prior_space.outcomes)

    def point_mass(point: Point) -> Fraction:
        return prior_space.measure({point.run}) / total

    fact_points = {point for point in slice_points if fact.holds_at(point)}

    def posterior(cell: PointSet) -> Fraction:
        weight = sum((point_mass(point) for point in cell), Fraction(0))
        if weight == 0:
            raise ModelError("zero-prior cell in the dialogue")
        hit = sum((point_mass(point) for point in cell if point in fact_points), Fraction(0))
        return hit / weight

    # current information: per agent, the partition of the slice
    partitions: Dict[int, List[PointSet]] = {
        agent: knowledge_partition(psys, agent, slice_points) for agent in agents
    }

    def cell_of(agent: int, point: Point) -> PointSet:
        return next(cell for cell in partitions[agent] if point in cell)

    rounds: List[DialogueRound] = []
    stable = 0
    turn = 0
    last_announced: Dict[int, Optional[Fraction]] = {agent: None for agent in agents}
    while stable < len(agents) and len(rounds) < max_rounds:
        speaker = agents[turn % len(agents)]
        value = posterior(cell_of(speaker, start))
        # the event "speaker announces `value`": all points whose speaker
        # cell has that posterior
        announcement = frozenset(
            point
            for cell in partitions[speaker]
            if posterior(cell) == value
            for point in cell
        )
        for agent in agents:
            refined: List[PointSet] = []
            for cell in partitions[agent]:
                inside = cell & announcement
                outside = cell - announcement
                if inside:
                    refined.append(inside)
                if outside:
                    refined.append(outside)
            partitions[agent] = refined
        if last_announced[speaker] == value:
            stable += 1
        else:
            stable = 1
        last_announced[speaker] = value
        rounds.append(
            DialogueRound(
                speaker=speaker,
                announced=value,
                partitions_after={agent: len(partitions[agent]) for agent in agents},
            )
        )
        turn += 1
    final = {agent: posterior(cell_of(agent, start)) for agent in agents}
    return DialogueResult(
        rounds=rounds,
        final_posteriors=final,
        agreed=len(set(final.values())) == 1,
    )


def common_knowledge_of_posteriors(
    psys: ProbabilisticSystem,
    tree: ComputationTree,
    time: int,
    group: Sequence[int],
    fact: Fact,
    point: Point,
    assignment: Optional[ProbabilityAssignment] = None,
) -> bool:
    """Is the profile of posteriors at ``point`` common knowledge there?

    True iff every agent's posterior is constant on the meet cell containing
    the point -- the hypothesis of Aumann's theorem [Aum76] (Appendix B.3)
    at a specific point.
    """
    posterior = assignment or ProbabilityAssignment(PostAssignment(psys))
    slice_points = [candidate for candidate in tree.points if candidate.time == time]
    partitions = [knowledge_partition(psys, agent, slice_points) for agent in group]
    meet = meet_partition(partitions)
    cell = next(cell for cell in meet if point in cell)
    for agent in group:
        values = {posterior.inner_probability(agent, member, fact) for member in cell}
        if len(values) != 1:
            return False
    return True
