"""Cross-process telemetry: shipped deltas sum exactly, results unchanged.

The worker-shipping layer (``ObsDeltaCapture`` in the engine's
``_execute_task`` and ``parallel_map``'s envelopes) claims two exact
invariants:

1. **Byte-identical results** -- turning telemetry on changes counters,
   never rows.
2. **Exact accounting** -- after a pool sweep, every parent-side merged
   counter equals the sum of the per-attempt deltas the workers shipped
   (readable back out of the ``worker_obs_delta`` events), and the
   parent's :func:`repro.probability.kernel_totals` equals the sum of
   the shipped kernel deltas.  Kills and retries must not double-count:
   a killed worker ships no envelope, so its partial work is *lost*, not
   counted twice.

The chaos differential here drives both through the seeded fault
harness.  Pool-dependent assertions are skipped when the sandbox forces
the in-process fallback (``engine.pool_fallbacks``) -- the serial path
records directly to the parent recorder and ships nothing, by design.
"""

import os
from fractions import Fraction

import pytest

from repro.attack.parallel import parallel_map
from repro.attack.sweep import sweep_row_of, sweep_tasks
from repro.obs import MetricsRecorder, MultiRecorder, Recorder, use_recorder
from repro.probability import kernel_totals, reset_kernel_totals
from repro.robustness import RetryPolicy, run_tasks
from repro.testing import FaultInjectingTask, FaultPlan

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]
POLICY = RetryPolicy(max_attempts=5, base_delay=0.0, seed=11)


class _EventLog(Recorder):
    """Keeps every event's fields (MetricsRecorder only counts them)."""

    def __init__(self):
        self.events = []

    def event(self, kind, **fields):
        self.events.append((kind, fields))


@pytest.fixture(autouse=True)
def _clean_kernel_totals():
    reset_kernel_totals()
    yield
    reset_kernel_totals()


def _pool_sweep(plan=None, max_workers=2):
    """Instrumented pool sweep; returns (tasks, rows, metrics, event log)."""
    tasks = sweep_tasks(MESSENGERS, LOSSES)
    function = sweep_row_of if plan is None else FaultInjectingTask(sweep_row_of, plan)
    metrics = MetricsRecorder()
    log = _EventLog()
    with use_recorder(MultiRecorder([metrics, log])):
        rows = run_tasks(
            function,
            tasks,
            max_workers=max_workers,
            policy=POLICY,
            sleep=lambda _seconds: None,
        )
    return tasks, rows, metrics, log


def _worker_delta_events(log):
    return [fields for kind, fields in log.events if kind == "worker_obs_delta"]


def _sum_shipped(events, section):
    totals = {}
    for fields in events:
        for name, value in fields.get(section, {}).items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def _skip_if_no_pool(metrics):
    if metrics.counters.get("engine.pool_fallbacks"):
        pytest.skip("process pools unavailable; serial path ships nothing")


class TestByteIdenticalResults:
    def test_shipping_on_vs_off(self):
        baseline_tasks, baseline_rows, _metrics, _log = _pool_sweep()
        # Uninstrumented run: no recorder installed at all.
        uninstrumented_rows = run_tasks(
            sweep_row_of,
            sweep_tasks(MESSENGERS, LOSSES),
            max_workers=2,
            policy=POLICY,
            sleep=lambda _seconds: None,
        )
        serial_rows = [sweep_row_of(task) for task in baseline_tasks]
        assert baseline_rows == serial_rows
        assert uninstrumented_rows == serial_rows


class TestExactAccounting:
    def test_parent_counters_equal_shipped_delta_sums(self):
        _tasks, _rows, metrics, log = _pool_sweep()
        _skip_if_no_pool(metrics)
        events = _worker_delta_events(log)
        assert events, "pool sweep shipped no deltas"

        shipped_counters = _sum_shipped(events, "counters")
        for name, total in shipped_counters.items():
            assert metrics.counters[name] == total, name
        # The per-worker attribution is the same numbers, re-keyed.
        for fields in events:
            worker = fields["worker"]
            assert worker != os.getpid()
            for name, value in fields.get("counters", {}).items():
                assert metrics.counters[f"worker.{worker}.{name}"] >= value

    def test_parent_kernel_totals_equal_shipped_kernel_sums(self):
        tasks, _rows, metrics, log = _pool_sweep()
        _skip_if_no_pool(metrics)
        shipped_kernel = _sum_shipped(_worker_delta_events(log), "kernel_totals")
        parent = {name: value for name, value in kernel_totals().items() if value}
        assert parent == {name: value for name, value in shipped_kernel.items() if value}
        # And the merged whole equals a serial rerun of the same tasks.
        reset_kernel_totals()
        for task in tasks:
            sweep_row_of(task)
        serial = {name: value for name, value in kernel_totals().items() if value}
        assert parent == serial

    def test_chaos_kills_and_retries_do_not_double_count(self):
        plan = FaultPlan.from_seed(
            seed=23, task_count=6, kinds=("raise", "kill"), rate=0.6,
            max_faulty_attempts=3,
        )
        tasks, rows, metrics, log = _pool_sweep(plan=plan)
        # Chaos never changes results.
        assert rows == [sweep_row_of(task) for task in tasks]
        reset_kernel_totals()
        _skip_if_no_pool(metrics)

        events = _worker_delta_events(log)
        # Exactly one shipped envelope per *harvested* attempt: ok and
        # raised outcomes came back inside an envelope (with its delta),
        # while killed workers -- and tasks lost with a broken pool --
        # ship nothing: their partial work is lost, never double-counted.
        kinds = {fault.kind for fault in plan.schedule.values()}
        assert {"raise", "kill"} <= kinds, "seed no longer exercises both kinds"
        harvested = metrics.counters["engine.tasks_ok"] + metrics.counters.get(
            "engine.raised", 0
        )
        assert len(events) == harvested
        assert metrics.counters.get("engine.worker_lost", 0) > 0, (
            "no kill actually fired; the chaos run proved nothing"
        )
        assert metrics.counters["engine.attempts"] > harvested

        # Parent counters still equal the shipped sums exactly.
        shipped_counters = _sum_shipped(events, "counters")
        for name, total in shipped_counters.items():
            assert metrics.counters[name] == total, name

    def test_parallel_map_merges_envelopes(self):
        metrics = MetricsRecorder()
        log = _EventLog()
        with use_recorder(MultiRecorder([metrics, log])):
            results = parallel_map(sweep_row_of, sweep_tasks(MESSENGERS, LOSSES))
        if metrics.counters.get("parallel.pool_fallbacks"):
            pytest.skip("process pools unavailable; serial path ships nothing")
        assert results == [sweep_row_of(task) for task in sweep_tasks(MESSENGERS, LOSSES)]
        events = _worker_delta_events(log)
        assert len(events) == len(results)
        shipped = _sum_shipped(events, "counters")
        for name, total in shipped.items():
            assert metrics.counters[name] == total, name


class TestProgressEvents:
    def test_cadence_and_final_forced_emit(self):
        log = _EventLog()
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        with use_recorder(log):
            run_tasks(
                sweep_row_of,
                tasks,
                max_workers=1,
                progress_every=2,
                sleep=lambda _seconds: None,
            )
        progress = [fields for kind, fields in log.events if kind == "sweep_progress"]
        assert [fields["done"] for fields in progress] == [0, 2, 4, 6]
        for fields in progress:
            assert fields["total"] == len(tasks)
            assert fields["retries"] == 0
            assert fields["elapsed_seconds"] >= 0.0
        assert progress[-1]["done"] == len(tasks)

    def test_progress_every_must_be_positive(self):
        with pytest.raises(ValueError):
            run_tasks(sweep_row_of, sweep_tasks(MESSENGERS, LOSSES), progress_every=0)

    def test_no_events_without_opt_in(self):
        metrics = MetricsRecorder()
        with use_recorder(metrics):
            run_tasks(
                sweep_row_of,
                sweep_tasks(MESSENGERS, LOSSES),
                max_workers=1,
                sleep=lambda _seconds: None,
            )
        assert "event:sweep_progress" not in metrics.counters
