"""Finite probability spaces with exact rational measures.

:class:`FiniteProbabilitySpace` is the workhorse of the whole reproduction:
the probability space on the runs of a computation tree (Section 3), the
induced space on the points of a sample-space assignment (Section 5), and
every conditional space the paper constructs are all instances.

A space is a triple ``(S, X, mu)`` exactly as in the paper: a finite sample
space ``S``, a sigma-algebra ``X`` represented by its atom partition, and a
measure ``mu`` given by one exact :class:`~fractions.Fraction` per atom.
Inner and outer measures (Section 5) and the two-valued inner/outer
expectations of Appendix B.2 are first-class operations.

Three measure engines back the set-algebra kernels (see
:mod:`repro.probability.bitset`): the default **bitmask** engine indexes
outcomes to bit positions at construction, turning every atom/event test
into integer bitwise operations with an LRU-cached ``mask -> (inner,
outer)`` table; the **wordarray** engine keeps that index and cache but
answers cache misses with the vectorized numpy kernels of
:mod:`repro.probability.wordmask` (built for >=100k-point systems, and
notably *without* materialising per-atom masks, whose powerset cost is
quadratic in the point count); and the retained **naive** engine scans
frozensets as the original implementation did.  All three compute
identical exact Fractions; the ``*_naive`` kernels stay public for
differential tests and the ablation benchmark
(``benchmarks/bench_ablation_bitset.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

from ..errors import (
    BackendError,
    InvalidMeasureError,
    NotMeasurableError,
    ZeroMeasureConditioningError,
)
from .algebra import Atom, check_partition, restrict_partition
from .bitset import (
    IntervalCache,
    OutcomeIndex,
    count_naive_query,
    get_default_backend,
)
from .fractionutil import ONE, ZERO, FractionLike, as_fraction

Outcome = Hashable
Event = FrozenSet[Outcome]
RandomVariable = Callable[[Outcome], Fraction]


def _gcd(a: int, b: int) -> int:
    """Euclid on nonnegative ints (RL001 bans ``math`` imports here)."""
    while b:
        a, b = b, a % b
    return a


@dataclass(frozen=True)
class CellMeasure:
    """One sigma-algebra atom's relation to an event, with its exact measure.

    The provenance layer (``Model.explain``) reports the Section 5
    inner/outer computation cell by cell: ``contained`` atoms contribute
    to the inner measure ``mu_*``, ``overlapping`` atoms to the outer
    measure ``mu^*``, and the measures are exact Fractions throughout.
    """

    outcomes: FrozenSet[Outcome]
    measure: Fraction
    contained: bool
    overlapping: bool


class FiniteProbabilitySpace:
    """A probability space ``(S, X, mu)`` over a finite sample space.

    Parameters
    ----------
    atoms:
        The atom partition of the sigma-algebra ``X``.  A subset of ``S`` is
        measurable iff it is a union of atoms.
    atom_probabilities:
        A mapping from each atom to its probability.  Probabilities must be
        nonnegative and sum to exactly one.

    Most callers use the classmethod constructors:
    :meth:`from_point_masses` (full powerset algebra),
    :meth:`uniform`, or :meth:`from_atoms`.
    """

    __slots__ = (
        "_atoms",
        "_probabilities_dict",
        "_outcomes",
        "_atom_of_dict",
        "_backend",
        "_index",
        "_atom_masks",
        "_atom_weights",
        "_weight_denominator",
        "_interval_cache",
        "_word_kernel",
        "_cache_maxsize",
    )

    #: Default bound on the per-space LRU cache of ``event mask ->
    #: (inner, outer, contained)`` entries (bitmask/wordarray backends).
    #: Overridable per space via ``interval_cache_maxsize``.
    interval_cache_size = 4096

    def __init__(
        self,
        atoms: Iterable[Atom],
        atom_probabilities: Mapping[Atom, FractionLike],
        interval_cache_maxsize: Optional[int] = None,
    ) -> None:
        atom_tuple = tuple(frozenset(atom) for atom in atoms)
        outcomes = frozenset().union(*atom_tuple) if atom_tuple else frozenset()
        self._atoms: Tuple[Atom, ...] = check_partition(outcomes, atom_tuple)
        self._outcomes: Event = outcomes
        self._check_measure(atom_probabilities)
        self._finalise(cache_maxsize=interval_cache_maxsize)

    def _check_measure(self, atom_probabilities: Mapping[Atom, FractionLike]) -> None:
        probabilities: Dict[Atom, Fraction] = {}
        for atom in self._atoms:
            if atom not in atom_probabilities:
                raise InvalidMeasureError(f"no probability supplied for atom {set(atom)!r}")
            probability = as_fraction(atom_probabilities[atom])
            if probability < ZERO:
                raise InvalidMeasureError(f"negative probability {probability} for an atom")
            probabilities[atom] = probability
        total = sum(probabilities.values(), ZERO)
        if total != ONE:
            raise InvalidMeasureError(f"atom probabilities sum to {total}, not 1")
        self._probabilities_dict = probabilities

    @property
    def _probabilities(self) -> Dict[Atom, Fraction]:
        """The ``atom -> Fraction`` measure table, materialised lazily.

        Spaces built via :meth:`_from_atom_weights` carry the measure as
        integer weights; the dict form is only built if something
        (``atom_probability``, an expectation, a naive kernel) asks.
        """
        probabilities = self._probabilities_dict
        if probabilities is None:
            denominator = self._weight_denominator
            probabilities = {
                atom: Fraction(weight, denominator)
                for atom, weight in zip(self._atoms, self._atom_weights)
            }
            self._probabilities_dict = probabilities
        return probabilities

    @_probabilities.setter
    def _probabilities(self, value: Dict[Atom, Fraction]) -> None:
        self._probabilities_dict = value

    def _finalise(
        self,
        weights: Optional[Tuple[int, ...]] = None,
        denominator: Optional[int] = None,
        cache_maxsize: Optional[int] = None,
    ) -> None:
        """Build the per-outcome and (bitmask backend) per-mask indexes.

        Every atom probability is rescaled to one common denominator so an
        interval query sums machine ints and normalises back to a Fraction
        once, instead of paying a gcd per atom add.  The rescaling is
        exact: the common denominator is a multiple of every atom's
        denominator by construction.  Callers that already hold the
        measure in weight form pass ``weights``/``denominator`` directly.

        On the wordarray backend the outcome index and interval cache are
        built exactly as for bitmask, but per-atom int masks are *not*
        materialised (for a powerset algebra they cost O(n^2) bits in
        total); cache misses go to a lazily built
        :class:`~repro.probability.wordmask.SpaceKernel` instead.
        """
        if weights is None:
            probabilities = self._probabilities_dict
            common = 1
            for atom in self._atoms:
                atom_denominator = probabilities[atom].denominator
                common = common // _gcd(common, atom_denominator) * atom_denominator
            weights = tuple(
                probabilities[atom].numerator
                * (common // probabilities[atom].denominator)
                for atom in self._atoms
            )
            denominator = common
        self._atom_weights: Tuple[int, ...] = weights
        self._weight_denominator: int = denominator
        self._backend = get_default_backend()
        self._cache_maxsize: Optional[int] = cache_maxsize
        self._atom_of_dict: Optional[Dict[Outcome, Atom]] = None
        self._word_kernel = None
        if self._backend in ("bitmask", "wordarray"):
            index = OutcomeIndex(
                outcome for atom in self._atoms for outcome in atom
            )
            self._index: Optional[OutcomeIndex] = index
            if self._backend == "wordarray":
                self._atom_masks: Tuple[int, ...] = ()
            elif all(len(atom) == 1 for atom in self._atoms):
                # powerset algebra: the index enumerated outcomes in atom
                # order, so atom i owns exactly bit i
                self._atom_masks = tuple(
                    1 << position for position in range(len(self._atoms))
                )
            else:
                self._atom_masks = tuple(
                    index.mask_of(atom) for atom in self._atoms
                )
            self._interval_cache: Optional[IntervalCache] = IntervalCache(
                cache_maxsize if cache_maxsize is not None else self.interval_cache_size
            )
        else:
            self._index = None
            self._atom_masks = ()
            self._interval_cache = None

    @property
    def _atom_of(self) -> Dict[Outcome, Atom]:
        """The ``outcome -> containing atom`` table, materialised lazily."""
        atom_of = self._atom_of_dict
        if atom_of is None:
            atom_of = {}
            for atom in self._atoms:
                for outcome in atom:
                    atom_of[outcome] = atom
            self._atom_of_dict = atom_of
        return atom_of

    @classmethod
    def _from_checked_partition(
        cls,
        atom_tuple: Tuple[Atom, ...],
        atom_probabilities: Mapping[Atom, FractionLike],
        validate_measure: bool = True,
        interval_cache_maxsize: Optional[int] = None,
    ) -> "FiniteProbabilitySpace":
        """Internal fast constructor for atoms already known to partition.

        Used where the partition property holds by construction (unique
        dict keys in :meth:`from_point_masses`, the trace algebra of
        :meth:`condition`, the product partition of :meth:`product`), so
        re-validating and re-sorting would only burn time.

        ``validate_measure=False`` additionally skips the nonnegativity
        and sums-to-one checks; only callers whose masses are exact
        Fractions summing to one *by construction* (conditioning a
        validated measure, multiplying two validated measures) may pass
        it.
        """
        self = cls.__new__(cls)
        self._atoms = atom_tuple
        self._outcomes = (
            frozenset().union(*atom_tuple) if atom_tuple else frozenset()
        )
        if validate_measure:
            self._check_measure(atom_probabilities)
        else:
            self._probabilities = dict(atom_probabilities)
        self._finalise(cache_maxsize=interval_cache_maxsize)
        return self

    @classmethod
    def _from_atom_weights(
        cls,
        atom_tuple: Tuple[Atom, ...],
        weights: Tuple[int, ...],
        denominator: int,
        interval_cache_maxsize: Optional[int] = None,
    ) -> "FiniteProbabilitySpace":
        """Internal constructor from integer atom weights.

        The measure is exactly ``weights[i] / denominator`` per atom; the
        Fraction dict is materialised lazily (see :attr:`_probabilities`).
        Callers guarantee the atoms partition their union and the weights
        are nonnegative ints summing to ``denominator > 0`` -- e.g.
        conditioning a validated run measure on a measurable event, where
        both facts hold by construction.
        """
        self = cls.__new__(cls)
        self._atoms = atom_tuple
        self._outcomes = (
            frozenset().union(*atom_tuple) if atom_tuple else frozenset()
        )
        self._probabilities_dict = None
        self._finalise(
            weights=tuple(weights),
            denominator=denominator,
            cache_maxsize=interval_cache_maxsize,
        )
        return self

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point_masses(
        cls,
        masses: Mapping[Outcome, FractionLike],
        interval_cache_maxsize: Optional[int] = None,
    ) -> "FiniteProbabilitySpace":
        """Space whose sigma-algebra is the full powerset (singleton atoms).

        Mapping keys are unique, so the singleton atoms partition the
        space by construction and the fast path applies.
        """
        atoms = []
        probabilities: Dict[Atom, FractionLike] = {}
        for outcome, mass in masses.items():
            atom = frozenset((outcome,))
            atoms.append(atom)
            probabilities[atom] = mass
        return cls._from_checked_partition(
            tuple(atoms),
            probabilities,
            interval_cache_maxsize=interval_cache_maxsize,
        )

    @classmethod
    def uniform(cls, outcomes: Iterable[Outcome]) -> "FiniteProbabilitySpace":
        """Uniform distribution with the full powerset algebra."""
        outcome_tuple = tuple(outcomes)
        if not outcome_tuple:
            raise InvalidMeasureError("a probability space needs at least one outcome")
        mass = Fraction(1, len(outcome_tuple))
        return cls.from_point_masses({outcome: mass for outcome in outcome_tuple})

    @classmethod
    def from_atoms(
        cls,
        atoms: Iterable[Iterable[Outcome]],
        probabilities: Iterable[FractionLike],
    ) -> "FiniteProbabilitySpace":
        """Space from parallel sequences of atoms and their probabilities."""
        atom_tuple = tuple(frozenset(atom) for atom in atoms)
        probability_tuple = tuple(probabilities)
        if len(atom_tuple) != len(probability_tuple):
            raise InvalidMeasureError("atoms and probabilities differ in length")
        return cls(atom_tuple, dict(zip(atom_tuple, probability_tuple)))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def outcomes(self) -> Event:
        """The sample space ``S``."""
        return self._outcomes

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The atom partition of the sigma-algebra ``X``."""
        return self._atoms

    @property
    def backend(self) -> str:
        """The measure engine this space was built with."""
        return self._backend

    @property
    def atom_weights(self) -> Tuple[int, ...]:
        """Integer atom weights over :attr:`weight_denominator`.

        ``atom_weights[i] / weight_denominator`` is exactly the measure of
        ``atoms[i]``; downstream constructions (conditioning the run
        measure onto a sample, Section 5) reuse the weights to build
        derived spaces without any per-atom division.
        """
        return self._atom_weights

    @property
    def weight_denominator(self) -> int:
        """The common denominator the atom weights are expressed over."""
        return self._weight_denominator

    @property
    def interval_cache_maxsize(self) -> Optional[int]:
        """The per-space interval-cache bound override, if one was given.

        ``None`` means the class default :attr:`interval_cache_size`
        applies.  Derived spaces (:meth:`condition`, :meth:`product`,
        :meth:`coarsen`) inherit the override.
        """
        return self._cache_maxsize

    @property
    def outcome_index(self) -> OutcomeIndex:
        """The ``outcome -> bit position`` index (bitmask backend only)."""
        if self._index is None:
            raise BackendError("this space was built on the naive backend")
        return self._index

    def atom_probability(self, atom: Atom) -> Fraction:
        """The measure of a single atom."""
        try:
            return self._probabilities[frozenset(atom)]
        except KeyError:
            raise NotMeasurableError(f"{set(atom)!r} is not an atom of this space") from None

    def atom_containing(self, outcome: Outcome) -> Atom:
        """The unique atom containing ``outcome``."""
        try:
            return self._atom_of[outcome]
        except KeyError:
            raise NotMeasurableError(f"{outcome!r} is not an outcome of this space") from None

    def has_powerset_algebra(self) -> bool:
        """True iff every subset is measurable (all atoms are singletons)."""
        return all(len(atom) == 1 for atom in self._atoms)

    def __len__(self) -> int:
        return len(self._outcomes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FiniteProbabilitySpace({len(self._outcomes)} outcomes, "
            f"{len(self._atoms)} atoms)"
        )

    # ------------------------------------------------------------------
    # Measure: bitmask kernels
    # ------------------------------------------------------------------
    #
    # Every query funnels through one LRU-cached computation per event
    # mask: ``(inner, outer, contained)`` where ``contained`` is the union
    # of the atoms wholly inside the event.  The event is measurable iff
    # ``contained`` equals its mask, and then ``mu(event) == inner``.

    def _build_word_kernel(self):
        """The wordarray backend's :class:`~repro.probability.wordmask.SpaceKernel`.

        Built lazily on the first cache miss -- spaces constructed only to
        be conditioned or inspected never pay for it -- and kept for the
        space's lifetime.
        """
        from . import wordmask

        kernel = wordmask.SpaceKernel(
            self._atoms,
            self._index.position,
            len(self._index),
            self._atom_weights,
            self._weight_denominator,
            all(len(atom) == 1 for atom in self._atoms),
        )
        self._word_kernel = kernel
        return kernel

    def _interval_entry(self, mask: int) -> Tuple[Fraction, Fraction, int]:
        cache = self._interval_cache
        entry = cache.get(mask)
        if entry is None:
            denominator = self._weight_denominator
            if self._backend == "wordarray":
                kernel = self._word_kernel
                if kernel is None:
                    kernel = self._build_word_kernel()
                inner, outer, contained = kernel.interval_mask(mask)
            else:
                inner = 0
                outer = 0
                contained = 0
                for atom_mask, weight in zip(self._atom_masks, self._atom_weights):
                    overlap = atom_mask & mask
                    if overlap:
                        outer += weight
                        if overlap == atom_mask:
                            inner += weight
                            contained |= atom_mask
            entry = (
                Fraction(inner, denominator),
                Fraction(outer, denominator),
                contained,
            )
            cache.put(mask, entry)
        return entry

    def event_mask(self, event: Iterable[Outcome]) -> int:
        """The bitmask of ``event & S`` (bitmask backend only)."""
        if self._index is None:
            raise BackendError("this space was built on the naive backend")
        return self._index.mask_of_known(event)

    def is_measurable_mask(self, mask: int) -> bool:
        """Mask-level :meth:`is_measurable` (the mask is within ``S``)."""
        return self._interval_entry(mask)[2] == mask

    def measure_mask(self, mask: int) -> Fraction:
        """Mask-level :meth:`measure`; raises on a split atom."""
        inner, _outer, contained = self._interval_entry(mask)
        if contained != mask:
            raise NotMeasurableError(
                "event splits an atom; use inner_measure / outer_measure"
            )
        return inner

    def inner_measure_mask(self, mask: int) -> Fraction:
        """Mask-level :meth:`inner_measure`."""
        return self._interval_entry(mask)[0]

    def outer_measure_mask(self, mask: int) -> Fraction:
        """Mask-level :meth:`outer_measure`."""
        return self._interval_entry(mask)[1]

    def measure_interval_mask(self, mask: int) -> Tuple[Fraction, Fraction]:
        """Mask-level :meth:`measure_interval`."""
        entry = self._interval_entry(mask)
        return entry[0], entry[1]

    # ------------------------------------------------------------------
    # Measure: public API (dispatches to the space's backend)
    # ------------------------------------------------------------------

    def is_measurable(self, event: Iterable[Outcome]) -> bool:
        """True iff ``event`` is a union of atoms (and a subset of ``S``)."""
        if self._index is None:
            return self.is_measurable_naive(event)
        mask = self._index.strict_mask(event)
        if mask is None:
            return False
        return self.is_measurable_mask(mask)

    def measure(self, event: Iterable[Outcome]) -> Fraction:
        """``mu(event)``; raises :class:`NotMeasurableError` if undefined."""
        if self._index is None:
            return self.measure_naive(event)
        mask = self._index.strict_mask(event)
        if mask is None:
            raise NotMeasurableError("event contains outcomes outside the sample space")
        return self.measure_mask(mask)

    def inner_measure(self, event: Iterable[Outcome]) -> Fraction:
        """``mu_*(event) = sup { mu(T) : T subseteq event, T in X }``.

        For a finite space this is the total mass of atoms contained in the
        event.  Per Section 5, the inner measure is the best lower bound on
        the probability of a (possibly non-measurable) fact.
        """
        if self._index is None:
            return self.inner_measure_naive(event)
        return self._interval_entry(self._index.mask_of_known(event))[0]

    def outer_measure(self, event: Iterable[Outcome]) -> Fraction:
        """``mu^*(event) = inf { mu(T) : T supseteq event, T in X }``.

        Equals ``1 - mu_*(complement)`` -- the duality the paper states in
        Section 5 -- and, atom-wise, the mass of atoms meeting the event.
        """
        if self._index is None:
            return self.outer_measure_naive(event)
        return self._interval_entry(self._index.mask_of_known(event))[1]

    def measure_interval(self, event: Iterable[Outcome]) -> Tuple[Fraction, Fraction]:
        """``(mu_*(event), mu^*(event))`` in one pass."""
        if self._index is None:
            return self.measure_interval_naive(event)
        entry = self._interval_entry(self._index.mask_of_known(event))
        return entry[0], entry[1]

    # ------------------------------------------------------------------
    # Measure: provenance hooks (cold path, backend-independent)
    # ------------------------------------------------------------------

    def event_cells(self, event: Iterable[Outcome]) -> Tuple[CellMeasure, ...]:
        """The per-atom decomposition of an event's measure interval.

        Section 5 computes ``mu_*(event)`` as the total mass of atoms
        contained in the event and ``mu^*(event)`` as the mass of atoms
        meeting it; this returns that computation cell by cell -- one
        :class:`CellMeasure` per atom of ``X``, in atom order, with the
        atom's exact measure and its contained/overlapping relation to
        the event.  Summing the contained (resp. overlapping) cells
        reproduces :meth:`inner_measure` (resp. :meth:`outer_measure`)
        exactly, which is what lets a derivation be re-audited from its
        serialised cells alone.  Cold path: used by ``Model.explain``,
        never by the model checker itself.
        """
        event_set = frozenset(event) & self._outcomes
        probabilities = self._probabilities
        cells = []
        for atom in self._atoms:
            overlap = atom & event_set
            cells.append(
                CellMeasure(
                    outcomes=atom,
                    measure=probabilities[atom],
                    contained=bool(overlap) and overlap == atom,
                    overlapping=bool(overlap),
                )
            )
        return tuple(cells)

    def inner_witness(self, event: Iterable[Outcome]) -> Event:
        """The measurable set realising the inner measure of an event.

        The union of the atoms contained in the event: the largest
        measurable subset, whose measure *is* ``mu_*(event)`` (Section 5).
        This is the witness a ``Pr_i(phi) >= alpha`` derivation carries --
        an explicit event the agent could bet on.
        """
        event_set = frozenset(event) & self._outcomes
        witness: FrozenSet[Outcome] = frozenset()
        for atom in self._atoms:
            if atom and atom <= event_set:
                witness |= atom
        return witness

    # ------------------------------------------------------------------
    # Measure: naive kernels (retained frozenset scans)
    # ------------------------------------------------------------------
    #
    # These are the original implementations, kept public so the
    # differential test suite can assert ``bitmask == naive`` on every
    # kernel and the ablation benchmark can time the two engines.

    def is_measurable_naive(self, event: Iterable[Outcome]) -> bool:
        """:meth:`is_measurable` via frozenset scans (ablation baseline)."""
        count_naive_query()
        event_set = frozenset(event)
        if not event_set <= self._outcomes:
            return False
        covered: set = set()
        for outcome in event_set:
            atom = self._atom_of[outcome]
            if not atom <= event_set:
                return False
            covered |= atom
        return covered == event_set

    def measure_naive(self, event: Iterable[Outcome]) -> Fraction:
        """:meth:`measure` via frozenset scans (ablation baseline)."""
        count_naive_query()
        event_set = frozenset(event)
        if not event_set <= self._outcomes:
            raise NotMeasurableError("event contains outcomes outside the sample space")
        total = ZERO
        seen: set = set()
        for outcome in event_set:
            atom = self._atom_of[outcome]
            if atom in seen:
                continue
            if not atom <= event_set:
                raise NotMeasurableError(
                    "event splits an atom; use inner_measure / outer_measure"
                )
            seen.add(atom)
            total += self._probabilities[atom]
        return total

    def inner_measure_naive(self, event: Iterable[Outcome]) -> Fraction:
        """:meth:`inner_measure` via frozenset scans (ablation baseline)."""
        count_naive_query()
        event_set = frozenset(event) & self._outcomes
        total = ZERO
        for atom in self._atoms:
            if atom <= event_set:
                total += self._probabilities[atom]
        return total

    def outer_measure_naive(self, event: Iterable[Outcome]) -> Fraction:
        """:meth:`outer_measure` via frozenset scans (ablation baseline)."""
        count_naive_query()
        event_set = frozenset(event) & self._outcomes
        total = ZERO
        for atom in self._atoms:
            if atom & event_set:
                total += self._probabilities[atom]
        return total

    def measure_interval_naive(self, event: Iterable[Outcome]) -> Tuple[Fraction, Fraction]:
        """:meth:`measure_interval` via frozenset scans (ablation baseline)."""
        count_naive_query()
        event_set = frozenset(event) & self._outcomes
        inner = ZERO
        outer = ZERO
        for atom in self._atoms:
            overlap = atom & event_set
            if overlap:
                outer += self._probabilities[atom]
                if overlap == atom:
                    inner += self._probabilities[atom]
        return inner, outer

    # ------------------------------------------------------------------
    # Conditioning
    # ------------------------------------------------------------------

    def condition(self, event: Iterable[Outcome]) -> "FiniteProbabilitySpace":
        """The conditional space given a measurable, positive-measure event.

        The new sample space is ``event``; its algebra is the trace algebra;
        the measure is ``mu(. | event)``.  This is the core operation behind
        the induced probability assignments of Section 5 and the lattice
        conditioning identity of Proposition 5.
        """
        event_set = frozenset(event)
        denominator = self.measure(event_set)  # raises if non-measurable
        if denominator == ZERO:
            raise ZeroMeasureConditioningError("conditioning event has measure zero")
        new_atoms = restrict_partition(self._atoms, event_set)
        probabilities = {
            atom: self._probabilities[self._atom_of[next(iter(atom))]] / denominator
            for atom in new_atoms
        }
        return FiniteProbabilitySpace._from_checked_partition(
            new_atoms,
            probabilities,
            validate_measure=False,
            interval_cache_maxsize=self._cache_maxsize,
        )

    def conditional_probability(
        self, event: Iterable[Outcome], given: Iterable[Outcome]
    ) -> Fraction:
        """``mu(event | given)`` for measurable events."""
        given_set = frozenset(given)
        denominator = self.measure(given_set)
        if denominator == ZERO:
            raise ZeroMeasureConditioningError("conditioning event has measure zero")
        return self.measure(frozenset(event) & given_set) / denominator

    # ------------------------------------------------------------------
    # Expectation (including Appendix B.2's inner/outer expectation)
    # ------------------------------------------------------------------

    def _value_classes(self, variable: RandomVariable) -> Dict[Fraction, set]:
        classes: Dict[Fraction, set] = {}
        for outcome in self._outcomes:
            value = as_fraction(variable(outcome))
            classes.setdefault(value, set()).add(outcome)
        return classes

    def expectation(self, variable: RandomVariable) -> Fraction:
        """``E[X]`` for a measurable random variable.

        The variable must be constant on atoms; otherwise it is not
        measurable and callers should use :meth:`inner_expectation` /
        :meth:`outer_expectation`.
        """
        total = ZERO
        for atom in self._atoms:
            values = {as_fraction(variable(outcome)) for outcome in atom}
            if len(values) != 1:
                raise NotMeasurableError(
                    "random variable is not constant on an atom; "
                    "use inner_expectation / outer_expectation"
                )
            total += values.pop() * self._probabilities[atom]
        return total

    def is_measurable_variable(self, variable: RandomVariable) -> bool:
        """True iff the variable is constant on every atom."""
        for atom in self._atoms:
            values = {as_fraction(variable(outcome)) for outcome in atom}
            if len(values) != 1:
                return False
        return True

    def inner_expectation(self, variable: RandomVariable) -> Fraction:
        """Appendix B.2's inner expectation for a two-valued variable.

        For ``X`` taking values ``x > y``::

            E_*(X) = x * mu_*(X = x) + y * mu^*(X = y)

        This is the tightest lower bound on ``E[X]`` over all extensions of
        the measure that make ``X`` measurable.  Degenerate (constant)
        variables are handled directly.  More than two values raises, as the
        paper only defines the two-valued case.
        """
        classes = self._value_classes(variable)
        if len(classes) == 1:
            (value,) = classes
            return value
        if len(classes) != 2:
            raise NotMeasurableError(
                "inner expectation is defined only for two-valued variables "
                f"(got {len(classes)} distinct values)"
            )
        high, low = sorted(classes, reverse=True)
        return high * self.inner_measure(classes[high]) + low * self.outer_measure(classes[low])

    def outer_expectation(self, variable: RandomVariable) -> Fraction:
        """Appendix B.2's outer expectation for a two-valued variable.

        For ``X`` taking values ``x > y``::

            E^*(X) = x * mu^*(X = x) + y * mu_*(X = y)
        """
        classes = self._value_classes(variable)
        if len(classes) == 1:
            (value,) = classes
            return value
        if len(classes) != 2:
            raise NotMeasurableError(
                "outer expectation is defined only for two-valued variables "
                f"(got {len(classes)} distinct values)"
            )
        high, low = sorted(classes, reverse=True)
        return high * self.outer_measure(classes[high]) + low * self.inner_measure(classes[low])

    def lower_expectation(self, variable: RandomVariable) -> Fraction:
        """The tightest lower bound on ``E[X]`` over measurable extensions.

        For a finite space this is ``sum_atoms mu(atom) * min(X on atom)``.
        It agrees with :meth:`expectation` on measurable variables and with
        Appendix B.2's :meth:`inner_expectation` on two-valued ones, and
        extends both to arbitrary variables -- the form the betting game's
        safety check uses when winnings are non-measurable.
        """
        total = ZERO
        for atom in self._atoms:
            total += self._probabilities[atom] * min(
                as_fraction(variable(outcome)) for outcome in atom
            )
        return total

    def upper_expectation(self, variable: RandomVariable) -> Fraction:
        """The tightest upper bound on ``E[X]``; dual of
        :meth:`lower_expectation`."""
        total = ZERO
        for atom in self._atoms:
            total += self._probabilities[atom] * max(
                as_fraction(variable(outcome)) for outcome in atom
            )
        return total

    # ------------------------------------------------------------------
    # Derived spaces
    # ------------------------------------------------------------------

    def coarsen(self, partition: Iterable[Iterable[Outcome]]) -> "FiniteProbabilitySpace":
        """Replace the algebra with a coarser one; measure is inherited.

        Every block of ``partition`` must be measurable in this space.
        """
        blocks = tuple(frozenset(block) for block in partition)
        probabilities = {block: self.measure(block) for block in blocks}
        return FiniteProbabilitySpace(
            blocks, probabilities, interval_cache_maxsize=self._cache_maxsize
        )

    def product(self, other: "FiniteProbabilitySpace") -> "FiniteProbabilitySpace":
        """Independent product space over pairs of outcomes."""
        atoms = []
        probabilities = {}
        for left in self._atoms:
            for right in other._atoms:
                atom = frozenset(
                    (left_outcome, right_outcome)
                    for left_outcome in left
                    for right_outcome in right
                )
                atoms.append(atom)
                probabilities[atom] = (
                    self._probabilities[left] * other._probabilities[right]
                )
        return FiniteProbabilitySpace._from_checked_partition(
            tuple(atoms),
            probabilities,
            validate_measure=False,
            interval_cache_maxsize=self._cache_maxsize,
        )

    def extends(self, other: "FiniteProbabilitySpace") -> bool:
        """True iff this space extends ``other`` in the Appendix B.2 sense:
        same sample space, finer algebra, agreeing measure on the coarse
        algebra."""
        if self._outcomes != other._outcomes:
            return False
        for atom in other.atoms:
            if not self.is_measurable(atom):
                return False
            if self.measure(atom) != other.atom_probability(atom):
                return False
        return True
