"""Proposition 11 and the Section 4 pathology."""

from fractions import Fraction

import pytest

from repro.attack import (
    GENERAL_A,
    achieves,
    assignment_for,
    b_conditional_confidence,
    build_ca1,
    build_ca2,
    build_never_attack,
    certain_failure_points,
    doomed_but_attacking_points,
    everyone_knows_at_all_points,
    prior_inconsistency_witness,
    proposition11_row,
    proposition11_table,
    run_level_probability,
)

EPS = Fraction(4, 5)  # achievable with 3 messengers (weakest guarantee 7/8)


@pytest.fixture(scope="module")
def ca1():
    return build_ca1(messengers=3)


@pytest.fixture(scope="module")
def ca2():
    return build_ca2(messengers=3)


@pytest.fixture(scope="module")
def ca0():
    return build_never_attack(messengers=3)


class TestRunLevel:
    def test_ca1_run_level(self, ca1):
        assert run_level_probability(ca1) == 1 - Fraction(1, 2) * Fraction(1, 8)

    def test_ca2_run_level_same_as_ca1(self, ca1, ca2):
        assert run_level_probability(ca1) == run_level_probability(ca2)

    def test_paper_parameters(self):
        # 10 messengers: 1 - 2**-11 = 2047/2048 >= 0.99
        attack = build_ca2(messengers=10)
        assert run_level_probability(attack) == Fraction(2047, 2048)
        assert run_level_probability(attack) >= Fraction(99, 100)


class TestSection4:
    def test_ca1_has_certain_failure_point(self, ca1):
        doomed = doomed_but_attacking_points(ca1)
        assert doomed
        # at such a point A has heard B's no-news report
        for point in doomed:
            assert "heard-b-no-news" in repr(point.local_state(GENERAL_A))

    def test_ca2_has_none(self, ca2):
        assert doomed_but_attacking_points(ca2) == ()

    def test_b_confidence_after_silence(self, ca2):
        # (1/2) / (1/2 + 2**-(k+1)) with k = 3
        assert b_conditional_confidence(ca2) == Fraction(8, 9)

    def test_b_confidence_paper_parameters(self):
        attack = build_ca2(messengers=10)
        assert b_conditional_confidence(attack) == Fraction(1024, 1025)
        assert b_conditional_confidence(attack) >= Fraction(99, 100)


class TestProposition11:
    def test_ca1_row(self, ca1):
        row = proposition11_row(ca1, EPS)
        assert row.prior and not row.post and not row.fut
        assert row.certain_failure_count > 0

    def test_ca2_row(self, ca2):
        row = proposition11_row(ca2, EPS)
        assert row.prior and row.post and not row.fut
        assert row.certain_failure_count == 0

    def test_ca0_row(self, ca0):
        row = proposition11_row(ca0, EPS)
        assert row.prior and row.post and row.fut

    def test_table_covers_all(self, ca1, ca2, ca0):
        rows = proposition11_table([ca1, ca2, ca0], EPS)
        assert [row.protocol for row in rows] == ["CA1", "CA2", "CA0"]

    def test_everyone_knows_route(self, ca2):
        # the induction-rule argument: E^eps at all points implies C^eps
        post = assignment_for(ca2, "post")
        assert everyone_knows_at_all_points(ca2, post, EPS)
        assert achieves(ca2, post, EPS)

    def test_fut_equals_deterministic_attack(self, ca1, ca2, ca0):
        # part 3: achieving with respect to P_fut == achieving coordinated
        # attack outright; only the never-attacking protocol does.
        for attack in (ca1, ca2):
            fut = assignment_for(attack, "fut")
            deterministic = attack.coordinated.points(attack.psys.system) == frozenset(
                attack.psys.system.points
            )
            assert achieves(attack, fut, EPS) == deterministic
        fut0 = assignment_for(ca0, "fut")
        assert achieves(ca0, fut0, EPS)


class TestInconsistencyPathology:
    def test_prior_believes_while_knowing_false(self, ca1):
        # Section 8's warning: under the inconsistent P_prior an agent can
        # "know phi_CA holds with high probability" at a point where it
        # knows phi_CA is false.
        attack = build_ca1(messengers=10)
        witness = prior_inconsistency_witness(attack)
        assert witness is not None
        prior = assignment_for(attack, "prior")
        post = assignment_for(attack, "post")
        assert prior.knows_probability_at_least(
            GENERAL_A, witness, attack.coordinated, Fraction(99, 100)
        )
        assert post.inner_probability(GENERAL_A, witness, attack.coordinated) == 0

    def test_no_witness_for_ca2(self, ca2):
        assert prior_inconsistency_witness(ca2) is None


class TestConditionalCoordination:
    def test_fz_condition_value(self, ca2):
        # P(both attack | someone attacks) = P(B learned | heads) = 1 - 2**-k
        from repro.attack import conditional_coordination

        assert conditional_coordination(ca2) == 1 - Fraction(1, 8)

    def test_paper_scale(self):
        from repro.attack import build_ca2, conditional_coordination

        attack = build_ca2(messengers=10)
        assert conditional_coordination(attack) == 1 - Fraction(1, 1024)
        assert conditional_coordination(attack) >= Fraction(99, 100)

    def test_never_attack_undefined(self, ca0):
        from repro.attack import conditional_coordination

        with pytest.raises(ValueError):
            conditional_coordination(ca0)
