"""Deterministic fault injection for the fault-tolerant sweep engine.

The chaos tests need to *prove* the recovery claims of
:mod:`repro.robustness.engine`: that a sweep whose workers are killed,
whose tasks raise, or whose tasks stall still returns rows identical to
the serial sweep.  Random fault injection cannot prove anything
reproducibly, so faults here are **scheduled**: a :class:`FaultPlan`
maps ``(task index, attempt number)`` to a :class:`Fault`, and the
:class:`FaultInjectingTask` wrapper fires exactly the planned fault when
the engine hands it that attempt (via the ``wants_context`` protocol of
:func:`repro.robustness.engine.run_tasks`).

Three fault kinds cover the failure modes the engine recovers from:

* ``"raise"`` -- the task raises :class:`InjectedFault` (an ordinary
  task error: consumes an attempt, retried with backoff).
* ``"kill"`` -- the worker process dies via ``os._exit`` (breaks the
  process pool: completed results are harvested, incomplete tasks are
  requeued on a fresh pool).  In-process execution cannot be killed
  without taking the test down, so outside a worker the injector raises
  instead -- same attempt accounting, survivable everywhere.
* ``"delay"`` -- the task sleeps before running (drives the per-task
  timeout path when the delay exceeds it).

Everything here is picklable by construction (frozen dataclasses of
plain data), so plans cross process boundaries intact.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "Fault",
    "FaultInjectingTask",
    "FaultPlan",
    "InjectedFault",
]

_KINDS = ("raise", "kill", "delay")


class InjectedFault(ReproError):
    """The error raised by a scheduled ``"raise"`` fault (and by ``"kill"``
    faults when no worker process is available to kill).

    Deliberately a :class:`ReproError` subclass so injected failures are
    attributable in attempt logs and never masquerade as genuine bugs.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what to do, and how long to stall first."""

    kind: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.delay < 0:
            raise ValueError("fault delay must be nonnegative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule: ``(task index, attempt) -> Fault``.

    The plan is pure data -- two runs with the same plan inject the same
    faults at the same attempts, which is what lets the chaos tests
    assert exact row equality with the serial sweep.
    """

    schedule: Mapping[Tuple[int, int], Fault] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", dict(self.schedule))

    def fault_for(self, index: int, attempt: int) -> Optional[Fault]:
        """The fault scheduled for this attempt, if any."""
        return self.schedule.get((index, attempt))

    def __len__(self) -> int:
        return len(self.schedule)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        task_count: int,
        kinds: Sequence[str] = ("raise", "kill"),
        rate: float = 0.5,
        max_faulty_attempts: int = 2,
        delay: float = 0.0,
    ) -> "FaultPlan":
        """A pseudo-random but reproducible plan over ``task_count`` tasks.

        Each task independently suffers faults on its first
        ``0..max_faulty_attempts`` attempts with probability ``rate`` per
        attempt, drawn from a :class:`random.Random` seeded with ``seed``
        -- so the "chaos" is replayable bit-for-bit.  Faults only ever
        target early attempts, which keeps every task completable under a
        retry policy allowing ``max_faulty_attempts + 1`` attempts.
        """
        generator = random.Random(seed)
        schedule: Dict[Tuple[int, int], Fault] = {}
        for index in range(task_count):
            for attempt in range(max_faulty_attempts):
                if generator.random() < rate:
                    kind = generator.choice(list(kinds))
                    schedule[(index, attempt)] = Fault(kind=kind, delay=delay)
                else:
                    break
        return cls(schedule=schedule)


@dataclass(frozen=True)
class FaultInjectingTask:
    """Wrap a task function so scheduled faults fire before it runs.

    The engine sees ``wants_context`` and calls the wrapper with a
    :class:`~repro.robustness.engine.TaskContext`, which keys the plan
    lookup.  The wrapped ``inner`` function itself is called plainly
    (``inner(task)``), so any picklable task function can be chaos-tested
    unmodified.
    """

    inner: Callable
    plan: FaultPlan

    wants_context: ClassVar[bool] = True

    def __call__(self, task, context):
        fault = self.plan.fault_for(context.index, context.attempt)
        if fault is not None:
            if fault.delay > 0:
                time.sleep(fault.delay)
            if fault.kind == "kill":
                if multiprocessing.parent_process() is not None:
                    os._exit(1)
                raise InjectedFault(
                    f"scheduled kill for task {context.index} attempt "
                    f"{context.attempt} (no worker process to kill)"
                )
            if fault.kind == "raise":
                raise InjectedFault(
                    f"scheduled failure for task {context.index} attempt {context.attempt}"
                )
        return self.inner(task)
