"""The parallel sweep runner: determinism, fallback, exactness."""

import os
from fractions import Fraction

import pytest

from repro.attack import (
    build_ca2,
    guarantee_sweep,
    parallel_guarantee_sweep,
    parallel_map,
    sweep_row_of,
    sweep_tasks,
)
from repro.errors import WorkerTaskError


def _square(value: int) -> int:
    return value * value


def _fraction_half(value: int) -> Fraction:
    return Fraction(value, 2)


def _log_then_maybe_boom(item):
    """Append one line per execution, then fail on the 'boom' item.

    The log file proves how many times each task actually ran: the old
    runner treated a worker-side TypeError as a pool failure and re-ran
    EVERY task serially, doubling the count.
    """
    log_path, label = item
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(label + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if label == "boom":
        raise TypeError("worker task raised a pool-lookalike error")
    return label


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.handle = lambda: None


def _raise_unpicklable(item):
    raise _Unpicklable()


class _LoadsPoisoned(Exception):
    """Pickles fine, but unpickling calls ``__init__`` with too few args."""

    def __init__(self, message, detail):
        super().__init__(message)  # args == (message,): loads() TypeErrors
        self.detail = detail


def _log_then_maybe_poison(item):
    log_path, label = item
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(label + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if label == "boom":
        raise _LoadsPoisoned("dumps fine, loads raises", "detail")
    return label


class TestParallelMap:
    def test_preserves_input_order(self):
        assert parallel_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_exact_fractions_cross_the_process_boundary(self):
        assert parallel_map(_fraction_half, [1, 2, 3]) == [
            Fraction(1, 2),
            Fraction(1),
            Fraction(3, 2),
        ]

    def test_serial_when_single_worker(self):
        assert parallel_map(_square, [1, 2, 3], max_workers=1) == [1, 4, 9]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [5]) == [25]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], max_workers=0)

    def test_unpicklable_function_falls_back_to_serial(self):
        # a closure cannot be pickled; the runner must still return the map
        assert parallel_map(lambda value: value + 1, [1, 2]) == [2, 3]

    def test_task_error_propagates_without_serial_rerun(self, tmp_path):
        # Regression: TypeError is in the pool-infrastructure fallback
        # tuple, so a TypeError raised BY A TASK used to trigger the
        # all-or-nothing serial fallback and execute every task twice.
        # The worker-side envelope must carry it back as a value instead.
        log_path = str(tmp_path / "executions.log")
        items = [(log_path, "a"), (log_path, "boom"), (log_path, "b")]
        with pytest.raises(TypeError, match="pool-lookalike"):
            parallel_map(_log_then_maybe_boom, items)
        with open(log_path, "r", encoding="utf-8") as handle:
            executions = handle.read().split()
        assert sorted(executions) == ["a", "b", "boom"], (
            "each task must execute exactly once; duplicates mean the "
            "runner fell back to a serial re-run"
        )

    def test_unpicklable_task_error_surfaces_as_worker_task_error(self):
        # The error itself cannot cross the process boundary; its
        # traceback summary still must.
        with pytest.raises(WorkerTaskError, match="_Unpicklable"):
            parallel_map(_raise_unpicklable, [1, 2])

    def test_loads_poisoned_task_error_no_serial_rerun(self, tmp_path):
        # Regression: an exception that pickles but fails to UNpickle
        # blows up during result deserialization in the parent, breaking
        # the whole pool -- which used to be misread as infrastructure
        # and trigger the all-or-nothing serial re-run.  The worker must
        # verify the full pickle round-trip and fall back to the text
        # summary, so each task still executes exactly once.
        log_path = str(tmp_path / "executions.log")
        items = [(log_path, "a"), (log_path, "boom"), (log_path, "b")]
        with pytest.raises(WorkerTaskError, match="_LoadsPoisoned"):
            parallel_map(_log_then_maybe_poison, items)
        with open(log_path, "r", encoding="utf-8") as handle:
            executions = handle.read().split()
        assert sorted(executions) == ["a", "b", "boom"], (
            "each task must execute exactly once; duplicates mean the "
            "runner fell back to a serial re-run"
        )


class TestParallelSweep:
    def test_rows_match_serial_sweep_exactly(self):
        counts, losses = [1, 2], [Fraction(1, 2)]
        assert parallel_guarantee_sweep(counts, losses) == guarantee_sweep(
            counts, losses
        )

    def test_task_enumeration_is_deterministic(self):
        first = sweep_tasks([1, 2], [Fraction(1, 2), Fraction(1, 4)])
        second = sweep_tasks([1, 2], [Fraction(1, 2), Fraction(1, 4)])
        assert first == second
        assert [task[:1] + task[2:] for task in first] == [
            ("CA1", 1, Fraction(1, 2), Fraction(99, 100)),
            ("CA1", 1, Fraction(1, 4), Fraction(99, 100)),
            ("CA1", 2, Fraction(1, 2), Fraction(99, 100)),
            ("CA1", 2, Fraction(1, 4), Fraction(99, 100)),
            ("CA2", 1, Fraction(1, 2), Fraction(99, 100)),
            ("CA2", 1, Fraction(1, 4), Fraction(99, 100)),
            ("CA2", 2, Fraction(1, 2), Fraction(99, 100)),
            ("CA2", 2, Fraction(1, 4), Fraction(99, 100)),
            ("CA1-adaptive", 1, Fraction(1, 2), Fraction(99, 100)),
            ("CA1-adaptive", 1, Fraction(1, 4), Fraction(99, 100)),
            ("CA1-adaptive", 2, Fraction(1, 2), Fraction(99, 100)),
            ("CA1-adaptive", 2, Fraction(1, 4), Fraction(99, 100)),
        ]

    def test_sweep_row_of_matches_serial_row(self):
        tasks = sweep_tasks([2], [Fraction(1, 2)], builders={"CA2": build_ca2})
        rows = guarantee_sweep([2], [Fraction(1, 2)], builders={"CA2": build_ca2})
        assert [sweep_row_of(task) for task in tasks] == rows

    def test_custom_builders_respected(self):
        rows = parallel_guarantee_sweep(
            [1], [Fraction(1, 2)], builders={"CA2": build_ca2}
        )
        assert [row.protocol for row in rows] == ["CA2"]
        assert all(type(row.post_threshold) is Fraction for row in rows)
