"""Command-line interface: ``python -m tools.tracediff A B``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import AuditError, MetricsError, ProvenanceError, TraceError
from repro.reporting import json_ready

from .bisect import bisect_artifacts, render_bisect
from .diff import diff_artifacts, render_diff


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tracediff",
        description=(
            "Diff two observability artifacts (repro-trace/1 JSONL, "
            "repro-explain/1 or /2 derivation, repro-audit/1 bundle, "
            "repro-bench/2 report, or "
            "repro-metrics/1 snapshot stream; auto-detected): counter deltas, cache hit-rate shift, "
            "per-span timing ratios, and the first diverging record or "
            "derivation node.  Timing drift is informational; only "
            "content divergence counts as divergence."
        ),
    )
    parser.add_argument("a", help="baseline artifact (A)")
    parser.add_argument("b", help="candidate artifact (B)")
    parser.add_argument(
        "--bisect",
        action="store_true",
        help=(
            "binary-search to the first diverging record or derivation "
            "node (hash chains for record streams and audit bundles, "
            "Merkle fingerprints for derivation DAGs) and print a "
            "minimal reproduction pointer instead of the full diff"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the diff summary as JSON instead of plain text",
    )
    parser.add_argument(
        "--fail-on-divergence",
        action="store_true",
        help="exit 1 when the artifacts' content diverges (default: exit 0)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.bisect:
            summary = bisect_artifacts(args.a, args.b)
        else:
            summary = diff_artifacts(args.a, args.b)
    except (AuditError, TraceError, ProvenanceError, MetricsError) as error:
        print(f"tracediff: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"tracediff: cannot read input: {error}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(json_ready(summary), indent=2))
        elif args.bisect:
            print(render_bisect(summary))
        else:
            print(render_diff(summary))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the diff it asked for
        # was delivered, so this is not an error.
        sys.stderr.close()
    if args.fail_on_divergence and summary.get("diverged"):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
