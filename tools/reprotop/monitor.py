"""Pure folding logic behind reprotop: trace records in, status dict out.

Everything here is side-effect free so it can be tested without a
terminal or a running sweep: :class:`SweepMonitor` folds ``repro-trace/1``
records one at a time, :func:`snapshot_status` lifts a ``repro-metrics/1``
snapshot into the same status shape, :func:`checkpoint_status` counts
completed rows in a sweep checkpoint, and :func:`render_status` turns a
status dict into the tables the CLI refreshes.

The status dict is the tool's contract (``--json`` emits it via
:func:`repro.reporting.json_ready`)::

    {"done": ..., "total": ..., "percent": ..., "retries": ...,
     "elapsed_seconds": ..., "rate_per_second": ..., "eta_seconds": ...,
     "maxrss_kb": ..., "outcomes": {...}, "retry_histogram": {...},
     "workers": {pid: {"attempts": ..., "kernel_queries": ...,
                       "queries_per_second": ...}},
     "cache": {"hits": ..., "misses": ..., "hit_rate": Fraction|None},
     "finished": bool, "records": ...}

Exact values stay exact: the cache hit rate is a
:class:`fractions.Fraction`; only derived *timing* figures (rate, ETA)
are floats.
"""

from __future__ import annotations

import json
import re
from fractions import Fraction
from typing import Dict, Iterable, List, Optional

from repro.errors import MetricsError, TraceError
from repro.reporting import render_table

__all__ = ["SweepMonitor", "checkpoint_status", "render_status", "snapshot_status"]

#: Counter suffixes (under ``worker.<pid>.kernel.``) that count measure
#: kernel *queries*; evictions/switches/conversions are bookkeeping, not
#: throughput.
_KERNEL_QUERY_KEYS = frozenset(
    {"cache_hits", "cache_misses", "naive_queries", "wordarray_queries"}
)

_WORKER_COUNTER = re.compile(r"^worker\.(\d+)\.(.+)$")


def _fraction_or_none(hits: int, misses: int) -> Optional[Fraction]:
    total = hits + misses
    if total == 0:
        return None
    return Fraction(hits, total)


def _worker_entries(counters: Dict[str, int]) -> Dict[int, Dict[str, int]]:
    """Group ``worker.<pid>.*`` counters into per-pid kernel tallies."""
    workers: Dict[int, Dict[str, int]] = {}
    for name, value in counters.items():
        match = _WORKER_COUNTER.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        entry = workers.setdefault(pid, {"kernel_queries": 0, "cache_hits": 0, "cache_misses": 0})
        rest = match.group(2)
        if rest.startswith("kernel."):
            key = rest[len("kernel.") :]
            if key in _KERNEL_QUERY_KEYS:
                entry["kernel_queries"] += int(value)
            if key == "cache_hits":
                entry["cache_hits"] += int(value)
            elif key == "cache_misses":
                entry["cache_misses"] += int(value)
    return workers


class SweepMonitor:
    """Fold a ``repro-trace/1`` record stream into a live status.

    Feed records in file order (``feed``/``feed_all``); call
    :meth:`status` at any point for the current picture.  The monitor
    never seeks or sleeps -- the CLI owns the tailing loop -- so the same
    instance works for ``--once`` reads and incremental tails alike.
    """

    def __init__(self) -> None:
        self.records = 0
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, object] = {}
        #: Fields of the most recent ``sweep_progress`` event, if any.
        self.progress: Optional[Dict] = None
        #: Fields of the most recent ``cache_stats`` event (serial sweeps
        #: emit cumulative kernel totals there).
        self.cache_stats: Optional[Dict] = None
        #: index -> attempts seen, from ``task_attempt`` events.
        self.attempts_by_task: Dict[int, int] = {}
        #: outcome label -> count, from ``task_attempt`` events.
        self.outcomes: Dict[str, int] = {}
        #: pid -> shipped-delta count, from ``worker_obs_delta`` events.
        self.worker_attempts: Dict[int, int] = {}

    def feed(self, record: Dict) -> None:
        """Fold one trace record (headers and unknown types are no-ops)."""
        self.records += 1
        kind = record.get("type")
        if kind == "counter":
            name = record.get("name", "")
            self.counters[name] = self.counters.get(name, 0) + int(record.get("value", 0))
        elif kind == "gauge":
            self.gauges[record.get("name", "")] = record.get("value")
        elif kind == "event":
            fields = record.get("fields", {})
            event = record.get("kind")
            if event == "sweep_progress":
                self.progress = dict(fields)
            elif event == "cache_stats":
                self.cache_stats = dict(fields)
            elif event == "task_attempt":
                index = fields.get("index")
                if isinstance(index, int):
                    self.attempts_by_task[index] = self.attempts_by_task.get(index, 0) + 1
                outcome = str(fields.get("outcome", "unknown"))
                self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            elif event == "worker_obs_delta":
                worker = fields.get("worker")
                if isinstance(worker, int):
                    self.worker_attempts[worker] = self.worker_attempts.get(worker, 0) + 1

    def feed_all(self, records: Iterable[Dict]) -> None:
        for record in records:
            self.feed(record)

    def _cache(self, workers: Dict[int, Dict[str, int]]) -> Dict:
        """Aggregate cache hits/misses: shipped worker counters first.

        Worker counters are per-attempt deltas and sum exactly; the
        serial engine instead leaves cumulative totals in the last
        ``cache_stats`` event, so that is the fallback.
        """
        hits = sum(entry["cache_hits"] for entry in workers.values())
        misses = sum(entry["cache_misses"] for entry in workers.values())
        if hits == 0 and misses == 0 and self.cache_stats is not None:
            hits = int(self.cache_stats.get("cache_hits", 0))
            misses = int(self.cache_stats.get("cache_misses", 0))
        return {"hits": hits, "misses": misses, "hit_rate": _fraction_or_none(hits, misses)}

    def status(self) -> Dict:
        """The current status dict (see module docstring for the shape)."""
        progress = self.progress or {}
        done = progress.get("done")
        total = progress.get("total")
        elapsed = progress.get("elapsed_seconds")
        retries = progress.get("retries")
        if done is None and self.outcomes:
            done = self.outcomes.get("ok", 0)
        if retries is None:
            retries = self.counters.get("engine.retries", 0)
        workers = _worker_entries(self.counters)
        status = _derive_status(
            done=done,
            total=total,
            retries=retries,
            elapsed=elapsed,
            workers=workers,
            worker_attempts=self.worker_attempts,
            cache=self._cache(workers),
            maxrss_kb=progress.get("maxrss_kb", self.gauges.get("engine.maxrss_kb")),
        )
        histogram: Dict[int, int] = {}
        for attempts in self.attempts_by_task.values():
            histogram[attempts] = histogram.get(attempts, 0) + 1
        status["retry_histogram"] = dict(sorted(histogram.items()))
        status["outcomes"] = dict(sorted(self.outcomes.items()))
        status["records"] = self.records
        return status


def _derive_status(
    done: Optional[int],
    total: Optional[int],
    retries: Optional[int],
    elapsed: Optional[float],
    workers: Dict[int, Dict[str, int]],
    worker_attempts: Dict[int, int],
    cache: Dict,
    maxrss_kb: Optional[int],
) -> Dict:
    """Fill in the derived fields (percent, rate, ETA, per-worker rates)."""
    percent = None
    if done is not None and total:
        percent = round(100.0 * done / total, 1)
    rate = None
    eta = None
    if done and elapsed and elapsed > 0:
        rate = round(done / elapsed, 3)
        if total is not None and total >= done:
            eta = round((total - done) * elapsed / done, 1)
    worker_rows: Dict[int, Dict] = {}
    for pid in sorted(set(workers) | set(worker_attempts)):
        entry = workers.get(pid, {"kernel_queries": 0})
        queries = entry["kernel_queries"]
        worker_rows[pid] = {
            "attempts": worker_attempts.get(pid, 0),
            "kernel_queries": queries,
            "queries_per_second": (
                round(queries / elapsed, 1) if elapsed and elapsed > 0 else None
            ),
        }
    return {
        "done": done,
        "total": total,
        "percent": percent,
        "retries": retries,
        "elapsed_seconds": elapsed,
        "rate_per_second": rate,
        "eta_seconds": eta,
        "maxrss_kb": maxrss_kb,
        "workers": worker_rows,
        "cache": cache,
        "finished": bool(total is not None and done is not None and done >= total and total > 0),
    }


def snapshot_status(
    snapshot: Dict, done: Optional[int] = None, total: Optional[int] = None
) -> Dict:
    """Lift a ``repro-metrics/1`` snapshot record into a status dict.

    The snapshot carries no notion of progress of its own, so ``done``
    (typically a :func:`checkpoint_status` count) and ``total`` come from
    the caller.  Counters, per-worker kernel attribution, cache stats and
    span timings all come from the snapshot.
    """
    if snapshot.get("type") != "snapshot":
        raise MetricsError(
            f"expected a snapshot record, got type={snapshot.get('type')!r}"
        )
    counters = {str(k): int(v) for k, v in snapshot.get("counters", {}).items()}
    workers = _worker_entries(counters)
    kernel = snapshot.get("kernel_totals", {})
    hits = int(kernel.get("cache_hits", 0))
    misses = int(kernel.get("cache_misses", 0))
    spans = snapshot.get("spans", {})
    run_span = spans.get("run_tasks") or spans.get("robust_sweep") or {}
    elapsed = run_span.get("total_seconds")
    status = _derive_status(
        done=done,
        total=total,
        retries=counters.get("engine.retries", 0),
        elapsed=elapsed,
        workers=workers,
        worker_attempts={},
        cache={"hits": hits, "misses": misses, "hit_rate": _fraction_or_none(hits, misses)},
        maxrss_kb=snapshot.get("gauges", {}).get("engine.maxrss_kb"),
    )
    status["retry_histogram"] = {}
    status["outcomes"] = {}
    status["records"] = 1
    status["snapshot_label"] = snapshot.get("label", "")
    return status


def checkpoint_status(path: str) -> int:
    """Count completed rows in a sweep checkpoint JSONL.

    Mirrors the checkpoint loader's crash tolerance: a truncated or
    garbled *final* line (the one a kill interrupted) is ignored, while
    garbage earlier in the file is a real error -- monitoring must not
    silently under-report a corrupted sweep.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    done = 0
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                break
            raise TraceError(
                f"checkpoint {path}: malformed record at line {position + 1}"
            )
        if isinstance(record, dict) and "index" in record:
            done += 1
    return done


def _fmt(value: object) -> object:
    return "-" if value is None else value


def render_status(status: Dict) -> str:
    """Render a status dict as the refreshing plain-text dashboard."""
    blocks: List[str] = []
    percent = status.get("percent")
    blocks.append(
        render_table(
            "Sweep progress",
            ["done", "total", "%", "retries", "elapsed s", "rows/s", "eta s", "maxrss kb"],
            [
                [
                    _fmt(status.get("done")),
                    _fmt(status.get("total")),
                    _fmt(percent),
                    _fmt(status.get("retries")),
                    _fmt(status.get("elapsed_seconds")),
                    _fmt(status.get("rate_per_second")),
                    _fmt(status.get("eta_seconds")),
                    _fmt(status.get("maxrss_kb")),
                ]
            ],
        )
    )
    histogram = status.get("retry_histogram") or {}
    if histogram:
        blocks.append(
            render_table(
                "Retry histogram",
                ["attempts", "tasks"],
                [[attempts, count] for attempts, count in sorted(histogram.items())],
            )
        )
    workers = status.get("workers") or {}
    if workers:
        blocks.append(
            render_table(
                "Per-worker kernel throughput",
                ["worker", "attempts", "kernel queries", "queries/s"],
                [
                    [pid, entry.get("attempts", 0), entry.get("kernel_queries", 0), _fmt(entry.get("queries_per_second"))]
                    for pid, entry in sorted(workers.items())
                ],
            )
        )
    cache = status.get("cache") or {}
    blocks.append(
        render_table(
            "Measure-kernel cache",
            ["hits", "misses", "hit rate"],
            [[cache.get("hits", 0), cache.get("misses", 0), _fmt(cache.get("hit_rate"))]],
        )
    )
    if status.get("finished"):
        blocks.append("sweep complete")
    return "\n\n".join(blocks)
