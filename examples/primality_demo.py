#!/usr/bin/env python3
"""Probabilistic primality testing, read through the paper's lens.

The input n is a type-1 adversary: we refuse to put a distribution on it.
The random witnesses are the probabilistic choices.  "The algorithm is
correct with probability >= 3/4" is a statement about each input's own
computation tree; "n is prime with probability p" is not a statement at
all -- within every tree it is 0 or 1.

Run:  python examples/primality_demo.py
"""

from fractions import Fraction

from repro.examples_lib import (
    is_prime,
    miller_rabin_witness,
    per_input_correctness,
    primality_probability_is_degenerate,
    primality_system,
    probable_prime,
    solovay_strassen_witness,
    witness_density,
)
from repro.probability import format_fraction


def main() -> None:
    print("Real algorithms first: Miller-Rabin with bases {2, 3, 5}")
    for n in (97, 91, 561, 1009, 1001):
        verdict = "prime" if probable_prime(n, [2, 3, 5]) else "composite"
        truth = "prime" if is_prime(n) else "composite"
        print(f"  n = {n:>5}: algorithm says {verdict:<9} (truth: {truth})")
    print()

    print("Exact witness densities for small composites:")
    print(f"{'n':>5}  {'Miller-Rabin':>14}  {'Solovay-Strassen':>17}")
    for n in (9, 15, 21, 25, 49, 561):
        mr = witness_density(n, miller_rabin_witness)
        ss = witness_density(n, solovay_strassen_witness)
        print(f"{n:>5}  {format_fraction(mr):>14}  {format_fraction(ss):>17}")
    print("(paper bounds: >= 3/4 and >= 1/2 respectively)")
    print()

    print("The systems reading (Section 3): one tree per input")
    example = primality_system([13, 15, 21], rounds=1)
    for n, probability in sorted(per_input_correctness(example).items()):
        kind = "prime" if is_prime(n) else "composite"
        print(f"  input {n} ({kind:<9}): P(correct output) = {format_fraction(probability)}")
    print()
    print("And the point the paper insists on:")
    print(f"  'n is prime' has probability 0 or 1 in every tree: "
          f"{primality_probability_is_degenerate(example)}")
    print()

    print("Independent rounds square the error:")
    one = per_input_correctness(primality_system([15], rounds=1))[15]
    two = per_input_correctness(primality_system([15], rounds=2))[15]
    print(f"  1 round : error = {format_fraction(1 - one)}")
    print(f"  2 rounds: error = {format_fraction(1 - two)} = ({format_fraction(1 - one)})^2")


if __name__ == "__main__":
    main()
