"""Checkpoint/resume: exact rows survive kills, truncation, and chaos."""

import json
import os
import shutil
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attack.sweep import SweepRow, guarantee_sweep, sweep_tasks
from repro.errors import CheckpointError, RetryExhaustedError
from repro.reporting import fraction_from_json
from repro.robustness import (
    FaultPlan,
    RetryPolicy,
    SweepCheckpoint,
    resume_guarantee_sweep,
    robust_guarantee_sweep,
    row_from_record,
    row_to_record,
    task_fingerprint,
)
from repro.robustness.faults import FaultInjectingTask, InjectedFault

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]

FAST = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)


def _no_sleep(seconds):
    assert seconds >= 0


def _poisoned_ca1_row(task):
    """A task function that refuses to recompute CA1 rows.

    Used to prove resume really skips checkpointed tasks: if the resumed
    sweep ever re-runs a CA1 task, this raises and the test fails.
    """
    from repro.attack.sweep import sweep_row_of

    name = task[0]
    if name == "CA1":
        raise AssertionError("a checkpointed CA1 task was re-run on resume")
    return sweep_row_of(task)


def _serial_rows():
    return guarantee_sweep(MESSENGERS, LOSSES)


def _export_artifact(path):
    """Copy a checkpoint into CHAOS_ARTIFACT_DIR for the CI artifact."""
    target_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not target_dir:
        return
    os.makedirs(target_dir, exist_ok=True)
    shutil.copy(path, os.path.join(target_dir, os.path.basename(path)))


class TestRecordRoundTrip:
    @given(
        run_level=st.fractions(min_value=0, max_value=1),
        post_threshold=st.fractions(min_value=0, max_value=1),
        loss=st.fractions(min_value=0, max_value=1),
        messengers=st.integers(min_value=1, max_value=50),
    )
    def test_round_trip_preserves_exact_fractions(
        self, run_level, post_threshold, loss, messengers
    ):
        task = ("CA1", None, messengers, loss, Fraction(99, 100))
        row = SweepRow(
            protocol="CA1",
            messengers=messengers,
            loss=loss,
            run_level=run_level,
            post_threshold=post_threshold,
            achieves_99_post=post_threshold >= Fraction(99, 100),
        )
        record = row_to_record(3, task, row)
        rebuilt = row_from_record(json.loads(json.dumps(record, sort_keys=True)))
        assert rebuilt == row
        assert isinstance(rebuilt.run_level, Fraction)
        assert isinstance(rebuilt.post_threshold, Fraction)
        assert isinstance(rebuilt.loss, Fraction)

    def test_fraction_from_json_rejects_floats(self):
        with pytest.raises(ValueError):
            fraction_from_json(0.5)
        with pytest.raises(ValueError):
            fraction_from_json(True)

    def test_fingerprint_excludes_the_builder(self):
        def builder_a(messengers, loss):
            raise NotImplementedError

        def builder_b(messengers, loss):
            raise NotImplementedError

        one = task_fingerprint(("CA1", builder_a, 2, Fraction(1, 2), Fraction(99, 100)))
        two = task_fingerprint(("CA1", builder_b, 2, Fraction(1, 2), Fraction(99, 100)))
        assert one == two


class TestSweepMatchesSerial:
    def test_fresh_sweep_matches_serial_rows(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        rows = robust_guarantee_sweep(
            MESSENGERS, LOSSES, max_workers=1, checkpoint_path=path
        )
        assert rows == _serial_rows()
        assert path.exists()

    def test_strict_sweep_matches_serial_rows(self):
        rows = robust_guarantee_sweep(MESSENGERS, LOSSES, max_workers=1, strict=True)
        assert rows == _serial_rows()


class TestResume:
    def test_resume_skips_completed_tasks(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        serial = _serial_rows()
        checkpoint = SweepCheckpoint(path)
        # Checkpoint every CA1 row, as if a first run died after them.
        for index, task in enumerate(tasks):
            if task[0] == "CA1":
                checkpoint.append(index, task, serial[index])
        rows = resume_guarantee_sweep(
            path, MESSENGERS, LOSSES, max_workers=1, task_function=_poisoned_ca1_row
        )
        assert rows == serial

    def test_resume_tolerates_a_half_written_tail(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        serial = _serial_rows()
        checkpoint = SweepCheckpoint(path)
        for index in range(3):
            checkpoint.append(index, tasks[index], serial[index])
        # Simulate a kill mid-write: append a truncated record.
        with open(path, "a", encoding="utf-8") as handle:
            full = json.dumps(row_to_record(3, tasks[3], serial[3]))
            handle.write(full[: len(full) // 2])
        assert checkpoint.load(tasks) == {0: serial[0], 1: serial[1], 2: serial[2]}
        rows = resume_guarantee_sweep(path, MESSENGERS, LOSSES, max_workers=1)
        assert rows == serial

    def test_missing_file_means_fresh_sweep(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "never-written.jsonl")
        assert checkpoint.load(sweep_tasks(MESSENGERS, LOSSES)) == {}

    def test_fingerprint_mismatch_is_a_hard_error(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        serial = _serial_rows()
        SweepCheckpoint(path).append(0, tasks[0], serial[0])
        other_tasks = sweep_tasks(MESSENGERS, [Fraction(1, 3)])
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path).load(other_tasks)

    def test_out_of_range_index_is_a_hard_error(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        serial = _serial_rows()
        SweepCheckpoint(path).append(len(tasks) + 5, tasks[0], serial[0])
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path).load(tasks)

    def test_malformed_record_is_a_hard_error(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"index": 0, "task": {}}) + "\n")
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path).load(sweep_tasks(MESSENGERS, LOSSES))


class TestChaosSweep:
    def test_chaos_sweep_matches_serial_rows(self, tmp_path):
        # Worker kills, raises and the checkpoint all at once: the row
        # list must still be identical to the serial sweep.
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        plan = FaultPlan.from_seed(
            seed=7, task_count=len(tasks), kinds=("raise", "kill"), rate=0.7
        )
        assert plan.schedule, "seed 7 must actually schedule faults"
        path = tmp_path / "chaos.jsonl"
        rows = robust_guarantee_sweep(
            MESSENGERS,
            LOSSES,
            policy=FAST,
            checkpoint_path=path,
            task_function=_chaos_task,
            sleep=_no_sleep,
        )
        assert rows == _serial_rows()
        _export_artifact(path)

    def test_kill_mid_sweep_then_resume_reproduces_rows(self, tmp_path):
        # Phase 1: a sweep dies on task 2 (every attempt faults).  The
        # checkpoint must hold exactly the rows completed before death.
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        serial = _serial_rows()
        path = tmp_path / "killed.jsonl"
        with pytest.raises(RetryExhaustedError):
            robust_guarantee_sweep(
                MESSENGERS,
                LOSSES,
                max_workers=1,
                policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                checkpoint_path=path,
                task_function=_dies_on_task_2,
                sleep=_no_sleep,
            )
        survived = SweepCheckpoint(path).load(tasks)
        assert survived == {0: serial[0], 1: serial[1]}
        # Phase 2: resume with a healthy task function; only the
        # incomplete tasks run and the full row list comes back.
        rows = resume_guarantee_sweep(path, MESSENGERS, LOSSES, max_workers=1)
        assert rows == serial
        assert SweepCheckpoint(path).load(tasks).keys() == set(range(len(tasks)))
        _export_artifact(path)


def _chaos_task(task, context):
    from repro.attack.sweep import sweep_row_of

    inner = FaultInjectingTask(
        inner=sweep_row_of,
        plan=FaultPlan.from_seed(seed=7, task_count=6, kinds=("raise", "kill"), rate=0.7),
    )
    return inner(task, context)


_chaos_task.wants_context = True


def _dies_on_task_2(task, context):
    from repro.attack.sweep import sweep_row_of

    if context.index == 2:
        raise InjectedFault("simulated mid-sweep death on task 2")
    return sweep_row_of(task)


_dies_on_task_2.wants_context = True
