"""Interleaved execution under scheduler adversaries."""

from fractions import Fraction

import pytest

from repro.errors import SimulationError
from repro.systems import (
    Agent,
    CoinTossingAgent,
    IdleAgent,
    Message,
    certainly,
    fixed_order,
    round_robin,
    run_scheduled,
    scheduled_system,
    starving,
)


class PingAgent(Agent):
    """Sends one ping to agent 1 on its first step, then idles."""

    def initial_state(self, input_value):
        return "fresh"

    def step(self, state, inbox, round_number):
        if state == "fresh":
            return certainly("sent", Message(0, 1, "ping"))
        return certainly(state)


class ListenerAgent(Agent):
    """Records whether it has heard a ping."""

    def initial_state(self, input_value):
        return "quiet"

    def step(self, state, inbox, round_number):
        if any(message.content == "ping" for message in inbox):
            return certainly("heard")
        return certainly(state)


class TestSchedulers:
    def test_round_robin_alternates(self):
        adversary = round_robin()
        tree = run_scheduled([PingAgent(), ListenerAgent()], [None, None], adversary, 4)
        (run,) = tree.runs
        # agent 0 steps at ticks 0 and 2; agent 1 at 1 and 3
        assert run.local_state(0, 1) == "sent"
        assert run.local_state(1, 2) == "heard"

    def test_fixed_order(self):
        adversary = fixed_order([1, 1, 0])
        tree = run_scheduled([PingAgent(), ListenerAgent()], [None, None], adversary, 3)
        (run,) = tree.runs
        assert run.local_state(0, 2) == "fresh"  # agent 0 not stepped yet
        assert run.local_state(0, 3) == "sent"

    def test_starving_scheduler_denies_delivery(self):
        adversary = starving(victim=1, fallback=0)
        tree = run_scheduled([PingAgent(), ListenerAgent()], [None, None], adversary, 4)
        (run,) = tree.runs
        assert run.local_state(1, 4) == "quiet"  # listener never scheduled

    def test_invalid_agent_choice(self):
        from repro.systems import ScheduleAdversary

        bad = ScheduleAdversary("bad", lambda time, states, pending: (7, ()))
        with pytest.raises(SimulationError):
            run_scheduled([IdleAgent()], [None], bad, 1)

    def test_cannot_deliver_unsent_messages(self):
        from repro.systems import ScheduleAdversary

        forger = ScheduleAdversary(
            "forger",
            lambda time, states, pending: (0, (Message(1, 0, "forged"),)),
        )
        with pytest.raises(SimulationError):
            run_scheduled([IdleAgent(), IdleAgent()], [None, None], forger, 1)

    def test_inputs_validated(self):
        with pytest.raises(SimulationError):
            run_scheduled([IdleAgent()], [None, None], round_robin(), 1)


class TestProbabilisticInterleaving:
    def test_coin_branches_under_scheduler(self):
        adversary = fixed_order([0])
        tree = run_scheduled(
            [CoinTossingAgent(Fraction(1, 2)), IdleAgent()], [None, None], adversary, 1
        )
        assert len(tree.runs) == 2

    def test_scheduled_system_one_tree_per_adversary(self):
        agents = [CoinTossingAgent(Fraction(1, 2)), IdleAgent()]
        adversaries = [round_robin("rr"), fixed_order([1, 0], name="rev")]
        psys = scheduled_system(agents, [None, None], adversaries, 2)
        assert set(psys.adversaries) == {"rr", "rev"}

    def test_interleaved_systems_are_asynchronous(self):
        agents = [CoinTossingAgent(Fraction(1, 2)), IdleAgent()]
        psys = scheduled_system(agents, [None, None], [round_robin()], 3)
        assert not psys.system.is_synchronous()

    def test_scheduler_as_type1_adversary_changes_probabilities(self):
        # Whether the listener hears by time 2 depends on the scheduler,
        # not on chance -- the nondeterminism is factored out per tree.
        agents = [PingAgent(), ListenerAgent()]
        eager = fixed_order([0, 1], name="eager")
        lazy = fixed_order([1, 0], name="lazy")
        psys = scheduled_system(agents, [None, None], [eager, lazy], 2)
        eager_run = psys.tree("eager").runs[0]
        lazy_run = psys.tree("lazy").runs[0]
        assert eager_run.local_state(1, 2) == "heard"
        assert lazy_run.local_state(1, 2) == "quiet"
