"""The generative tree builder and its technical-assumption guarantees."""

from fractions import Fraction

import pytest

from repro.errors import TreeError
from repro.trees import (
    Env,
    build_tree,
    chance_step,
    deterministic_step,
    halt,
    tree_from_trace_distribution,
)


def coin_step(time, locals_, extra):
    if time == 0:
        return chance_step(
            [
                (Fraction(1, 2), "heads", ("saw-h",)),
                (Fraction(1, 2), "tails", ("saw-t",)),
            ]
        )
    return halt()


class TestBuildTree:
    def test_basic_shape(self):
        tree = build_tree("A", ("start",), coin_step)
        assert len(tree.runs) == 2
        assert tree.depth() == 1

    def test_env_encodes_adversary_and_history(self):
        tree = build_tree("A", ("start",), coin_step)
        leaf_point = [point for point in tree.points if point.time == 1][0]
        env = leaf_point.global_state.environment
        assert isinstance(env, Env)
        assert env.adversary == "A"
        assert env.history in (("heads",), ("tails",))

    def test_all_global_states_distinct(self):
        # identical local states at every node: history alone separates them
        def constant_locals(time, locals_, extra):
            if time < 2:
                return chance_step(
                    [
                        (Fraction(1, 2), "h", ("same",)),
                        (Fraction(1, 2), "t", ("same",)),
                    ]
                )
            return halt()

        tree = build_tree("A", ("same",), constant_locals)
        assert len(tree.nodes) == 7

    def test_probabilities_must_sum(self):
        def bad(time, locals_, extra):
            if time == 0:
                return ((Fraction(1, 3), "only", ("s",), None),)
            return ()

        with pytest.raises(TreeError):
            build_tree("A", ("start",), bad)

    def test_duplicate_labels_rejected(self):
        def bad(time, locals_, extra):
            if time == 0:
                return (
                    (Fraction(1, 2), "same", ("a",), None),
                    (Fraction(1, 2), "same", ("b",), None),
                )
            return ()

        with pytest.raises(TreeError):
            build_tree("A", ("start",), bad)

    def test_zero_probability_branches_dropped(self):
        def step(time, locals_, extra):
            if time == 0:
                return (
                    (Fraction(1), "sure", ("a",), None),
                    (Fraction(0), "never", ("b",), None),
                )
            return ()

        tree = build_tree("A", ("start",), step)
        assert len(tree.runs) == 1

    def test_max_depth_guard(self):
        def forever(time, locals_, extra):
            return deterministic_step(f"tick", ("s",))

        with pytest.raises(TreeError):
            build_tree("A", ("start",), forever, max_depth=5)

    def test_extra_payload_threaded(self):
        def step(time, locals_, extra):
            if time == 0:
                assert extra == "seed"
                return ((Fraction(1), "go", ("s",), "payload"),)
            assert extra == "payload"
            return ()

        build_tree("A", ("start",), step, initial_extra="seed")


class TestHelpers:
    def test_deterministic_step(self):
        (branch,) = deterministic_step("label", ("a", "b"), "extra")
        assert branch == (Fraction(1), "label", ("a", "b"), "extra")

    def test_halt_is_empty(self):
        assert halt() == ()

    def test_chance_step_shares_extra(self):
        branches = chance_step(
            [(Fraction(1, 2), "x", ("a",)), (Fraction(1, 2), "y", ("b",))],
            new_extra="shared",
        )
        assert all(branch[3] == "shared" for branch in branches)


class TestTraceDistribution:
    def test_two_traces(self):
        tree = tree_from_trace_distribution(
            "A",
            ("start",),
            [
                (Fraction(1, 2), [("h", ("saw-h",))]),
                (Fraction(1, 2), [("t", ("saw-t",))]),
            ],
        )
        assert len(tree.runs) == 2
        assert all(tree.run_probability(run) == Fraction(1, 2) for run in tree.runs)

    def test_common_prefix_factoring(self):
        tree = tree_from_trace_distribution(
            "A",
            ("s",),
            [
                (Fraction(1, 4), [("x", ("a",)), ("u", ("a1",))]),
                (Fraction(1, 4), [("x", ("a",)), ("v", ("a2",))]),
                (Fraction(1, 2), [("y", ("b",))]),
            ],
        )
        assert len(tree.runs) == 3
        root = tree.root
        x_child = [
            child
            for child in tree.children(root)
            if tree.edge_probability(root, child) == Fraction(1, 2)
        ]
        assert len(x_child) == 2  # both top-level branches carry 1/2

    def test_conditional_probabilities_along_prefix(self):
        tree = tree_from_trace_distribution(
            "A",
            ("s",),
            [
                (Fraction(1, 6), [("x", ("a",)), ("u", ("a1",))]),
                (Fraction(1, 3), [("x", ("a",)), ("v", ("a2",))]),
                (Fraction(1, 2), [("y", ("b",))]),
            ],
        )
        probabilities = sorted(tree.run_probability(run) for run in tree.runs)
        assert probabilities == [Fraction(1, 6), Fraction(1, 3), Fraction(1, 2)]

    def test_traces_must_sum_to_one(self):
        with pytest.raises(TreeError):
            tree_from_trace_distribution(
                "A", ("s",), [(Fraction(1, 2), [("x", ("a",))])]
            )

    def test_prefix_conflicts_rejected(self):
        with pytest.raises(TreeError):
            tree_from_trace_distribution(
                "A",
                ("s",),
                [
                    (Fraction(1, 2), [("x", ("a",))]),
                    (Fraction(1, 2), [("x", ("a",)), ("u", ("a1",))]),
                ],
            )
