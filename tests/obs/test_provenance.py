"""The ``repro-explain/1`` data model: purity, round trips, recorder."""

import json
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.obs import (
    EXPLAIN_SCHEMA,
    Derivation,
    DerivationNode,
    ProvenanceRecorder,
    derivation_from_json,
    read_derivation,
    render_derivation,
    write_derivation,
)
from repro.obs.provenance import json_pure


def leaf(**overrides):
    payload = dict(
        rule="prop",
        formula="heads",
        point={"bit": 0, "time": 0, "label": "(r0, 0)"},
        holds=True,
        definition="Section 5",
    )
    payload.update(overrides)
    return DerivationNode(**payload)


def small_derivation():
    root = DerivationNode(
        rule="knows",
        formula="K0 heads",
        point={"bit": 1, "time": 1, "label": "(r0, 1)"},
        holds=False,
        definition="Section 4",
        detail={
            "agent": 0,
            "class_mask": 0b11,
            "counterexample": {"bit": 0, "time": 1, "label": "(r1, 1)"},
            "measure": Fraction(3, 4),
        },
        children=(leaf(),),
    )
    return Derivation(
        assignment="post",
        formula="K0 heads",
        point={"bit": 1, "time": 1, "label": "(r0, 1)"},
        root=root,
    )


class TestJsonPure:
    def test_fractions_become_exact_strings(self):
        assert json_pure(Fraction(99, 256)) == "99/256"
        assert json_pure({"rate": Fraction(1, 3)}) == {"rate": "1/3"}

    def test_floats_are_banned(self):
        with pytest.raises(ProvenanceError, match="float"):
            json_pure(0.5)
        with pytest.raises(ProvenanceError, match="float"):
            json_pure({"nested": [0.25]})

    def test_tuples_and_sets_normalise_to_lists(self):
        assert json_pure((1, 2)) == [1, 2]
        assert json_pure(frozenset({2, 1})) == [1, 2]

    def test_unencodable_types_are_rejected(self):
        with pytest.raises(ProvenanceError, match="cannot appear"):
            json_pure(object())

    @given(
        st.recursive(
            st.one_of(
                st.booleans(),
                st.none(),
                st.integers(min_value=-(10**9), max_value=10**9),
                st.fractions(),
                st.text(max_size=8),
            ),
            lambda inner: st.one_of(
                st.lists(inner, max_size=3),
                st.dictionaries(st.text(max_size=5), inner, max_size=3),
            ),
            max_leaves=10,
        )
    )
    def test_output_survives_json_round_trip_unchanged(self, value):
        pure = json_pure(value)
        assert json.loads(json.dumps(pure)) == pure


class TestDerivationDataModel:
    def test_node_normalises_detail_at_construction(self):
        node = leaf(detail={"measure": Fraction(1, 2), "cells": (1, 2)})
        assert node.detail == {"measure": "1/2", "cells": [1, 2]}

    def test_node_rejects_float_detail(self):
        with pytest.raises(ProvenanceError):
            leaf(detail={"measure": 0.5})

    def test_json_ready_carries_schema_and_verdict(self):
        payload = small_derivation().json_ready()
        assert payload["schema"] == EXPLAIN_SCHEMA
        assert payload["holds"] is False
        assert payload["root"]["rule"] == "knows"

    def test_round_trip_is_dataclass_equality(self):
        derivation = small_derivation()
        decoded = derivation_from_json(derivation.json_ready())
        assert decoded == derivation
        assert decoded.fingerprint() == derivation.fingerprint()

    def test_round_trip_through_text(self):
        derivation = small_derivation()
        text = json.dumps(derivation.json_ready())
        assert derivation_from_json(text) == derivation

    def test_fingerprint_changes_with_content(self):
        a = small_derivation()
        b = Derivation(
            assignment=a.assignment,
            formula=a.formula,
            point=a.point,
            root=leaf(),
        )
        assert a.fingerprint() != b.fingerprint()

    def test_walk_is_preorder(self):
        derivation = small_derivation()
        rules = [node.rule for node in derivation.root.walk()]
        assert rules == ["knows", "prop"]

    def test_wrong_schema_rejected(self):
        payload = small_derivation().json_ready()
        payload["schema"] = "repro-explain/999"
        with pytest.raises(ProvenanceError, match="schema"):
            derivation_from_json(payload)

    def test_missing_node_fields_rejected(self):
        payload = small_derivation().json_ready()
        del payload["root"]["children"][0]["rule"]
        with pytest.raises(ProvenanceError, match="children\\[0\\]"):
            derivation_from_json(payload)

    def test_non_json_text_rejected(self):
        with pytest.raises(ProvenanceError, match="not JSON"):
            derivation_from_json("{truncated")


class TestFileRoundTrip:
    def test_write_then_read(self, tmp_path):
        derivation = small_derivation()
        path = tmp_path / "derivation.json"
        write_derivation(derivation, path)
        assert read_derivation(path) == derivation

    def test_missing_file_raises_provenance_error(self, tmp_path):
        with pytest.raises(ProvenanceError, match="cannot read"):
            read_derivation(tmp_path / "absent.json")

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "cut.json"
        text = write_derivation(small_derivation(), path)
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(ProvenanceError):
            read_derivation(path)


class TestRenderDerivation:
    def test_render_cites_definitions_and_verdicts(self):
        text = render_derivation(small_derivation())
        assert "repro-explain/1" in text
        assert "verdict:    fails" in text
        assert "Section 4" in text
        assert "Section 5" in text
        assert "(r0, 1)" in text


class TestProvenanceRecorder:
    def test_captures_only_provenance_kinds(self):
        recorder = ProvenanceRecorder()
        recorder.event("gfp", iterations=2)
        recorder.event("cache_stats", cache_hits=10)
        recorder.event("gfp_iteration", iteration=0, updated_size=3)
        assert [kind for kind, _ in recorder.events] == ["gfp", "gfp_iteration"]
        assert recorder.event_counts == {
            "gfp": 1,
            "cache_stats": 1,
            "gfp_iteration": 1,
        }
        assert recorder.gfp_iterations == [{"iteration": 0, "updated_size": 3}]

    def test_derivations_parse_event_payloads(self):
        recorder = ProvenanceRecorder()
        derivation = small_derivation()
        recorder.event("row_provenance", derivation=derivation.json_ready())
        recorder.event("derivation", derivation=derivation.json_ready())
        assert recorder.derivations == [derivation, derivation]

    def test_counters_and_spans_are_no_ops(self):
        recorder = ProvenanceRecorder()
        recorder.counter("x")
        recorder.gauge("y", 1)
        with recorder.span("s"):
            pass
        assert recorder.events == []
