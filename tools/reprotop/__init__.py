"""reprotop: a live top-style monitor for long guarantee sweeps.

The fault-tolerant sweep engine (``repro.robustness``) emits
``sweep_progress`` events, per-worker shipped counters and cache
statistics into its ``repro-trace/1`` stream; this tool tails that
stream (or reads a sweep checkpoint plus a ``repro-metrics/1``
snapshot) and renders a refreshing status table:

* **Progress** -- done/total, percent, retry count, elapsed seconds and
  an ETA extrapolated from the observed row rate.
* **Retry histogram** -- attempts-per-task from ``task_attempt`` events.
* **Per-worker kernel throughput** -- measure-kernel queries attributed
  to each worker pid by the cross-process telemetry layer
  (``repro.obs.snapshot``).
* **Cache hit rate** -- exact ``hits/(hits+misses)`` Fraction.

Usage::

    PYTHONPATH=src python -m tools.reprotop trace.jsonl
    PYTHONPATH=src python -m tools.reprotop --once --json trace.jsonl
    PYTHONPATH=src python -m tools.reprotop --checkpoint sweep.jsonl \
        --metrics metrics.jsonl --total 42

``--once`` renders a single status and exits (CI mode); ``--json``
emits the status dict via :func:`repro.reporting.json_ready` instead of
tables.  Exit status: 0 on success (including a clean Ctrl-C), 2 when
an input is unreadable or violates its schema.

Like the other tools this is an *auditor*: it only imports repro's
read-only surface (``errors``, ``obs``, ``reporting``) and its only
clock reads go through ``repro.obs.clock`` (reprolint RL008 holds for
``tools/`` too; ``time.sleep`` between refreshes is the sanctioned
exception).
"""

from .monitor import SweepMonitor, checkpoint_status, render_status, snapshot_status

__all__ = ["SweepMonitor", "checkpoint_status", "render_status", "snapshot_status"]
