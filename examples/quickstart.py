#!/usr/bin/env python3
"""Quickstart: the introduction's coin-toss betting story, end to end.

Three agents: p3 tosses a fair coin at time 0 and observes the outcome at
time 1; p1 and p2 never learn it.  What probability should p1 assign to
"heads" at time 1?  The paper's answer: it depends who is offering the bet.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro.betting import BettingRule, constant_strategy, expected_winnings, verify_theorem7
from repro.core import opponent_assignment, standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import Model, parse

P1, P2, P3 = 0, 1, 2


def main() -> None:
    example = three_agent_coin_system()
    psys = example.psys
    heads = example.heads

    print("The computation tree (p3's view):")
    print(psys.trees[0].ascii_render(lambda state: str(state.local_states[P3][0])))
    print()

    named = standard_assignments(psys)
    time1 = psys.system.points_at_time(1)
    c = time1[0]

    print("p1's probability of heads at time 1:")
    print(f"  P_post (betting a copy of itself): {named['post'].probability(P1, c, heads)}")
    fut_values = sorted(named["fut"].probability(P1, point, heads) for point in time1)
    print(f"  P_fut  (opponent knows the past):  0 or 1 -- {fut_values}")
    print()

    print("The same story in the logic L(Phi):")
    model = Model(named["post"], {"heads": heads})
    print(f"  P_post |= K0^1/2 heads           : {model.holds(parse('K0^1/2 heads'), c)}")
    fut_model = model.with_assignment(named["fut"])
    formula = parse("K0 ((Pr0(heads) >= 1) | (Pr0(heads) <= 0))")
    print(f"  P_fut  |= K0(Pr=1 or Pr=0)       : {fut_model.holds(formula, c)}")
    print()

    print("Betting at 2-for-1 on heads (Bet(heads, 1/2)):")
    rule = BettingRule(heads, Fraction(1, 2))
    for opponent, name in ((P2, "p2 (never learns)"), (P3, "p3 (saw the coin)")):
        assignment = opponent_assignment(psys, opponent)
        safe = assignment.knows_probability_at_least(P1, c, heads, Fraction(1, 2))
        print(f"  against {name:<20}: safe = {safe}")
    print()

    print("Why: expected winnings at the tails point against p3's sneaky")
    print("strategy (offer the bet only after seeing tails):")
    tails_point = next(point for point in time1 if not heads.holds_at(point))
    tails_local = tails_point.local_state(P3)
    from repro.betting import Strategy

    sneaky = Strategy(P3, {tails_local: Fraction(2)})
    against_p3 = opponent_assignment(psys, P3)
    value = expected_winnings(against_p3.space(P1, tails_point), rule.winnings(sneaky))
    print(f"  E[winnings] = {value}  (you only ever bet when you lose)")
    print()

    print("Theorem 7, machine-checked on this system:")
    for opponent in (P2, P3):
        report = verify_theorem7(psys, P1, opponent, heads)
        print(f"  opponent p{opponent + 1}: {report.details[-1]}")


if __name__ == "__main__":
    main()
