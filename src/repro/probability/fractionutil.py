"""Helpers for exact rational arithmetic.

Every probability in the library is a :class:`fractions.Fraction`.  The
paper's examples are all rational (1/2, 2/3, 0.99, 1/2**10, ...), and using
exact arithmetic end-to-end means the theorem verifiers compare values with
``==`` rather than with float tolerances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

FractionLike = Union[Fraction, int, str, float, tuple]

ZERO = Fraction(0)
ONE = Fraction(1)
HALF = Fraction(1, 2)


def as_fraction(value: FractionLike) -> Fraction:
    """Coerce ``value`` to an exact :class:`Fraction`.

    Accepted inputs:

    * ``Fraction`` -- returned unchanged.
    * ``int`` -- exact.
    * ``str`` -- parsed exactly (``"2/3"``, ``"0.99"``).
    * ``tuple`` ``(num, den)`` -- exact.
    * ``float`` -- converted via its *decimal* string representation, so
      ``as_fraction(0.99) == Fraction(99, 100)``.  (A raw
      ``Fraction(0.99)`` would expose the binary representation, which is
      never what a probability model means.)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not probabilities")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, tuple):
        numerator, denominator = value
        return Fraction(numerator, denominator)
    if isinstance(value, float):
        return Fraction(repr(value))
    raise TypeError(f"cannot interpret {value!r} as an exact probability")


def check_probability(value: FractionLike) -> Fraction:
    """Coerce to a Fraction and verify it lies in the closed unit interval."""
    fraction = as_fraction(value)
    if not ZERO <= fraction <= ONE:
        raise ValueError(f"probability {fraction} outside [0, 1]")
    return fraction


def format_fraction(value: Fraction, max_decimal_digits: int = 6) -> str:
    """Render a fraction for tables: exact if short, decimal otherwise.

    ``1/2`` renders as ``"1/2"``; ``1023/1024`` renders as ``"1023/1024"``;
    fractions with huge denominators fall back to a rounded decimal.
    """
    if value.denominator == 1:
        return str(value.numerator)
    if len(str(value.denominator)) <= max_decimal_digits:
        return f"{value.numerator}/{value.denominator}"
    return f"{float(value):.{max_decimal_digits}f}"
