"""The ``repro-trace/1`` JSONL schema: emission, parsing, exactness."""

import io
import json
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.obs import TRACE_SCHEMA, TraceRecorder, read_trace
from repro.reporting import fraction_from_json


def record_into_buffer(record_with):
    """Run ``record_with(recorder)`` against a fresh in-memory trace."""
    buffer = io.StringIO()
    recorder = TraceRecorder(buffer)
    record_with(recorder)
    recorder.close()
    buffer.seek(0)
    return read_trace(buffer)


class TestEmission:
    def test_header_is_first_and_carries_schema(self):
        records = record_into_buffer(lambda r: None)
        assert records[0]["type"] == "header"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[0]["seq"] == 0

    def test_seq_is_monotonic_and_ts_nondecreasing(self):
        def workload(recorder):
            recorder.counter("a")
            recorder.event("e", x=1)
            with recorder.span("s"):
                recorder.counter("b")

        records = record_into_buffer(workload)
        sequences = [record["seq"] for record in records]
        assert sequences == list(range(len(records)))
        stamps = [record["ts"] for record in records]
        assert stamps == sorted(stamps)

    def test_span_records_pair_and_carry_parent(self):
        def workload(recorder):
            with recorder.span("outer", depth=0):
                with recorder.span("inner", depth=1):
                    pass

        records = record_into_buffer(workload)
        starts = {r["name"]: r for r in records if r["type"] == "span-start"}
        ends = {r["name"]: r for r in records if r["type"] == "span-end"}
        assert starts["outer"]["parent"] is None
        assert starts["inner"]["parent"] == starts["outer"]["span"]
        for name in ("outer", "inner"):
            assert ends[name]["span"] == starts[name]["span"]
            assert ends[name]["seconds"] >= 0.0
        assert starts["inner"]["fields"] == {"depth": 1}

    def test_sibling_spans_share_a_parent(self):
        def workload(recorder):
            with recorder.span("sweep"):
                with recorder.span("row"):
                    pass
                with recorder.span("row"):
                    pass

        records = record_into_buffer(workload)
        starts = [r for r in records if r["type"] == "span-start"]
        sweep = next(r for r in starts if r["name"] == "sweep")
        rows = [r for r in starts if r["name"] == "row"]
        assert [r["parent"] for r in rows] == [sweep["span"], sweep["span"]]
        assert rows[0]["span"] != rows[1]["span"]

    def test_fractions_stay_exact_strings(self):
        records = record_into_buffer(
            lambda r: r.event("cache", rate=Fraction(99, 256))
        )
        event = next(r for r in records if r["type"] == "event")
        assert event["fields"]["rate"] == "99/256"
        assert fraction_from_json(event["fields"]["rate"]) == Fraction(99, 256)

    def test_counter_and_gauge_records(self):
        def workload(recorder):
            recorder.counter("hits", 3)
            recorder.gauge("level", Fraction(1, 2))

        records = record_into_buffer(workload)
        counter = next(r for r in records if r["type"] == "counter")
        gauge = next(r for r in records if r["type"] == "gauge")
        assert counter["name"] == "hits" and counter["value"] == 3
        assert gauge["value"] == "1/2"

    def test_records_written_counts_header(self):
        buffer = io.StringIO()
        recorder = TraceRecorder(buffer)
        recorder.counter("x")
        assert recorder.records_written == 2

    def test_path_destination_is_owned_and_closed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(path)
        recorder.counter("x")
        recorder.close()
        records = read_trace(path)
        assert [r["type"] for r in records] == ["header", "counter"]


class TestHypothesisRoundTrip:
    @given(
        fields=st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                min_size=1,
                max_size=12,
            ),
            st.one_of(
                st.fractions(),
                st.integers(min_value=-(10**12), max_value=10**12),
                st.booleans(),
                st.none(),
            ),
            max_size=5,
        )
    )
    def test_event_fields_round_trip_through_jsonl(self, fields):
        buffer = io.StringIO()
        recorder = TraceRecorder(buffer)
        recorder.event("probe", **fields)
        recorder.close()
        buffer.seek(0)
        records = read_trace(buffer)
        decoded = next(r for r in records if r["type"] == "event")["fields"]
        assert set(decoded) == set(fields)
        for key, value in fields.items():
            if isinstance(value, Fraction):
                assert fraction_from_json(decoded[key]) == value
            else:
                assert decoded[key] == value


class TestReadTrace:
    def _valid_lines(self):
        buffer = io.StringIO()
        recorder = TraceRecorder(buffer)
        recorder.counter("a")
        recorder.counter("b")
        recorder.close()
        return buffer.getvalue().splitlines()

    def test_truncated_final_line_is_dropped(self):
        lines = self._valid_lines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        records = read_trace(lines)
        assert len(records) == 2  # header + first counter

    def test_garbage_before_the_end_raises(self):
        lines = self._valid_lines()
        lines[1] = "{not json"
        with pytest.raises(TraceError, match="not the final line"):
            read_trace(lines)

    def test_non_object_line_raises(self):
        lines = self._valid_lines()
        lines[1] = "[1, 2, 3]"
        with pytest.raises(TraceError, match="not a JSON object"):
            read_trace(lines)

    def test_missing_header_raises_in_strict_mode(self):
        lines = [json.dumps({"type": "counter", "name": "x", "value": 1})]
        with pytest.raises(TraceError, match="header"):
            read_trace(lines)
        assert read_trace(lines, strict=False)[0]["type"] == "counter"

    def test_wrong_schema_raises(self):
        lines = [json.dumps({"type": "header", "schema": "repro-trace/999"})]
        with pytest.raises(TraceError, match="header"):
            read_trace(lines)

    def test_empty_trace_raises(self):
        with pytest.raises(TraceError, match="empty"):
            read_trace([])

    def test_blank_lines_are_skipped(self):
        lines = self._valid_lines()
        lines.insert(1, "")
        assert len(read_trace(lines)) == 3


class TestHalfWrittenTail:
    """A killed writer truncates mid-record; the reader must tolerate it.

    The chaos harness kills workers at arbitrary moments, so a trace's
    final line can stop at *any* byte.  Whatever the cut point, reading
    the file must either drop exactly the half-written final record or
    raise TraceError -- never crash with anything else, never corrupt an
    earlier record.
    """

    def _trace_bytes(self):
        buffer = io.StringIO()
        recorder = TraceRecorder(buffer)
        recorder.counter("alpha", 1)
        recorder.event("cache", rate=Fraction(99, 256))
        with recorder.span("work", phase="final"):
            pass
        recorder.close()
        return buffer.getvalue().encode("utf-8")

    def test_every_byte_boundary_of_the_final_record(self):
        data = self._trace_bytes()
        full_records = read_trace(data.decode("utf-8").splitlines())
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        # cut at every byte boundary inside the final record (including
        # cutting it away entirely and keeping it whole)
        for cut in range(last_line_start, len(data) + 1):
            truncated = data[:cut].decode("utf-8", errors="strict")
            records = read_trace(truncated.splitlines())
            # a cut that leaves the final record complete JSON (e.g.
            # only the trailing newline is missing) keeps it; any other
            # cut drops exactly the half-written record
            tail = data[last_line_start:cut].decode("utf-8").strip()
            try:
                json.loads(tail)
                complete = bool(tail)
            except json.JSONDecodeError:
                complete = False
            if complete:
                assert records == full_records
            else:
                assert records == full_records[:-1]

    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_any_prefix_parses_or_raises_trace_error(self, cut):
        data = self._trace_bytes()
        truncated = data[: min(cut, len(data))].decode("utf-8")
        lines = truncated.splitlines()
        try:
            records = read_trace(lines)
        except TraceError:
            # acceptable only when the header itself was cut
            assert truncated.count("\n") == 0
            return
        # whole records survive byte-for-byte: every parsed record is a
        # prefix of the full record list
        full_records = read_trace(data.decode("utf-8").splitlines())
        assert records == full_records[: len(records)]

    def test_truncation_never_reorders_or_alters_fractions(self):
        data = self._trace_bytes()
        # cut right after the exact-fraction event line
        lines = data.decode("utf-8").splitlines()
        event_line = next(i for i, l in enumerate(lines) if '"cache"' in l)
        kept = "\n".join(lines[: event_line + 1]) + "\n" + lines[event_line + 1][:5]
        records = read_trace(kept.splitlines())
        event = next(r for r in records if r["type"] == "event")
        assert fraction_from_json(event["fields"]["rate"]) == Fraction(99, 256)
