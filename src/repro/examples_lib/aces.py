"""Freund's puzzle of the two aces (Appendix B.1, after Shafer).

A four-card deck -- the ace and deuce of hearts and spades -- is shuffled
and two cards are dealt to ``p_1``.  What probability should ``p_2`` assign
to "``p_1`` holds both aces" as ``p_1`` makes announcements?  Shafer's
point, which the appendix endorses: *it depends on the protocol ``p_1`` is
following*, and ``P_post`` computes the right answer once the protocol is
part of the system.

Three protocols are modeled:

* **ask-then-ask** -- ``p_1`` first says whether it holds an ace, then
  whether it holds the ace of spades.  Hearing "yes, yes" takes ``p_2``'s
  probability from 1/6 to 1/5 to **1/3**.
* **reveal-random** -- ``p_1`` says whether it holds an ace, then names the
  suit of an ace it holds, choosing *at random* if it holds both.  Hearing
  "spades" now teaches nothing: the probability stays **1/5**.
* **reveal-hearts-bias** (footnote 20) -- as above but ``p_1`` always says
  hearts when it holds both aces; hearing "spades" then drops the
  probability of both aces to **0**.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..core.standard import PostAssignment
from ..trees.builder import build_tree
from ..trees.probabilistic_system import ProbabilisticSystem, single_tree_system

P1, P2 = 0, 1

ACE_SPADES = "AS"
ACE_HEARTS = "AH"
DEUCE_SPADES = "2S"
DEUCE_HEARTS = "2H"
DECK = (ACE_SPADES, ACE_HEARTS, DEUCE_SPADES, DEUCE_HEARTS)

Hand = FrozenSet[str]
HANDS: Tuple[Hand, ...] = tuple(
    frozenset(hand) for hand in combinations(DECK, 2)
)


def _has_ace(hand: Hand) -> bool:
    return bool(hand & {ACE_SPADES, ACE_HEARTS})


@dataclass
class AcesExample:
    """One protocol's system, plus the events of the puzzle."""

    name: str
    psys: ProbabilisticSystem
    both_aces: Fact          # A
    at_least_one_ace: Fact   # B
    has_ace_of_spades: Fact  # C
    has_ace_of_hearts: Fact  # D


def _hand_fact(predicate, name: str) -> Fact:
    return Fact.about_local_state(
        P1, lambda local: predicate(frozenset(local[0])), name=name
    )


def _build(name: str, protocol: str) -> AcesExample:
    """Unfold a protocol into a tree.

    Time 0: nothing dealt.  Time 1: the hand is dealt (chance, uniform over
    the six hands).  Time 2: the first announcement.  Time 3: the second
    announcement.  ``p_1``'s local state is its hand; ``p_2``'s local state
    is the transcript of announcements heard.  Both are clock-stamped by
    construction (states grow each round), so the system is synchronous.
    """

    def step(time, locals_, extra):
        hand_state, transcript = locals_
        if time == 0:
            return tuple(
                (
                    Fraction(1, 6),
                    tuple(sorted(hand)),
                    ((tuple(sorted(hand)), 1), (transcript[0] + ("dealt",), 1)),
                    None,
                )
                for hand in HANDS
            )
        hand = frozenset(hand_state[0])
        if time == 1:
            answer = "yes-ace" if _has_ace(hand) else "no-ace"
            return (
                (
                    Fraction(1),
                    answer,
                    ((hand_state[0], 2), (transcript[0] + (answer,), 2)),
                    None,
                ),
            )
        if time == 2:
            return _second_announcement(protocol, hand, hand_state, transcript)
        return ()

    tree = build_tree(name, (("undealt", 0), ((), 0)), step, max_depth=4)
    psys = single_tree_system(tree)
    return AcesExample(
        name=name,
        psys=psys,
        both_aces=_hand_fact(
            lambda hand: hand == {ACE_SPADES, ACE_HEARTS}, "both_aces"
        ),
        at_least_one_ace=_hand_fact(_has_ace, "at_least_one_ace"),
        has_ace_of_spades=_hand_fact(lambda hand: ACE_SPADES in hand, "has_AS"),
        has_ace_of_hearts=_hand_fact(lambda hand: ACE_HEARTS in hand, "has_AH"),
    )


def _second_announcement(protocol: str, hand: Hand, hand_state, transcript):
    def branch(probability, answer):
        return (
            probability,
            answer,
            ((hand_state[0], 3), (transcript[0] + (answer,), 3)),
            None,
        )

    if protocol == "ask-then-ask":
        answer = "yes-spades" if ACE_SPADES in hand else "no-spades"
        return (branch(Fraction(1), answer),)
    if not _has_ace(hand):
        return (branch(Fraction(1), "silent"),)
    holds_spades = ACE_SPADES in hand
    holds_hearts = ACE_HEARTS in hand
    if protocol == "reveal-random":
        if holds_spades and holds_hearts:
            return (
                branch(Fraction(1, 2), "say-spades"),
                branch(Fraction(1, 2), "say-hearts"),
            )
    if protocol == "reveal-hearts-bias":
        if holds_spades and holds_hearts:
            return (branch(Fraction(1), "say-hearts"),)
    answer = "say-spades" if holds_spades else "say-hearts"
    return (branch(Fraction(1), answer),)


def ask_then_ask() -> AcesExample:
    """Protocol I: announce "ace?", then "ace of spades?"."""
    return _build("aces/ask-then-ask", "ask-then-ask")


def reveal_random() -> AcesExample:
    """Protocol II: announce "ace?", then reveal a held ace's suit, random
    tie-break."""
    return _build("aces/reveal-random", "reveal-random")


def reveal_hearts_bias() -> AcesExample:
    """Protocol III (footnote 20): always say hearts when holding both."""
    return _build("aces/reveal-hearts-bias", "reveal-hearts-bias")


def posterior_after(
    example: AcesExample, transcript_suffix: Tuple[str, ...], fact: Fact
) -> Fraction:
    """``p_2``'s ``P_post`` probability of ``fact`` at the (unique class of)
    points whose announcement transcript ends with the given suffix."""
    post = ProbabilityAssignment(PostAssignment(example.psys))
    system = example.psys.system
    candidates = []
    for point in system.points:
        transcript = point.local_state(P2)[0]
        if tuple(transcript[-len(transcript_suffix):]) == tuple(transcript_suffix):
            candidates.append(point)
    if not candidates:
        raise ValueError(f"no point matches transcript suffix {transcript_suffix!r}")
    values = {post.inner_probability(P2, point, fact) for point in candidates}
    if len(values) != 1:
        raise ValueError(f"posterior not uniform across matching points: {values}")
    return values.pop()
