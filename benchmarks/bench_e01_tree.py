"""E01 -- Figure 1 / Section 3: the labeled computation tree.

Regenerates Figure 1's object: a computation tree with transition
probabilities on the edges, the induced run probabilities (products along
paths), and the ASCII rendering.
"""

from fractions import Fraction

from repro.probability import format_fraction
from repro.reporting import print_table
from repro.testing import random_tree


def build_and_measure():
    tree = random_tree(seed=17, num_agents=2, depth=3, max_branching=3)
    space = tree.run_space()
    total = space.measure(space.outcomes)
    return tree, total


def test_e01_computation_tree(benchmark):
    tree, total = benchmark(build_and_measure)
    assert total == 1
    rows = [
        (index, run.horizon - 1, format_fraction(tree.run_probability(run)))
        for index, run in enumerate(tree.runs)
    ]
    print_table(
        "E01  computation tree: run probabilities are edge-label products",
        ["run", "depth", "probability"],
        rows,
    )
    print("\n" + tree.ascii_render())
    assert sum(tree.run_probability(run) for run in tree.runs) == 1
    assert all(tree.run_probability(run) > 0 for run in tree.runs)
