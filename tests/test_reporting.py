"""Table rendering for the benchmark harness."""

import json
from fractions import Fraction

from repro.reporting import json_ready, render_cell, render_table


class TestRenderCell:
    def test_fraction(self):
        assert render_cell(Fraction(1, 2)) == "1/2"

    def test_boolean(self):
        assert render_cell(True) == "yes"
        assert render_cell(False) == "no"

    def test_fraction_pair(self):
        assert render_cell((Fraction(1, 4), Fraction(3, 4))) == "[1/4, 3/4]"

    def test_plain(self):
        assert render_cell("text") == "text"
        assert render_cell(7) == "7"


class TestRenderTable:
    def test_title_and_headers(self):
        table = render_table("demo", ["a", "b"], [[1, 2]])
        lines = table.splitlines()
        assert lines[0] == "== demo =="
        assert lines[1].split() == ["a", "b"]

    def test_alignment(self):
        table = render_table("demo", ["col", "x"], [["longvalue", 1], ["s", 22]])
        lines = table.splitlines()
        # data rows follow title, header, separator; the second column of
        # every data row starts at the same offset
        offsets = {line.index(value) for line, value in zip(lines[3:], ["1", "22"])}
        assert len(offsets) == 1

    def test_row_count(self):
        rows = [[i, i * i] for i in range(5)]
        table = render_table("demo", ["n", "n2"], rows)
        assert len(table.splitlines()) == 2 + 1 + 5  # title + header + sep + rows

    def test_no_trailing_whitespace(self):
        table = render_table("demo", ["a", "b"], [["x", "y"]])
        assert all(line == line.rstrip() for line in table.splitlines())


class TestJsonReadyHugeInts:
    """Ints past CPython's decimal-digit limit go through JSON as hex."""

    def test_small_ints_stay_plain_numbers(self):
        assert json_ready(2**1024 - 1) == 2**1024 - 1

    def test_100k_bit_mask_round_trips_exactly(self):
        mask = (1 << 100_000) | 0b1011
        encoded = json.loads(json.dumps(json_ready(mask)))
        assert isinstance(encoded, str) and encoded.startswith("0x")
        assert int(encoded, 16) == mask

    def test_negative_huge_int_round_trips(self):
        value = -(1 << 20_000)
        assert int(json_ready(value), 16) == value
