"""Ablation -- memoized knowledge partition versus naive pairwise scan.

``System`` indexes points by (agent, local state) so ``K_i(c)`` is a
dictionary lookup.  The ablation times the indexed path against the naive
scan retained as ``knowledge_set_naive`` and asserts they agree.
"""

import pytest

from repro.examples_lib import repeated_coin_system
from repro.reporting import print_table


@pytest.fixture(scope="module")
def system():
    return repeated_coin_system(6).psys.system


def indexed_sweep(system):
    total = 0
    for agent in system.agents:
        for point in system.points[:: 7]:
            total += len(system.knowledge_set(agent, point))
    return total


def naive_sweep(system):
    total = 0
    for agent in system.agents:
        for point in system.points[:: 7]:
            total += len(system.knowledge_set_naive(agent, point))
    return total


def test_ablation_indexed_knowledge(benchmark, system):
    total = benchmark(indexed_sweep, system)
    assert total == naive_sweep(system)
    print_table(
        "ABLATION  knowledge queries on the 6-toss system",
        ["variant", "result"],
        [("indexed (benchmarked)", total), ("naive scan (cross-checked)", total)],
    )


def test_ablation_naive_knowledge(benchmark, system):
    total = benchmark(naive_sweep, system)
    assert total == indexed_sweep(system)
