"""Plain-text table and machine-readable JSON rendering for benchmarks.

Every experiment bench regenerates one of the paper's worked results and
prints it as a table; this module keeps the formatting in one place so the
tables in ``bench_output.txt`` and EXPERIMENTS.md stay consistent.  The
JSON helpers back ``make bench-json`` / ``benchmarks/collect.py``, which
emit ``BENCH_<n>.json`` so the perf trajectory is comparable PR-over-PR.
Exact values stay exact in JSON: a :class:`fractions.Fraction` is encoded
as its ``"p/q"`` string, never as a float.
"""

from __future__ import annotations

import dataclasses
import json
from fractions import Fraction
from typing import Iterable, List, Mapping, Sequence

from .probability.fractionutil import format_fraction


def render_cell(value) -> str:
    """Format one table cell: exact fractions, booleans, plain text."""
    if isinstance(value, Fraction):
        return format_fraction(value)
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, tuple) and all(isinstance(item, Fraction) for item in value):
        return "[" + ", ".join(format_fraction(item) for item in value) + "]"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a titled, width-aligned plain-text table."""
    rendered_rows: List[List[str]] = [[render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [line(list(headers)), separator]
    body.extend(line(row) for row in rendered_rows)
    return f"== {title} ==\n" + "\n".join(body)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render, print, and return a table (benches print for the tee'd log)."""
    text = render_table(title, headers, rows)
    print("\n" + text)
    return text


# ----------------------------------------------------------------------
# Machine-readable benchmark reports
# ----------------------------------------------------------------------


#: Ints whose decimal rendering would exceed CPython's default
#: ``int_max_str_digits`` limit (4300 digits) make ``json.dumps`` raise,
#: so :func:`json_ready` encodes them as exact ``"0x..."`` hex strings
#: instead (hex conversion is not subject to the limit).  The bound is in
#: bits and sits safely below the first over-limit value, so the point
#: masks of >=100k-point word-array systems serialise losslessly while
#: every int that *could* appear in an existing artifact keeps its plain
#: JSON number representation.
_INT_DECIMAL_SAFE_BITS = 14_000


def json_ready(value):
    """Recursively convert a value to something ``json.dumps`` accepts.

    Fractions become exact ``"p/q"`` strings (``"1/256"``, ``"1"``) --
    the reproduction never rounds a probability, not even in a report.
    Huge ints (wider than :data:`_INT_DECIMAL_SAFE_BITS` bits, e.g. the
    point mask of a 100k-point system) become exact ``"0x..."`` strings;
    ``int(text, 16)`` restores them.  Dataclasses, mappings, and
    sequences are converted element-wise.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, int) and value.bit_length() > _INT_DECIMAL_SAFE_BITS:
        return hex(value)
    if isinstance(value, (int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: json_ready(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): json_ready(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [json_ready(item) for item in items]
    return repr(value)


def fraction_from_json(value) -> Fraction:
    """Decode the exact ``"p/q"`` encoding of :func:`json_ready` back to a
    :class:`fractions.Fraction`.

    Accepts the string forms ``"p/q"`` and ``"n"`` plus plain ints (JSON
    round-trips small integers as numbers).  Floats are rejected: a float
    in a checkpoint or report means some producer rounded an exact value,
    which the reproduction never does.
    """
    if isinstance(value, bool) or isinstance(value, float):
        raise ValueError(f"not an exact fraction encoding: {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise ValueError(f"not an exact fraction encoding: {value!r}")


def write_bench_json(path, payload) -> str:
    """Serialise a benchmark report to pretty-printed JSON at ``path``.

    Returns the rendered text (callers print it for the tee'd log).
    """
    text = json.dumps(json_ready(payload), indent=2, sort_keys=False)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text
