"""The model checker: boolean, knowledge, probability, temporal cases."""

from fractions import Fraction

import pytest

from repro.core import Fact, opponent_assignment, standard_assignments
from repro.errors import LogicError
from repro.examples_lib import three_agent_coin_system
from repro.logic import Model, parse
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def model(coin):
    post = standard_assignments(coin.psys)["post"]
    return Model(post, {"heads": coin.heads})


@pytest.fixture(scope="module")
def c1(coin):
    return coin.psys.system.points_at_time(1)[0]


class TestBoolean:
    def test_proposition(self, model, coin):
        assert model.extension(parse("heads")) == coin.heads.points(coin.psys.system)

    def test_unknown_proposition_raises(self, model, c1):
        with pytest.raises(LogicError):
            model.holds(parse("mystery"), c1)

    def test_constants(self, model):
        assert model.valid(parse("true"))
        assert model.extension(parse("false")) == frozenset()

    def test_negation_partition(self, model):
        points = frozenset(model.system.points)
        assert model.extension(parse("heads")) | model.extension(
            parse("!heads")
        ) == points
        assert not model.extension(parse("heads")) & model.extension(parse("!heads"))

    def test_tautologies(self, model):
        for text in (
            "heads | !heads",
            "heads -> heads",
            "heads <-> heads",
            "!(heads & !heads)",
        ):
            assert model.valid(parse(text)), text

    def test_iff_matches_pointwise(self, model):
        left = model.extension(parse("heads"))
        evaluated = model.extension(parse("heads <-> true"))
        assert evaluated == left


class TestKnowledge:
    def test_tosser_knows_outcome(self, model, coin):
        heads_points_t1 = [
            point
            for point in coin.psys.system.points_at_time(1)
            if coin.heads.holds_at(point)
        ]
        for point in heads_points_t1:
            assert model.holds(parse("K2 heads"), point)
            assert not model.holds(parse("K0 heads"), point)

    def test_knowledge_veridical(self, model):
        # K_i phi -> phi holds at every point (S5 property of the semantics)
        assert model.valid(parse("K0 heads -> heads"))
        assert model.valid(parse("K2 heads -> heads"))

    def test_positive_introspection(self, model):
        assert model.valid(parse("K2 heads -> K2 K2 heads"))

    def test_everyone_knows(self, model):
        # E{0,1,2} heads fails (p1, p2 never learn)
        assert model.extension(parse("E{0,1,2} heads")) == frozenset()

    def test_common_knowledge_of_tautology(self, model):
        assert model.valid(parse("C{0,1,2} (heads | !heads)"))


class TestProbability:
    def test_pr_at_least_post(self, model, c1):
        assert model.holds(parse("Pr0(heads) >= 1/2"), c1)
        assert not model.holds(parse("Pr0(heads) >= 2/3"), c1)

    def test_pr_at_most(self, model, c1):
        assert model.holds(parse("Pr0(heads) <= 1/2"), c1)
        assert not model.holds(parse("Pr0(heads) <= 1/3"), c1)

    def test_k_alpha_sugar(self, model, c1):
        assert model.holds(parse("K0^1/2 heads"), c1)
        assert not model.holds(parse("K0^2/3 heads"), c1)

    def test_interval_operator(self, model, c1):
        assert model.holds(parse("K0^[1/2,1/2] heads"), c1)
        assert not model.holds(parse("K0^[2/3,1] heads"), c1)

    def test_consistency_axiom(self, model):
        # K_i phi => Pr_i(phi) = 1 for the consistent post assignment
        assert model.valid(parse("K2 heads -> Pr2(heads) >= 1"))

    def test_fut_assignment_swaps_in(self, coin, model, c1):
        fut_model = model.with_assignment(standard_assignments(coin.psys)["fut"])
        assert fut_model.holds(
            parse("K0 ((Pr0(heads) >= 1) | (Pr0(heads) <= 0))"), c1
        )
        assert not fut_model.holds(parse("K0^1/2 heads"), c1)

    def test_opponent_assignment(self, coin, model, c1):
        against_p3 = model.with_assignment(opponent_assignment(coin.psys, 2))
        assert not against_p3.holds(parse("K0^1/2 heads"), c1)


class TestTemporal:
    @pytest.fixture(scope="class")
    def temporal_model(self):
        psys = random_psys(seed=8, num_trees=1, depth=3, observability=("full", "clock"))
        post = standard_assignments(psys)["post"]
        return Model(post, {"even": parity_fact()})

    def test_next(self, temporal_model):
        model = temporal_model
        for point in model.system.points:
            expected = model.holds(parse("even"), point.successor())
            assert model.holds(parse("X even"), point) == expected

    def test_next_stutters_at_horizon(self, temporal_model):
        model = temporal_model
        for run in model.system.runs:
            last = list(run.points())[-1]
            assert model.holds(parse("X even"), last) == model.holds(
                parse("even"), last
            )

    def test_until_unfolding(self, temporal_model):
        # p U q  <->  q | (p & X(p U q)) within the horizon
        model = temporal_model
        lhs = model.extension(parse("even U !even"))
        rhs = model.extension(parse("!even | (even & X (even U !even))"))
        # the unfolding can differ at final points where X stutters; check
        # the inclusion that always holds and equality off the horizon
        for point in model.system.points:
            if point.time < point.run.horizon - 1:
                assert (point in lhs) == (point in rhs)

    def test_eventually_and_globally(self, temporal_model):
        model = temporal_model
        always = model.extension(parse("G even"))
        eventually_not = model.extension(parse("F !even"))
        assert always == frozenset(model.system.points) - eventually_not

    def test_globally_implies_now(self, temporal_model):
        assert temporal_model.valid(parse("G even -> even"))

    def test_eventually_true_now(self, temporal_model):
        assert temporal_model.valid(parse("even -> F even"))


class TestFactBridge:
    def test_fact_of(self, model):
        fact = model.fact_of(parse("K2 heads"))
        assert isinstance(fact, Fact)
        assert fact.points(model.system) == model.extension(parse("K2 heads"))
