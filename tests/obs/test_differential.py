"""Observe-only, proven differentially: instrumentation changes nothing.

The acceptance bar of the observability layer is byte-identity: a sweep
or fixpoint computed under a live recorder must equal the uninstrumented
computation not just semantically but in its serialised bytes -- the
same exact Fractions, the same row order, the same extension sets.
"""

import io
import json
from fractions import Fraction

from repro.attack import build_ca2
from repro.attack.sweep import guarantee_sweep
from repro.core import standard_assignments
from repro.logic import CommonKnowsProb, Model, Prop
from repro.obs import (
    MetricsRecorder,
    MultiRecorder,
    NULL_RECORDER,
    TraceRecorder,
    get_recorder,
    use_recorder,
)
from repro.reporting import json_ready

MESSENGERS = [1, 2, 3]
LOSSES = [Fraction(1, 2), Fraction(1, 4)]


def _sweep_bytes():
    rows = guarantee_sweep(MESSENGERS, LOSSES)
    return json.dumps(json_ready(rows), sort_keys=True).encode("utf-8")


def test_instrumented_sweep_rows_are_byte_identical():
    baseline = _sweep_bytes()
    recorder = MultiRecorder([MetricsRecorder(), TraceRecorder(io.StringIO())])
    with use_recorder(recorder):
        instrumented = _sweep_bytes()
    assert instrumented == baseline
    # ... and the recorder really was live, not silently bypassed.
    metrics = recorder.children[0]
    assert metrics.counters["event:cache_stats"] == len(MESSENGERS) * len(LOSSES) * 3


def _gfp_extension():
    attack = build_ca2(2, Fraction(1, 2))
    post = standard_assignments(attack.psys)["post"]
    model = Model(post, {"coord": attack.coordinated})
    formula = CommonKnowsProb(tuple(attack.group), Fraction(1, 2), Prop("coord"))
    return model.extension(formula)


def test_instrumented_gfp_fixpoint_is_identical():
    baseline = _gfp_extension()
    metrics = MetricsRecorder()
    with use_recorder(metrics):
        instrumented = _gfp_extension()
    assert instrumented == baseline
    assert metrics.counters["model.gfp_fixpoints"] >= 1
    assert metrics.counters["model.gfp_iterations"] >= 1


def test_provenance_instrumented_sweep_rows_are_byte_identical():
    from repro.obs import ProvenanceRecorder

    baseline = _sweep_bytes()
    recorder = ProvenanceRecorder()
    with use_recorder(recorder):
        rows = guarantee_sweep(MESSENGERS, LOSSES, provenance=True)
        instrumented = json.dumps(json_ready(rows), sort_keys=True).encode("utf-8")
    assert instrumented == baseline
    # ... and the recorder captured one full derivation per row.
    assert len(recorder.derivations) == len(MESSENGERS) * len(LOSSES) * 3


def test_provenance_instrumented_gfp_fixpoint_is_identical():
    from repro.obs import ProvenanceRecorder

    baseline = _gfp_extension()
    recorder = ProvenanceRecorder()
    with use_recorder(recorder):
        instrumented = _gfp_extension()
    assert instrumented == baseline
    # the per-iteration snapshots were live (non-NULL recorder installed)
    assert recorder.gfp_iterations
    assert recorder.event_counts.get("gfp", 0) >= 1


def test_suite_runs_with_the_null_default():
    # Every other test in the tier-1 suite implicitly measures the
    # NullRecorder overhead; this pin makes a leaked recorder (a test
    # forgetting to restore) an immediate failure rather than a silent
    # perf and isolation hazard.
    assert get_recorder() is NULL_RECORDER
