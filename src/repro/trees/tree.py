"""Labeled computation trees (Section 3, Figure 1).

Once a type-1 adversary ``A`` is fixed, the runs of the system with that
adversary form a computation tree ``T_A``: nodes are global states, paths
are runs, and each edge carries a positive transition probability such that
every node's outgoing probabilities sum to 1.  The probability of a run is
the product of its edge labels (all runs here are finite, as in [FZ88a]).

The tree deliberately separates its *structure* (the unlabeled graph) from
its *transition probability assignment* ``pi`` (the edge labels):
Theorem 8's proof quantifies over all relabelings of a fixed structure, and
:meth:`ComputationTree.relabel` is the operation that makes the proof
executable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import InvalidMeasureError, TechnicalAssumptionError, TreeError
from ..probability.fractionutil import ONE, ZERO, FractionLike, as_fraction, format_fraction
from ..probability.space import FiniteProbabilitySpace
from ..core.model import GlobalState, Point, Run

Edge = Tuple[GlobalState, GlobalState]
Relabeling = Union[Mapping[Edge, FractionLike], Callable[[GlobalState, GlobalState], FractionLike]]


class ComputationTree:
    """A labeled computation tree ``T_A`` for one type-1 adversary ``A``.

    Parameters
    ----------
    adversary:
        The type-1 adversary this tree factors out (any hashable id).
    root:
        The initial global state.
    children:
        Mapping from each internal node to its ordered children.
    edge_probabilities:
        Mapping from ``(parent, child)`` to a positive transition
        probability; each node's outgoing labels must sum to 1.
    validate:
        Run the structural checks (reachability, positive labels summing
        to 1 per node, no repeated global state).  The generative builder
        (:func:`repro.trees.builder.build_tree`) passes ``False`` because
        its expansion guarantees each invariant by construction; direct
        and relabeled constructions keep the default ``True``.
    """

    def __init__(
        self,
        adversary: Hashable,
        root: GlobalState,
        children: Mapping[GlobalState, Sequence[GlobalState]],
        edge_probabilities: Mapping[Edge, FractionLike],
        validate: bool = True,
    ) -> None:
        self.adversary = adversary
        self.root = root
        self._children: Dict[GlobalState, Tuple[GlobalState, ...]] = {
            parent: tuple(kids) for parent, kids in children.items() if kids
        }
        self._edge_probability: Dict[Edge, Fraction] = {
            edge: as_fraction(probability)
            for edge, probability in edge_probabilities.items()
        }
        if validate:
            self._validate()
        # Enumerate runs depth-first, accumulating each run's probability
        # along the way: one multiply per tree edge instead of one per
        # (run, edge) pair as the old per-run _product_along pass paid.
        runs: List[Run] = []
        run_probability: Dict[Run, Fraction] = {}
        stack: List[Tuple[Tuple[GlobalState, ...], Fraction]] = [((root,), ONE)]
        while stack:
            path, probability = stack.pop()
            tail = path[-1]
            kids = self._children.get(tail, ())
            if not kids:
                run = Run(path)
                runs.append(run)
                run_probability[run] = probability
                continue
            for child in reversed(kids):
                stack.append(
                    (path + (child,), probability * self._edge_probability[(tail, child)])
                )
        self._runs: Tuple[Run, ...] = tuple(runs)
        self._run_probability: Dict[Run, Fraction] = run_probability
        total = sum(run_probability.values(), ZERO)
        if total != ONE:
            raise InvalidMeasureError(
                f"run probabilities sum to {total}, not 1 (tree mislabeled?)"
            )
        points: List[Point] = []
        node_runs: Dict[GlobalState, List[Run]] = {}
        for run in runs:
            for time, state in enumerate(run.states):
                points.append(Point(run, time))
                node_runs.setdefault(state, []).append(run)
        self._points: Tuple[Point, ...] = tuple(points)
        # node -> runs through it, precomputed so runs_through_node is a
        # lookup instead of a runs x states scan per query
        self._node_runs: Dict[GlobalState, FrozenSet[Run]] = {
            node: frozenset(through) for node, through in node_runs.items()
        }
        self._node_set: FrozenSet[GlobalState] = frozenset(node_runs)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        seen: set = {self.root}
        frontier: List[GlobalState] = [self.root]
        reachable: set = {self.root}
        while frontier:
            node = frontier.pop()
            kids = self._children.get(node, ())
            if not kids:
                continue
            total = ZERO
            for child in kids:
                edge = (node, child)
                if edge not in self._edge_probability:
                    raise TreeError(f"edge {edge!r} has no transition probability")
                probability = self._edge_probability[edge]
                if probability <= ZERO:
                    raise InvalidMeasureError(
                        "transition probabilities must be positive "
                        f"(edge to {child!r} labeled {probability})"
                    )
                total += probability
                if child in seen:
                    raise TechnicalAssumptionError(
                        f"global state {child!r} appears twice in the tree; the "
                        "environment must encode the full history"
                    )
                seen.add(child)
                reachable.add(child)
                frontier.append(child)
            if total != ONE:
                raise InvalidMeasureError(
                    f"outgoing probabilities at {node!r} sum to {total}, not 1"
                )
        for parent in self._children:
            if parent not in reachable:
                raise TreeError(f"node {parent!r} is not reachable from the root")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def children(self, node: GlobalState) -> Tuple[GlobalState, ...]:
        """The ordered children of ``node`` (empty for leaves)."""
        return self._children.get(node, ())

    def is_leaf(self, node: GlobalState) -> bool:
        """True iff ``node`` has no children."""
        return not self._children.get(node)

    def edge_probability(self, parent: GlobalState, child: GlobalState) -> Fraction:
        """The transition probability labeling ``parent -> child``."""
        try:
            return self._edge_probability[(parent, child)]
        except KeyError:
            raise TreeError(f"no edge {parent!r} -> {child!r}") from None

    @property
    def nodes(self) -> FrozenSet[GlobalState]:
        """Every global state appearing in the tree."""
        return self._node_set

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """Every labeled edge of the tree."""
        return tuple(self._edge_probability)

    def depth(self) -> int:
        """The length (in edges) of the longest run."""
        return max(run.horizon for run in self._runs) - 1

    def node_occurrences(self, max_visits: int = 1_000_000) -> Dict[GlobalState, int]:
        """How many times each global state is reached from the root.

        Under the technical assumption (Section 3: the environment state
        encodes the full history) every count is 1; a count above 1 means
        some state is shared between branches, which
        :func:`repro.robustness.validate.validate_tree` reports as a
        violation.  Counts are capped by ``max_visits`` so a structure
        with a cycle (reachable only through ``validate=False``)
        terminates instead of recursing forever.
        """
        counts: Dict[GlobalState, int] = {}
        stack: List[GlobalState] = [self.root]
        visits = 0
        while stack and visits < max_visits:
            node = stack.pop()
            visits += 1
            counts[node] = counts.get(node, 0) + 1
            if counts[node] > len(self._edge_probability) + 1:
                # Revisited more often than the edge count allows for a
                # DAG: a cycle.  Leave the inflated count as evidence.
                continue
            stack.extend(reversed(self._children.get(node, ())))
        return counts

    def path_to(self, node: GlobalState) -> Tuple[GlobalState, ...]:
        """The unique root path ending at ``node``."""
        for run in self._runs:
            for time, state in enumerate(run.states):
                if state == node:
                    return run.states[: time + 1]
        raise TreeError(f"{node!r} is not a node of this tree")

    # ------------------------------------------------------------------
    # Runs and points
    # ------------------------------------------------------------------

    def _enumerate_runs(self) -> Iterator[Run]:
        stack: List[Tuple[GlobalState, ...]] = [(self.root,)]
        while stack:
            path = stack.pop()
            kids = self._children.get(path[-1], ())
            if not kids:
                yield Run(path)
                continue
            for child in reversed(kids):
                stack.append(path + (child,))

    @property
    def runs(self) -> Tuple[Run, ...]:
        """The runs of the tree (root-to-leaf paths), depth-first order."""
        return self._runs

    @property
    def points(self) -> Tuple[Point, ...]:
        """Every point of every run of the tree."""
        return self._points

    def run_probability(self, run: Run) -> Fraction:
        """``mu_A(run)``: the product of the run's edge labels."""
        try:
            return self._run_probability[run]
        except KeyError:
            raise TreeError("run does not belong to this tree") from None

    def runs_through(self, points: Iterable[Point]) -> FrozenSet[Run]:
        """``R(S)``: the runs passing through a set of points (Section 5)."""
        return frozenset(point.run for point in points)

    def runs_through_node(self, node: GlobalState) -> FrozenSet[Run]:
        """The runs passing through a given global state (indexed lookup)."""
        try:
            return self._node_runs[node]
        except KeyError:
            return frozenset()

    def runs_through_node_naive(self, node: GlobalState) -> FrozenSet[Run]:
        """:meth:`runs_through_node` via a runs x states scan (ablation
        baseline for the construction-time index)."""
        return frozenset(run for run in self._runs if node in run.states)

    def contains_point(self, point: Point) -> bool:
        """True iff the point lies on a run of this tree."""
        return point.run in self._run_probability and point.time < point.run.horizon

    # ------------------------------------------------------------------
    # The probability space on runs (Section 3)
    # ------------------------------------------------------------------

    def run_space(
        self,
        generators: Optional[Iterable[Iterable[Run]]] = None,
        interval_cache_maxsize: Optional[int] = None,
    ) -> FiniteProbabilitySpace:
        """The probability space ``(R_A, X_A, mu_A)``.

        With finite runs every subset is measurable (the paper notes this for
        [FZ88a]); pass ``generators`` to restrict the sigma-algebra -- used
        by the footnote-5 demonstration of non-measurability.
        ``interval_cache_maxsize`` overrides the space's interval-cache
        bound (:class:`ProbabilisticSystem` forwards its own setting).
        """
        if generators is None:
            return FiniteProbabilitySpace.from_point_masses(
                self._run_probability,
                interval_cache_maxsize=interval_cache_maxsize,
            )
        from ..probability.algebra import atoms_from_generators

        atoms = atoms_from_generators(self._runs, generators)
        probabilities = {
            atom: sum((self._run_probability[run] for run in atom), ZERO)
            for atom in atoms
        }
        return FiniteProbabilitySpace(
            atoms, probabilities, interval_cache_maxsize=interval_cache_maxsize
        )

    # ------------------------------------------------------------------
    # Relabeling (Theorem 8 needs to quantify over labelings)
    # ------------------------------------------------------------------

    def relabel(self, labeling: Relabeling, adversary: Optional[Hashable] = None) -> "ComputationTree":
        """The same unlabeled structure with a new transition assignment."""
        if callable(labeling):
            new_labels = {
                (parent, child): labeling(parent, child)
                for (parent, child) in self._edge_probability
            }
        else:
            new_labels = dict(labeling)
        return ComputationTree(
            adversary if adversary is not None else self.adversary,
            self.root,
            self._children,
            new_labels,
        )

    def structure(self) -> Dict[GlobalState, Tuple[GlobalState, ...]]:
        """A copy of the unlabeled tree structure."""
        return dict(self._children)

    # ------------------------------------------------------------------
    # Rendering (Figure 1)
    # ------------------------------------------------------------------

    def ascii_render(
        self, describe: Optional[Callable[[GlobalState], str]] = None
    ) -> str:
        """An ASCII rendering of the labeled tree, reproducing Figure 1."""
        describe = describe or (lambda state: "o")
        lines: List[str] = []

        def visit(node: GlobalState, prefix: str, edge_label: str) -> None:
            lines.append(f"{prefix}{edge_label}{describe(node)}")
            kids = self._children.get(node, ())
            child_prefix = prefix + ("    " if edge_label else "")
            for index, child in enumerate(kids):
                probability = self._edge_probability[(node, child)]
                connector = "`-- " if index == len(kids) - 1 else "|-- "
                visit(child, child_prefix, f"{connector}[{format_fraction(probability)}] ")

        visit(self.root, "", "")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ComputationTree(adversary={self.adversary!r}, "
            f"{len(self._runs)} runs, depth {self.depth()})"
        )
