"""E07 -- Theorem 8: S^j is the maximum assignment determining safe bets.

Part (a): any S <= S^j determines safe bets against p_j, for every
transition labeling.  Part (b): an assignment escaping S^j admits a
transition labeling, a fact and a strategy under which the "safe" bet
loses money -- the witness is constructed exactly as in the proof.
"""

from fractions import Fraction

from repro.betting import theorem8_witness, verify_theorem8_part_a
from repro.core import Fact, FutureAssignment, PostAssignment
from repro.examples_lib import three_agent_coin_system
from repro.probability import format_fraction
from repro.reporting import print_table
from repro.trees import ProbabilisticSystem


def relabelings(psys, divisors=(2, 3, 5)):
    variants = [psys]
    for divisor in divisors:
        trees = []
        for tree in psys.trees:
            def labeling(parent, child, tree=tree, divisor=divisor):
                kids = tree.children(parent)
                weights = [divisor + k for k in range(len(kids))]
                return Fraction(weights[kids.index(child)], sum(weights))

            trees.append(tree.relabel(labeling))
        variants.append(ProbabilisticSystem(trees))
    return variants


def run_experiment():
    coin = three_agent_coin_system()
    heads_fact = Fact.about_local_state(2, lambda local: local[0] == "saw-heads")
    part_a = verify_theorem8_part_a(
        relabelings(coin.psys),
        lambda psys: FutureAssignment(psys),
        agent=0,
        opponent=2,
        facts_factory=lambda psys: [heads_fact],
    )
    witness = theorem8_witness(
        coin.psys, lambda psys: PostAssignment(psys), agent=0, opponent=2
    )
    return part_a, witness


def test_e07_theorem8(benchmark):
    part_a, witness = benchmark(run_experiment)
    print_table(
        "E07  Theorem 8(a): assignments below S^j determine safe bets",
        ["labelings checked", "paper", "measured"],
        [(part_a.checked, "all safe", "all safe" if part_a.holds else "FAILS")],
    )
    print_table(
        "E07  Theorem 8(b): the adversarial construction against S_post > S^j",
        ["quantity", "value"],
        [
            ("alpha accepted under S (too big)", format_fraction(witness.alpha)),
            ("alpha justified by S^j", format_fraction(witness.alpha_opponent)),
            ("expected loss per bet", format_fraction(witness.expected_loss)),
        ],
    )
    assert part_a.holds
    assert witness is not None
    assert witness.alpha > witness.alpha_opponent
    assert witness.expected_loss < 0
