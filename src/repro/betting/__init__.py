"""The betting game: the paper's operational reading of probability.

``strategies`` models the opponent; ``game`` the rule ``Bet(phi, alpha)``;
``safety`` the break-even/safety definitions with both enumerated and
closed-form evaluation; ``theorems`` the executable Theorems 7-9 and
Proposition 6; ``embedded`` the Appendix B.3 construction and Theorem 11;
``provenance`` renders safety certificates and Theorem 8 witnesses as
``repro-explain/1`` derivation trees for the audit layer.
"""

from .embedded import (
    EmbeddedSystem,
    build_embedded_system,
    theorem11_closure,
    verify_theorem11,
)
from .game import BettingRule, acceptance_set_rule
from .provenance import (
    safety_derivation,
    strategy_payload,
    theorem8_witness_derivation,
)
from .safety import (
    SafetyCertificate,
    safety_certificate,
    breaks_even,
    breaks_even_analytic,
    breaks_even_with,
    expected_winnings,
    is_safe,
    is_safe_analytic,
    refuting_strategy,
    worst_expected_winnings,
)
from .strategies import (
    NO_BET,
    Strategy,
    constant_strategy,
    enumerate_strategies,
    injective_strategy,
    opponent_states,
    targeted_strategy,
)
from .theorems import (
    Theorem8Witness,
    Theorem9Witness,
    VerificationReport,
    acceptance_rule_is_safe,
    boost_path_labeling,
    determines_safe_bets,
    footnote13_threshold_optimality,
    relevant_alphas,
    theorem8_witness,
    theorem9_witness,
    verify_proposition6,
    verify_theorem7,
    verify_theorem8_part_a,
    verify_theorem9_part_a,
)

__all__ = [
    "Strategy",
    "NO_BET",
    "enumerate_strategies",
    "targeted_strategy",
    "constant_strategy",
    "injective_strategy",
    "opponent_states",
    "BettingRule",
    "acceptance_set_rule",
    "expected_winnings",
    "breaks_even",
    "breaks_even_with",
    "breaks_even_analytic",
    "SafetyCertificate",
    "safety_certificate",
    "safety_derivation",
    "strategy_payload",
    "theorem8_witness_derivation",
    "is_safe",
    "is_safe_analytic",
    "refuting_strategy",
    "worst_expected_winnings",
    "VerificationReport",
    "relevant_alphas",
    "verify_theorem7",
    "verify_proposition6",
    "determines_safe_bets",
    "verify_theorem8_part_a",
    "boost_path_labeling",
    "theorem8_witness",
    "Theorem8Witness",
    "verify_theorem9_part_a",
    "theorem9_witness",
    "Theorem9Witness",
    "acceptance_rule_is_safe",
    "footnote13_threshold_optimality",
    "EmbeddedSystem",
    "build_embedded_system",
    "theorem11_closure",
    "verify_theorem11",
]
