"""Checkpoints are backend-provenance-stamped but backend-independent.

``task_fingerprint`` records the engine that computed a row (provenance)
without making it part of the row's identity: a sweep checkpointed under
one backend resumes under another, and checkpoints written before the
``backend`` field existed still load.  ``_BackendBoundTask`` carries the
engine choice into workers without hiding the wrapped callable's
``wants_context`` probe.
"""

import json
from fractions import Fraction

import pytest

from repro.attack.sweep import guarantee_sweep, sweep_row_of, sweep_tasks
from repro.probability import use_backend, wordmask
from repro.robustness import (
    SweepCheckpoint,
    resume_guarantee_sweep,
    robust_guarantee_sweep,
    task_fingerprint,
)
from repro.robustness.checkpoint import _BackendBoundTask, _identity_fingerprint

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]

BACKENDS = ("bitmask", "naive") + (
    ("wordarray",) if wordmask.available() else ()
)


class TestFingerprint:
    def test_fingerprint_records_active_backend(self):
        task = sweep_tasks([1], LOSSES)[0]
        for backend in BACKENDS:
            with use_backend(backend) as active:
                assert task_fingerprint(task)["backend"] == active

    def test_identity_ignores_backend(self):
        task = sweep_tasks([1], LOSSES)[0]
        with use_backend("naive"):
            naive = task_fingerprint(task)
        bitmask = task_fingerprint(task)
        assert naive != bitmask
        assert _identity_fingerprint(naive) == _identity_fingerprint(bitmask)

    def test_identity_accepts_pre_backend_fingerprints(self):
        task = sweep_tasks([1], LOSSES)[0]
        fingerprint = task_fingerprint(task)
        legacy = {
            key: value for key, value in fingerprint.items() if key != "backend"
        }
        assert _identity_fingerprint(legacy) == _identity_fingerprint(fingerprint)


class TestCrossBackendResume:
    @pytest.mark.parametrize("write_backend,resume_backend", [
        ("bitmask", "naive"),
        ("naive", "bitmask"),
    ] + ([
        ("bitmask", "wordarray"),
        ("wordarray", "bitmask"),
    ] if wordmask.available() else []))
    def test_checkpoint_resumes_across_backends(
        self, tmp_path, write_backend, resume_backend
    ):
        path = tmp_path / "sweep.jsonl"
        rows = robust_guarantee_sweep(
            MESSENGERS, LOSSES, checkpoint_path=path, backend=write_backend
        )
        assert rows == guarantee_sweep(MESSENGERS, LOSSES)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {record["task"]["backend"] for record in records} == {write_backend}

        def poisoned(task):
            raise AssertionError("resume must not recompute completed rows")

        resumed = resume_guarantee_sweep(
            path,
            MESSENGERS,
            LOSSES,
            task_function=poisoned,
            backend=resume_backend,
        )
        assert resumed == rows

    def test_pre_backend_checkpoint_loads(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep(MESSENGERS, LOSSES, checkpoint_path=path)
        # strip the backend field, as a checkpoint from before it existed
        stripped = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            del record["task"]["backend"]
            stripped.append(json.dumps(record))
        path.write_text("\n".join(stripped) + "\n")
        tasks = sweep_tasks(MESSENGERS, LOSSES)
        completed = SweepCheckpoint(path).load(tasks)
        assert sorted(completed) == list(range(len(tasks)))

    def test_wrong_identity_still_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        robust_guarantee_sweep([1], LOSSES, checkpoint_path=path)
        from repro.errors import CheckpointError

        mismatched = sweep_tasks([2], LOSSES)
        with pytest.raises(CheckpointError):
            SweepCheckpoint(path).load(mismatched)


class TestBackendBoundTask:
    def test_rows_match_unwrapped(self):
        task = sweep_tasks([1], LOSSES)[0]
        for backend in BACKENDS:
            bound = _BackendBoundTask(sweep_row_of, backend)
            assert bound(task) == sweep_row_of(task)

    def test_wants_context_proxies_the_wrapped_callable(self):
        def plain(task):
            return task

        def contextual(task, context=None):
            return task

        contextual.wants_context = True
        assert _BackendBoundTask(plain, "bitmask").wants_context is False
        assert _BackendBoundTask(contextual, "bitmask").wants_context is True

    @pytest.mark.skipif(not wordmask.available(), reason="numpy not installed")
    def test_robust_sweep_under_wordarray_matches_serial(self, tmp_path):
        rows = robust_guarantee_sweep(
            MESSENGERS,
            LOSSES,
            checkpoint_path=tmp_path / "sweep.jsonl",
            backend="wordarray",
        )
        assert rows == guarantee_sweep(MESSENGERS, LOSSES)
