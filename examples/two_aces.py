#!/usr/bin/env python3
"""Freund's puzzle of the two aces (Appendix B.1).

Two cards from {ace/deuce x hearts/spades} are dealt to p1.  Should p2's
probability that p1 holds both aces rise from 1/5 to 1/3 on hearing "I
hold the ace of spades"?  Shafer's (and the paper's) answer: it depends on
the protocol -- and P_post over the protocol's computation tree computes
the right value in every case.

Run:  python examples/two_aces.py
"""

from repro.examples_lib import (
    ask_then_ask,
    posterior_after,
    reveal_hearts_bias,
    reveal_random,
)
from repro.probability import format_fraction


def show(example, transcripts) -> None:
    print(f"--- protocol: {example.name} ---")
    for label, suffix in transcripts:
        value = posterior_after(example, suffix, example.both_aces)
        print(f"  Pr(both aces | {label:<28}) = {format_fraction(value)}")
    print()


def main() -> None:
    protocol1 = ask_then_ask()
    show(
        protocol1,
        [
            ("just dealt", ("dealt",)),
            ("'I have an ace'", ("yes-ace",)),
            ("'I have the ace of spades'", ("yes-spades",)),
            ("'not the ace of spades'", ("yes-ace", "no-spades")),
        ],
    )

    protocol2 = reveal_random()
    show(
        protocol2,
        [
            ("'I have an ace'", ("yes-ace",)),
            ("'a held ace: spades'", ("say-spades",)),
            ("'a held ace: hearts'", ("say-hearts",)),
        ],
    )

    protocol3 = reveal_hearts_bias()
    show(
        protocol3,
        [
            ("'a held ace: spades'", ("say-spades",)),
            ("'a held ace: hearts'", ("say-hearts",)),
        ],
    )

    print("Moral (Shafer, endorsed by Appendix B.1): 'conditioning on")
    print("everything the agent knows' is only meaningful once the protocol")
    print("generating the announcements is part of the system.")


if __name__ == "__main__":
    main()
