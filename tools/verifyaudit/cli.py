"""Command-line interface: ``python -m tools.verifyaudit BUNDLE``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import AuditError

from .verify import render_report, verify_audit


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="verifyaudit",
        description=(
            "Verify a repro-audit/1 Merkle audit bundle without "
            "recomputing the sweep it certifies: recompute the hash "
            "chain and every derivation-node fingerprint, cross-check "
            "leaf payloads against the sweep checkpoint, and replay "
            "audit_derivation over the recorded repro-explain/2 DAGs."
        ),
    )
    parser.add_argument("bundle", help="repro-audit/1 bundle (JSONL)")
    parser.add_argument(
        "--checkpoint",
        default=None,
        help=(
            "sweep checkpoint to cross-check (default: strip the "
            "bundle's .audit suffix, if that file exists)"
        ),
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help=(
            "replay only N evenly spaced derivations instead of all "
            "(deterministic selection; hash and checkpoint tiers always "
            "cover everything)"
        ),
    )
    parser.add_argument(
        "--skip-replay",
        action="store_true",
        help=(
            "hash and checkpoint tiers only -- the cheap verification a "
            "third party can run without building any systems (also the "
            "only option for bundles swept with non-default builders)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-verifyaudit/1 report as JSON",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = verify_audit(
            args.bundle,
            checkpoint_path=args.checkpoint,
            sample=args.sample,
            replay=not args.skip_replay,
        )
    except AuditError as error:
        print(f"verifyaudit: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"verifyaudit: cannot read input: {error}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_report(report))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the verdict it asked
        # for was delivered, so this is not an error.
        pass
    return 0 if report["verdict"] == "clean" else 1


if __name__ == "__main__":
    sys.exit(main())
