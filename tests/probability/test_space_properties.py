"""Property-based tests for the measure-theory substrate (hypothesis)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability import (
    FiniteProbabilitySpace,
    atoms_from_generators,
    is_partition,
)

OUTCOMES = tuple(range(8))


@st.composite
def spaces(draw):
    """Random spaces over 0..7: random partition + random rational masses."""
    labels = draw(
        st.lists(st.integers(0, 3), min_size=len(OUTCOMES), max_size=len(OUTCOMES))
    )
    blocks: dict = {}
    for outcome, label in zip(OUTCOMES, labels):
        blocks.setdefault(label, set()).add(outcome)
    atoms = [frozenset(block) for block in blocks.values()]
    weights = draw(
        st.lists(st.integers(1, 9), min_size=len(atoms), max_size=len(atoms))
    )
    total = sum(weights)
    probabilities = {
        atom: Fraction(weight, total) for atom, weight in zip(atoms, weights)
    }
    return FiniteProbabilitySpace(atoms, probabilities)


events = st.sets(st.sampled_from(OUTCOMES)).map(frozenset)


@given(spaces())
def test_atoms_partition_the_space(space):
    assert is_partition(space.outcomes, space.atoms)


@given(spaces(), events)
def test_inner_leq_outer(space, event):
    assert space.inner_measure(event) <= space.outer_measure(event)


@given(spaces(), events)
def test_duality(space, event):
    complement = space.outcomes - event
    assert space.inner_measure(event) == 1 - space.outer_measure(complement)


@given(spaces(), events)
def test_measurable_iff_inner_equals_outer(space, event):
    event = event & space.outcomes
    measurable = space.is_measurable(event)
    assert measurable == (space.inner_measure(event) == space.outer_measure(event))
    if measurable:
        assert space.measure(event) == space.inner_measure(event)


@given(spaces(), events, events)
def test_outer_subadditive(space, first, second):
    assert space.outer_measure(first | second) <= space.outer_measure(
        first
    ) + space.outer_measure(second)


@given(spaces(), events, events)
def test_inner_superadditive_on_disjoint(space, first, second):
    second = second - first
    assert space.inner_measure(first | second) >= space.inner_measure(
        first
    ) + space.inner_measure(second)


@given(spaces(), events)
def test_conditioning_preserves_totality(space, event):
    event = event & space.outcomes
    if not space.is_measurable(event) or space.inner_measure(event) == 0:
        return
    conditioned = space.condition(event)
    assert conditioned.measure(conditioned.outcomes) == 1
    assert conditioned.outcomes == event


@given(spaces(), events, events)
def test_conditioning_is_ratio(space, event, given_event):
    given_event = given_event & space.outcomes
    event = event & given_event
    if not space.is_measurable(given_event) or space.measure(given_event) == 0:
        return
    if not space.is_measurable(event):
        return
    conditioned = space.condition(given_event)
    if not conditioned.is_measurable(event):
        return
    assert conditioned.measure(event) == space.measure(event) / space.measure(
        given_event
    )


@given(spaces(), events)
def test_lower_expectation_bounds_indicator(space, event):
    from repro.probability import scaled_indicator

    variable = scaled_indicator(event, 1, 0)
    assert space.lower_expectation(variable) == space.inner_measure(
        event & space.outcomes
    )
    assert space.upper_expectation(variable) == space.outer_measure(
        event & space.outcomes
    )


@given(st.lists(st.sets(st.sampled_from(OUTCOMES)), max_size=4))
def test_generated_atoms_respect_generators(generators):
    atoms = atoms_from_generators(OUTCOMES, generators)
    assert is_partition(OUTCOMES, atoms)
    for generator in generators:
        generator = frozenset(generator)
        for atom in atoms:
            # each generator is a union of atoms: no atom straddles it
            assert atom <= generator or not (atom & generator)
