"""RL003 — paper traceability for theorem-bearing modules."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..model import Module, Violation
from ..registry import Rule, register

#: Modules whose public functions implement numbered results of the paper
#: and must say which ones.
TRACEABLE_MODULES = frozenset(
    {
        ("betting", "theorems"),
        ("core", "assignments"),
        ("core", "agreement"),
        ("robustness", "validate"),
        # The provenance layer *is* a traceability claim: every
        # derivation node cites the definition it instantiates, so the
        # builders and the data model must say which paper statements
        # (the Section 5 semantics, the Section 8 fixed point, Theorems
        # 7-8's witnesses) their output encodes.
        ("logic", "explain"),
        ("obs", "provenance"),
    }
)

#: A docstring "cites the paper" when it names a numbered result, a
#: numbered section, a requirement label, an appendix, or a bibliography
#: key such as ``[Aum76]``.
CITATION_RE = re.compile(
    r"(Theorem|Proposition|Definition|Lemma|Corollary|Footnote|Section)\s*B?\.?\d"
    r"|Appendix\s*[A-Z]"
    r"|REQ\d"
    r"|\[[A-Z][A-Za-z]*\d{2}\]",
    re.IGNORECASE,
)


@register
class TraceabilityRule(Rule):
    rule_id = "RL003"
    title = "public functions in theorem modules must cite the paper"
    rationale = """\
betting/theorems.py, core/assignments.py, core/agreement.py and
robustness/validate.py are the modules that *claim to be* Halpern &
Tuttle's numbered results (Theorems 7-9, Proposition 6, REQ1/REQ2 of
Section 5, the structural invariants of Sections 3-4, the Aumann remark
of Appendix B.3).  The reproduction is only auditable if every public entry point in
those modules says which statement it implements: a reviewer must be able
to open the paper at the cited number and check the code against it.
A public function with no citation is an untraceable claim.

A citation is any of: 'Theorem 7', 'Proposition 6', 'Definition 4.1',
'Lemma 2', 'Corollary 3', 'Footnote 13', 'Section 5', 'REQ1', 'Appendix
B.3', or a bibliography key like '[Aum76]', anywhere in the docstring."""

    def check(self, module: Module) -> Iterator[Violation]:
        if module.rel_parts not in TRACEABLE_MODULES:
            return
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            docstring = ast.get_docstring(node) or ""
            if not docstring:
                yield self.violation(
                    module, node,
                    f"public function '{node.name}' has no docstring "
                    "(must cite the paper result it implements)",
                )
            elif not CITATION_RE.search(docstring):
                yield self.violation(
                    module, node,
                    f"public function '{node.name}' does not cite a paper "
                    "result (add e.g. 'Theorem 7', 'REQ1 (Section 5)' or "
                    "'Appendix B.3' to its docstring)",
                )
