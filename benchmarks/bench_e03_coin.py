"""E03 -- the introduction's coin: P_post vs P_fut vs opponents.

Paper claims (Sections 1, 5, 6): at time 1, P_post gives p1
K(Pr(heads)=1/2); P_fut gives K(Pr=1 or Pr=0); the 2-for-1 bet is safe
against p2 and unsafe against p3.
"""

from fractions import Fraction

from repro.core import opponent_assignment, standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import Model, parse
from repro.reporting import print_table


def run_experiment():
    example = three_agent_coin_system()
    named = standard_assignments(example.psys)
    c = example.psys.system.points_at_time(1)[0]
    model = Model(named["post"], {"heads": example.heads})
    fut_model = model.with_assignment(named["fut"])
    results = {
        "post_half": model.holds(parse("K0^[1/2,1/2] heads"), c),
        "fut_zero_one": fut_model.holds(
            parse("K0 ((Pr0(heads) >= 1) | (Pr0(heads) <= 0))"), c
        ),
        "fut_half": fut_model.holds(parse("K0^1/2 heads"), c),
        "safe_vs_p2": opponent_assignment(example.psys, 1).knows_probability_at_least(
            0, c, example.heads, Fraction(1, 2)
        ),
        "safe_vs_p3": opponent_assignment(example.psys, 2).knows_probability_at_least(
            0, c, example.heads, Fraction(1, 2)
        ),
    }
    return results


def test_e03_three_agent_coin(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E03  the introduction's coin at time 1",
        ["claim", "paper", "measured"],
        [
            ("P_post |= K1(Pr=1/2)", True, results["post_half"]),
            ("P_fut  |= K1(Pr=1 or Pr=0)", True, results["fut_zero_one"]),
            ("P_fut  |= K1^1/2 heads", False, results["fut_half"]),
            ("Bet(heads,1/2) safe vs p2", True, results["safe_vs_p2"]),
            ("Bet(heads,1/2) safe vs p3", False, results["safe_vs_p3"]),
        ],
    )
    assert results["post_half"] and results["fut_zero_one"] and results["safe_vs_p2"]
    assert not results["fut_half"] and not results["safe_vs_p3"]
