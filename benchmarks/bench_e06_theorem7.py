"""E06 -- Proposition 6 and Theorem 7: safety == probabilistic knowledge.

Paper claims: Bet(phi, alpha) is P^j-safe for p_i at c iff
(P^j, c) |= K_i^alpha phi; and in synchronous systems Tree-safety and
Tree^j-safety coincide.  Verified by exhaustive strategy enumeration.
"""

from repro.betting import verify_proposition6, verify_theorem7
from repro.examples_lib import three_agent_coin_system
from repro.reporting import print_table
from repro.testing import parity_fact, random_psys


def run_experiment():
    coin = three_agent_coin_system()
    random_system = random_psys(seed=21, depth=2, observability=("parity", "full"))
    reports = {
        "coin vs p2": verify_theorem7(coin.psys, 0, 1, coin.heads),
        "coin vs p3": verify_theorem7(coin.psys, 0, 2, coin.heads),
        "coin vs p3, !heads": verify_theorem7(coin.psys, 0, 2, ~coin.heads),
        "random system": verify_theorem7(random_system, 0, 1, parity_fact()),
        "Prop 6 coin": verify_proposition6(coin.psys, 0, 2, coin.heads),
    }
    return reports


def test_e06_theorem7(benchmark):
    reports = benchmark(run_experiment)
    print_table(
        "E06  Theorem 7 / Proposition 6 (exhaustive strategy enumeration)",
        ["instance", "(point, alpha) pairs", "paper", "measured"],
        [
            (name, report.checked, "equivalence", "holds" if report.holds else "FAILS")
            for name, report in reports.items()
        ],
    )
    assert all(report.holds for report in reports.values())
