#!/usr/bin/env python3
"""Asynchrony and the third adversary (Section 7).

Two demonstrations:

1. The ten-toss system: p3 tosses a fair coin every tick; p1 has no clock.
   "The most recent toss landed heads" is non-measurable for p1 -- its
   probability is only bracketed by [2**-10, 1 - 2**-10] -- while betting
   against the clocked p2 restores the crisp answer 1/2.  The type-3
   adversary choosing *when* the bet happens explains the gap.

2. The 0.99-biased coin: the ``pts`` cut class (one point per run) keeps
   p2's confidence at exactly 0.99; the Fischer-Zuck ``state`` cut class
   admits the cut {T} that drives it to 0.

Run:  python examples/asynchronous_coins.py
"""

from fractions import Fraction

from repro.core import (
    PostAssignment,
    ProbabilityAssignment,
    opponent_assignment,
    pts_interval,
)
from repro.examples_lib import (
    biased_async_system,
    pts_versus_state_intervals,
    repeated_coin_system,
)
from repro.probability import format_fraction


def ten_tosses(tosses: int = 10) -> None:
    print(f"--- {tosses} fair tosses, p1 unclocked, p2 clocked ---")
    example = repeated_coin_system(tosses)
    phi = example.most_recent_heads

    restricted = ProbabilityAssignment(example.post_toss_assignment())
    anchor = next(iter(example.post_toss_points))
    inner, outer = restricted.probability_interval(0, anchor, phi)
    print(f"p1 against itself (post-toss points): "
          f"[{format_fraction(inner)}, {format_fraction(outer)}]")

    against_p2 = opponent_assignment(example.psys, 1)
    one_run = example.psys.system.runs[0]
    values = {
        against_p2.probability(0, point, phi)
        for point in one_run.points()
        if point.time >= 1  # one representative point per time slice
    }
    print(f"p1 against the clocked p2:            {sorted(values)}")

    post = PostAssignment(example.psys)
    closed = pts_interval(example.psys, post, 0, anchor, phi)
    print(f"pts-adversary closed form (Prop. 10): "
          f"[{format_fraction(closed[0])}, {format_fraction(closed[1])}]")
    print("(the root, pre-toss point drives the closed-form inner bound to 0;")
    print(" the paper's reading excludes it -- see EXPERIMENTS.md E09)")
    print()


def biased_coin() -> None:
    print("--- the 0.99 coin: pts versus Fischer-Zuck state cuts ---")
    example = biased_async_system()
    pts, state = pts_versus_state_intervals(example)
    print(f"K_2^[a,b] heads under pts cuts  : [{pts[0]}, {pts[1]}]")
    print(f"K_2^[a,b] heads under state cuts: [{state[0]}, {state[1]}]")
    print("pts keeps the 0.99 prior (p2 learned nothing); the state class")
    print("admits the cut {T}, which only ever tests on the tails run.")


def main() -> None:
    ten_tosses()
    biased_coin()


if __name__ == "__main__":
    main()
