"""Tests for tools/reproflow: the whole-program dataflow tier.

The rule tests work on a *copy* of the real ``src/repro`` tree with a
seeded mutation -- a transitive clock read, a float literal two hops
below a Fraction API, a lambda task payload -- and assert that exactly
the expected interprocedural rule fires, at the right file:line, with
the call chain in the message.  That exercises the same code paths CI
runs on the real tree, against the real package shapes.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reproflow.cache import SummaryCache
from tools.reproflow.engine import analyze_paths, package_identity
from tools.reproflow.extract import extract_module
from tools.reproflow.program import Program
from tools.reproflow.report import build_report
from tools.reproflow.rules.base import FLOW_REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def copy_tree(tmp_path: Path) -> Path:
    """A private copy of the real package, safe to mutate."""
    target = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, target)
    return target


def run_flow(paths, cache=None):
    return analyze_paths([str(p) for p in paths], cache=cache)


def violations_of(report, rule_id):
    return [v for v in report.violations if v.rule_id == rule_id]


# ---------------------------------------------------------------------------
# baseline: the committed tree is clean
# ---------------------------------------------------------------------------


def test_real_tree_is_violation_free():
    report = run_flow([SRC_REPRO])
    assert report.violations == []
    assert report.stale_suppressions == []
    assert report.unknown_suppressions == []


def test_real_tree_payload_roots_include_builders_and_rows():
    report = run_flow([SRC_REPRO])
    program = report.program
    from tools.reproflow.rules.base import payload_roots

    roots = {fqn for fqn, _origin in payload_roots(program)}
    assert "repro.attack.sweep.sweep_row_of" in roots
    # Resolved through the ``task_function = a if strict else b`` local.
    assert "repro.robustness.checkpoint.strict_sweep_row_of" in roots
    # Resolved out of the DEFAULT_BUILDERS registry dict.
    assert "repro.attack.protocols.build_ca1" in roots
    assert "repro.attack.protocols.build_ca2" in roots


def test_real_tree_contracts_are_seeded_and_clean():
    report = run_flow([SRC_REPRO])
    program = report.program
    contracted = {
        fqn
        for fqn, info in program.functions.items()
        if info.record.get("contracts")
    }
    # task_fingerprint moved to attack/sweep.py (checkpoint re-exports it).
    assert "repro.attack.sweep.task_fingerprint" in contracted
    assert "repro.attack.sweep.sweep_row_of" in contracted
    assert "repro.obs.provenance.json_pure" in contracted
    assert violations_of(report, "RL012") == []


def test_obs_clock_aliases_become_clock_readers():
    report = run_flow([SRC_REPRO])
    program = report.program
    for alias in ("perf_counter", "monotonic"):
        fqn = f"repro.obs.clock.{alias}"
        assert (fqn, "reads_clock") in program.effect_cause


# ---------------------------------------------------------------------------
# seeded mutations: the three acceptance scenarios
# ---------------------------------------------------------------------------


def test_mutation_transitive_clock_read_is_rl009(tmp_path):
    tree = copy_tree(tmp_path)
    sweep = tree / "attack" / "sweep.py"
    source = sweep.read_text()
    # Two hops below the payload: sweep_row_of -> _hop1 -> _hop2 -> time.time()
    source = source.replace(
        "    name, builder, messengers, loss, _threshold = task",
        "    _mut_hop1()\n"
        "    name, builder, messengers, loss, _threshold = task",
        1,
    )
    source += (
        "\n\nimport time as _mut_time\n"
        "\n\ndef _mut_hop2():\n"
        "    return _mut_time.time()\n"
        "\n\ndef _mut_hop1():\n"
        "    return _mut_hop2()\n"
    )
    sweep.write_text(source)
    offender_line = source.splitlines().index("    return _mut_time.time()") + 1
    report = run_flow([tree])
    found = violations_of(report, "RL009")
    clock = [v for v in found if "clock" in v.message]
    assert len(clock) == 1
    violation = clock[0]
    assert violation.path == str(sweep)
    assert violation.line == offender_line
    assert "repro.attack.sweep.sweep_row_of" in violation.message
    assert "repro.attack.sweep._mut_hop1" in violation.message
    assert "repro.attack.sweep._mut_hop2" in violation.message
    assert "time.time()" in violation.message


def test_mutation_float_two_hops_below_fraction_api_is_rl010(tmp_path):
    tree = copy_tree(tmp_path)
    analysis = tree / "attack" / "analysis.py"
    analysis.write_text(
        analysis.read_text()
        + "\n\ndef _mut_leak2():\n"
        "    return 0.25\n"
        "\n\ndef _mut_leak1():\n"
        "    return _mut_leak2()\n"
    )
    algebra = tree / "probability" / "algebra.py"
    source = algebra.read_text() + (
        "\n\nfrom repro.attack import analysis as _mut_analysis\n"
        "\n\ndef _mut_fraction_api():\n"
        "    return _mut_analysis._mut_leak1()\n"
    )
    algebra.write_text(source)
    call_line = (
        source.splitlines().index("    return _mut_analysis._mut_leak1()") + 1
    )
    report = run_flow([tree])
    found = violations_of(report, "RL010")
    assert len(found) == 1
    violation = found[0]
    assert violation.path == str(algebra)
    assert violation.line == call_line
    assert "repro.attack.analysis._mut_leak1" in violation.message
    assert "repro.attack.analysis._mut_leak2" in violation.message
    assert "float literal 0.25" in violation.message
    # No cascade: the edge is reported once, nothing else fires.
    assert len(report.violations) == 1


def test_mutation_lambda_payload_is_rl011(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    source = parallel.read_text()
    assert "parallel_map(row_of," in source
    source = source.replace(
        "parallel_map(row_of,",
        "parallel_map(lambda task: row_of(task),",
        1,
    )
    parallel.write_text(source)
    lambda_line = next(
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "lambda task:" in text
    )
    report = run_flow([tree])
    found = violations_of(report, "RL011")
    assert len(found) == 1
    violation = found[0]
    assert violation.path == str(parallel)
    assert violation.line == lambda_line
    assert "lambda" in violation.message
    assert "repro.attack.parallel.parallel_map" in violation.message


def test_mutation_nested_function_payload_is_rl011(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    source = parallel.read_text()
    # Define a function *inside* the caller and ship it as the payload.
    source = source.replace(
        "    return parallel_map(row_of, tasks, max_workers=max_workers)",
        "    def _nested(task):\n"
        "        return row_of(task)\n"
        "    return parallel_map(_nested, tasks, max_workers=max_workers)",
        1,
    )
    assert "_nested" in source
    parallel.write_text(source)
    report = run_flow([tree])
    found = violations_of(report, "RL011")
    assert len(found) == 1
    assert "nested function" in found[0].message


def test_mutation_contract_drift_is_rl012(tmp_path):
    tree = copy_tree(tmp_path)
    engine = tree / "robustness" / "engine.py"
    source = engine.read_text()
    # _unit_jitter declares Deterministic.; make it read the clock
    # (``import time`` is already at module level for time.sleep).
    source = source.replace(
        "    value = (\n"
        "        seed * 0x9E3779B97F4A7C15",
        "    time.time()\n"
        "    value = (\n"
        "        seed * 0x9E3779B97F4A7C15",
        1,
    )
    engine.write_text(source)
    report = run_flow([tree])
    found = violations_of(report, "RL012")
    drift = [
        v
        for v in found
        if v.message.startswith("'repro.robustness.engine._unit_jitter' declares")
    ]
    assert len(drift) == 1
    violation = drift[0]
    assert violation.path == str(engine)
    assert "Deterministic." in violation.message
    assert "reads the wall clock" in violation.message
    assert "time.time()" in violation.message
    # backoff_delay (also Deterministic.) drifts too, through its call
    # into _unit_jitter -- the whole point of transitivity.
    assert any("backoff_delay" in v.message for v in found)


# ---------------------------------------------------------------------------
# sanctioned boundaries are load-bearing, not decorative
# ---------------------------------------------------------------------------


def test_wordmask_float_boundary_sanction_is_load_bearing(tmp_path, monkeypatch):
    """Dropping wordmask from FLOAT_BOUNDARY_MODULES re-taints its callers.

    A float-classified helper inside ``wordmask`` reaches exact code
    through an outside-scope wrapper (``attack.analysis``); the sanction
    is the only thing keeping that chain off RL010's books.
    """
    import tools.reproflow.program as flow_program

    tree = copy_tree(tmp_path)
    wordmask = tree / "probability" / "wordmask.py"
    wordmask.write_text(
        wordmask.read_text() + "\n\ndef _mut_scale():\n    return float(1)\n"
    )
    analysis = tree / "attack" / "analysis.py"
    analysis.write_text(
        analysis.read_text()
        + "\n\nfrom repro.probability import wordmask as _mut_wordmask\n"
        "\n\ndef _mut_wrapper():\n"
        "    return _mut_wordmask._mut_scale()\n"
    )
    algebra = tree / "probability" / "algebra.py"
    source = algebra.read_text() + (
        "\n\nfrom repro.attack import analysis as _mut_analysis\n"
        "\n\ndef _mut_exact_caller():\n"
        "    return _mut_analysis._mut_wrapper()\n"
    )
    algebra.write_text(source)
    call_line = (
        source.splitlines().index("    return _mut_analysis._mut_wrapper()") + 1
    )

    # Sanctioned: wordmask is a numeric boundary, nothing fires.
    assert "repro.probability.wordmask" in flow_program.FLOAT_BOUNDARY_MODULES
    assert run_flow([tree]).violations == []

    monkeypatch.setattr(
        flow_program,
        "FLOAT_BOUNDARY_MODULES",
        flow_program.FLOAT_BOUNDARY_MODULES - {"repro.probability.wordmask"},
    )
    found = violations_of(run_flow([tree]), "RL010")
    assert len(found) == 1
    violation = found[0]
    assert violation.path == str(algebra)
    assert violation.line == call_line
    assert "repro.attack.analysis._mut_wrapper" in violation.message
    assert "repro.probability.wordmask._mut_scale" in violation.message


def test_use_backend_restoring_scope_sanction_is_load_bearing(monkeypatch):
    """Without RESTORING_SCOPE_FUNCTIONS the real tree stops being clean.

    ``use_backend`` mutates the module-default backend but restores it in
    a ``finally``; the sanction stops that confined effect from
    propagating to ``sweep_row_of``.  Unsanctioned, the real chain
    surfaces as both RL009 (stateful task payload) and RL012 (contract
    drift on a ``Deterministic.`` declaration) -- proof the skip is what
    keeps the committed tree violation-free, not an accident of shape.
    """
    import tools.reproflow.program as flow_program

    assert (
        "repro.probability.bitset.use_backend"
        in flow_program.RESTORING_SCOPE_FUNCTIONS
    )
    monkeypatch.setattr(flow_program, "RESTORING_SCOPE_FUNCTIONS", frozenset())
    report = run_flow([SRC_REPRO])
    rl009 = violations_of(report, "RL009")
    assert any(
        "mutates module-global state" in v.message
        and "repro.attack.sweep.sweep_row_of" in v.message
        for v in rl009
    )
    rl012 = violations_of(report, "RL012")
    assert any(
        v.message.startswith("'repro.attack.sweep.sweep_row_of' declares")
        and "use_backend" in v.message
        for v in rl012
    )


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_flow_suppression_waives_and_is_not_stale(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    source = parallel.read_text().replace(
        "    return parallel_map(row_of, tasks, max_workers=max_workers)",
        "    return parallel_map(lambda task: row_of(task), tasks,"
        " max_workers=max_workers)  # reproflow: disable=RL011",
        1,
    )
    parallel.write_text(source)
    report = run_flow([tree])
    assert violations_of(report, "RL000") == []
    assert violations_of(report, "RL011") == []
    assert [v.rule_id for v in report.suppressed] == ["RL011"]
    assert report.stale_suppressions == []


def test_unused_flow_suppression_is_stale(tmp_path):
    tree = copy_tree(tmp_path)
    sweep = tree / "attack" / "sweep.py"
    source = sweep.read_text().replace(
        "DEFAULT_BUILDERS: Dict[str, Builder] = {",
        "DEFAULT_BUILDERS: Dict[str, Builder] = {  # reproflow: disable=RL009",
        1,
    )
    sweep.write_text(source)
    report = run_flow([tree])
    assert report.violations == []
    assert len(report.stale_suppressions) == 1
    stale = report.stale_suppressions[0]
    assert stale.rule_id == "RL009"
    assert stale.path == str(sweep)


def test_intra_file_rule_suppression_is_not_judged_here(tmp_path):
    tree = copy_tree(tmp_path)
    sweep = tree / "attack" / "sweep.py"
    sweep.write_text(
        sweep.read_text().replace(
            "DEFAULT_BUILDERS: Dict[str, Builder] = {",
            "DEFAULT_BUILDERS: Dict[str, Builder] = {  # reprolint: disable=RL004",
            1,
        )
    )
    report = run_flow([tree])
    # RL004 belongs to the intra-file tier: not unknown, never stale here.
    assert report.unknown_suppressions == []
    assert report.stale_suppressions == []


def test_unknown_rule_suppression_warns(tmp_path):
    tree = copy_tree(tmp_path)
    sweep = tree / "attack" / "sweep.py"
    sweep.write_text(
        sweep.read_text().replace(
            "DEFAULT_BUILDERS: Dict[str, Builder] = {",
            "DEFAULT_BUILDERS: Dict[str, Builder] = {  # reproflow: disable=RL999",
            1,
        )
    )
    report = run_flow([tree])
    assert len(report.unknown_suppressions) == 1
    assert report.unknown_suppressions[0].rule_id == "RL999"


# ---------------------------------------------------------------------------
# RL000 / parse failures
# ---------------------------------------------------------------------------


def test_unparseable_file_is_rl000_and_run_continues(tmp_path):
    tree = copy_tree(tmp_path)
    broken = tree / "broken_module.py"
    broken.write_text("def nope(:\n")
    report = run_flow([tree])
    rl000 = violations_of(report, "RL000")
    assert len(rl000) == 1
    assert rl000[0].path == str(broken)
    # The rest of the tree was still analyzed.
    assert report.program is not None
    assert "repro.attack.sweep.sweep_row_of" in report.program.functions


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def test_cache_round_trip_same_findings(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    parallel.write_text(
        parallel.read_text().replace(
            "parallel_map(row_of,",
            "parallel_map(lambda task: row_of(task),",
            1,
        )
    )
    cache_path = tmp_path / "cache.json"
    cold_cache = SummaryCache(str(cache_path))
    cold = run_flow([tree], cache=cold_cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses > 0
    assert cache_path.exists()
    warm_cache = SummaryCache(str(cache_path))
    warm = run_flow([tree], cache=warm_cache)
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses
    assert [v.render() for v in warm.violations] == [
        v.render() for v in cold.violations
    ]
    # Suppressions ride in the cached summaries: suppressing the finding
    # invalidates only that file's entry and is honoured on the rerun.
    lambda_line = next(
        line
        for line in parallel.read_text().splitlines()
        if "parallel_map(lambda task:" in line
    )
    parallel.write_text(
        parallel.read_text().replace(
            lambda_line,
            lambda_line + "  # reproflow: disable=RL011",
            1,
        )
    )
    third = run_flow([tree], cache=SummaryCache(str(cache_path)))
    assert third.cache_misses == 1
    assert violations_of(third, "RL000") == []
    assert violations_of(third, "RL011") == []
    assert [v.rule_id for v in third.suppressed] == ["RL011"]


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    tree = copy_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    report = run_flow([tree], cache=SummaryCache(str(cache_path)))
    assert report.violations == []
    assert report.cache_hits == 0
    # The save path rewrote it into a valid cache.
    assert json.loads(cache_path.read_text())["schema"] == "reproflow-cache/1"


def test_stale_hash_invalidates_entry(tmp_path):
    tree = copy_tree(tmp_path)
    cache_path = tmp_path / "cache.json"
    run_flow([tree], cache=SummaryCache(str(cache_path)))
    sweep = tree / "attack" / "sweep.py"
    sweep.write_text(sweep.read_text() + "\n# trailing comment\n")
    report = run_flow([tree], cache=SummaryCache(str(cache_path)))
    assert report.cache_misses == 1


# ---------------------------------------------------------------------------
# report artifact
# ---------------------------------------------------------------------------


def test_report_is_deterministic_and_content_only(tmp_path):
    first = json.dumps(build_report(run_flow([SRC_REPRO])), sort_keys=True)
    second = json.dumps(build_report(run_flow([SRC_REPRO])), sort_keys=True)
    assert first == second
    payload = json.loads(first)
    assert payload["schema"] == "repro-flow/1"
    assert {"path", "sha256"} == set(payload["files"][0])
    for forbidden in ("timestamp", "duration", "host", "cache"):
        assert forbidden not in payload
    assert payload["violations"] == []
    assert len(payload["callgraph"]) > 500
    assert "repro.attack.sweep.sweep_row_of" in payload["task_payload_closure"]


def test_report_mentions_mutation_violation(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    parallel.write_text(
        parallel.read_text().replace(
            "parallel_map(row_of,",
            "parallel_map(lambda task: row_of(task),",
            1,
        )
    )
    payload = build_report(run_flow([tree]))
    assert [v["rule"] for v in payload["violations"]] == ["RL011"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "tools.reproflow", *args],
        capture_output=True,
        text=True,
        cwd=str(cwd or REPO_ROOT),
    )


def test_cli_clean_tree_exits_zero(tmp_path):
    result = run_cli("--cache", str(tmp_path / "c.json"), "src/repro")
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_json_and_exit_one_on_finding(tmp_path):
    tree = copy_tree(tmp_path)
    parallel = tree / "attack" / "parallel.py"
    parallel.write_text(
        parallel.read_text().replace(
            "parallel_map(row_of,",
            "parallel_map(lambda task: row_of(task),",
            1,
        )
    )
    result = run_cli("--no-cache", "--json", str(tree))
    assert result.returncode == 1
    findings = json.loads(result.stdout)
    assert [v["rule"] for v in findings] == ["RL011"]


def test_cli_report_artifact_written(tmp_path):
    out = tmp_path / "flow-report.json"
    result = run_cli(
        "--cache", str(tmp_path / "c.json"), "--report", str(out), "src/repro"
    )
    assert result.returncode == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro-flow/1"


def test_cli_explain_and_list_rules():
    listing = run_cli("--list-rules")
    assert listing.returncode == 0
    for rule_id in ("RL009", "RL010", "RL011", "RL012"):
        assert rule_id in listing.stdout
    explain = run_cli("--explain", "RL009")
    assert explain.returncode == 0
    assert "payload" in explain.stdout.lower()
    unknown = run_cli("--explain", "RL998")
    assert unknown.returncode == 2


def test_cli_stale_suppression_flag(tmp_path):
    tree = copy_tree(tmp_path)
    sweep = tree / "attack" / "sweep.py"
    sweep.write_text(
        sweep.read_text().replace(
            "DEFAULT_BUILDERS: Dict[str, Builder] = {",
            "DEFAULT_BUILDERS: Dict[str, Builder] = {  # reproflow: disable=RL009",
            1,
        )
    )
    without_flag = run_cli("--no-cache", str(tree))
    assert without_flag.returncode == 0
    with_flag = run_cli("--no-cache", "--report-stale-suppressions", str(tree))
    assert with_flag.returncode == 1
    assert "stale" in with_flag.stdout


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def test_package_identity_walks_init_ancestry():
    root, rel = package_identity(str(SRC_REPRO / "attack" / "sweep.py"))
    assert root == "repro"
    assert rel == ("attack", "sweep")
    root, rel = package_identity(str(SRC_REPRO / "__init__.py"))
    assert root == "repro"
    assert rel == ("__init__",)


def test_extract_resolves_relative_imports(tmp_path):
    source = "from ..obs.clock import monotonic\nfrom . import parallel\n"
    summary = extract_module(
        "x.py", source, ("attack", "sweep"), "repro"
    )
    assert summary["imports"]["monotonic"] == "repro.obs.clock.monotonic"
    assert summary["imports"]["parallel"] == "repro.attack.parallel"


def test_program_resolves_reexport_chain():
    report = run_flow([SRC_REPRO])
    program = report.program
    entity = program._resolve_dotted("repro.attack.sweep_row_of")
    assert entity == ("function", "repro.attack.sweep.sweep_row_of")


def test_flow_registry_has_exactly_the_four_rules():
    assert FLOW_REGISTRY.rule_ids() == ["RL009", "RL010", "RL011", "RL012"]
    for rule in FLOW_REGISTRY.all_rules():
        assert rule.title
        assert rule.rationale
