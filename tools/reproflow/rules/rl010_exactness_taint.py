"""RL010 — no interprocedural float contamination into exact code."""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ...reprolint.model import Violation
from ..program import Program
from .base import FlowRule, in_exact_scope, register


@register
class ExactnessTaintRule(FlowRule):
    rule_id = "RL010"
    title = "exact subpackages must not consume float-returning functions"
    rationale = """\
Theorem 5.1's threshold comparisons and the betting certificates are
decided by *exact* Fraction arithmetic; reprolint RL001 already bans
float literals inside probability/, core/, betting/ and logic/ -- but
only file by file.  A helper that lives *outside* the exact scope and
returns a float (a literal, a float() conversion, math.*, a clock
value, or transitively any of those) re-introduces rounding the moment
an exact module calls it: ``Fraction(0.1)`` silently becomes
3602879701896397/36028797018963968 and the chi comparison flips on
adversarial inputs the paper's proof says it cannot.

This rule walks the resolved call graph and flags every call edge from
a function in an exact subpackage to a float-returning function outside
it, with the chain down to the float's origin.  Inside-scope float
sources stay RL001's (intra-file, faster) business.
Two modules are sanctioned boundaries, never treated as float sources:
``repro.probability.fractionutil``, whose functions *consume* floats
and return Fractions, and ``repro.probability.wordmask``, whose numpy
``uint64`` arrays stay strictly internal -- every public weight sum
comes back as a plain Python int (accumulated in ``int64`` only when
the space's denominator proves overflow impossible) for the space
layer to wrap into a Fraction.  Convert at the boundary
(``fractionutil.fraction_of``) or return Fractions from the helper;
deliberate float plumbing may be waived per line with
``# reproflow: disable=RL010``."""

    def check_program(self, program: Program) -> Iterator[Violation]:
        reported: Set[Tuple[str, str]] = set()
        for caller_fqn in sorted(program.resolved_calls):
            caller = program.functions[caller_fqn]
            if not in_exact_scope(caller.module):
                continue
            for callee_fqn, line in program.resolved_calls[caller_fqn]:
                if (caller_fqn, callee_fqn) in reported:
                    continue
                callee = program.functions.get(callee_fqn)
                if callee is None or in_exact_scope(callee.module):
                    # Intra-scope float sources are RL001's business.
                    continue
                if callee_fqn not in program.returns_float:
                    continue
                reported.add((caller_fqn, callee_fqn))
                chain = program.float_chain(callee_fqn)
                yield self.flow_violation(
                    caller,
                    line,
                    f"exact-scope function '{caller_fqn}' calls "
                    f"'{callee_fqn}', which returns a float; float origin: "
                    f"{program.render_chain(chain)}",
                )


__all__ = ["ExactnessTaintRule"]
