"""Sigma-algebras over finite sample spaces.

A sigma-algebra over a *finite* set is completely determined by its atoms:
the minimal nonempty measurable sets, which partition the space.  The
library therefore represents an algebra by its atom partition.  This module
provides the conversions between the two views:

* :func:`atoms_from_generators` -- the atoms of the smallest sigma-algebra
  containing the given generating sets (used to build the run algebra of a
  computation tree from its cones, and to reproduce footnote 5's
  non-measurability argument).
* :func:`explicit_closure` -- the full set-of-sets closure, exponential in
  the number of atoms; kept for the sigma-algebra ablation benchmark and for
  cross-checking the atom representation on small spaces.
* :func:`is_partition`, :func:`generated_by_partition` -- validation
  helpers.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from ..errors import NotAPartitionError

Atom = FrozenSet[Hashable]


def is_partition(space: Iterable[Hashable], atoms: Iterable[Atom]) -> bool:
    """Return True iff ``atoms`` are disjoint, nonempty, and cover ``space``."""
    space_set = frozenset(space)
    seen: Set[Hashable] = set()
    for atom in atoms:
        if not atom:
            return False
        if not atom <= space_set:
            return False
        if seen & atom:
            return False
        seen |= atom
    return seen == space_set


def partition_defects(space: Iterable[Hashable], atoms: Iterable[Atom]) -> List[str]:
    """Every way ``atoms`` fail to partition ``space``, as messages.

    The non-raising counterpart of :func:`check_partition`:
    :func:`repro.robustness.validate.validate_space` aggregates these
    messages instead of stopping at the first failure, so a corrupted
    space reports empty atoms, overlaps, escapes, and coverage gaps all
    at once.  An empty list means ``atoms`` is a genuine partition.
    """
    space_set = frozenset(space)
    defects: List[str] = []
    seen: Set[Hashable] = set()
    for index, atom in enumerate(atoms):
        atom_set = frozenset(atom)
        if not atom_set:
            defects.append(f"atom #{index} is empty")
            continue
        escaped = atom_set - space_set
        if escaped:
            defects.append(
                f"atom #{index} contains {len(escaped)} outcome(s) outside the space"
            )
        overlap = seen & atom_set
        if overlap:
            defects.append(
                f"atom #{index} overlaps earlier atoms on {len(overlap)} outcome(s)"
            )
        seen |= atom_set
    missing = space_set - seen
    if missing:
        defects.append(f"{len(missing)} outcome(s) of the space are covered by no atom")
    return defects


def check_partition(space: Iterable[Hashable], atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Validate and normalise an atom partition, raising on failure.

    Atoms are returned in a deterministic order -- sorted by the position
    of their first outcome in the sample space's canonical enumeration --
    so that spaces built from the same data always iterate identically
    regardless of the order the atoms were supplied in.  (Earlier
    revisions sorted by ``repr``, which dominated construction time on
    large systems whose outcomes carry deep history tuples.)
    """
    atom_tuple = tuple(frozenset(atom) for atom in atoms)
    if not is_partition(frozenset().union(*atom_tuple) if atom_tuple else frozenset(), atom_tuple):
        raise NotAPartitionError("atoms are empty, overlapping, or escape the space")
    space_set = frozenset(space)
    covered = frozenset().union(*atom_tuple) if atom_tuple else frozenset()
    if covered != space_set:
        raise NotAPartitionError(
            f"atoms cover {len(covered)} outcomes but the space has {len(space_set)}"
        )
    position = {outcome: index for index, outcome in enumerate(space_set)}
    return tuple(
        sorted(atom_tuple, key=lambda atom: min(position[outcome] for outcome in atom))
    )


def atoms_from_generators(
    space: Iterable[Hashable], generators: Iterable[Iterable[Hashable]]
) -> Tuple[Atom, ...]:
    """Atoms of the smallest sigma-algebra on ``space`` containing each generator.

    Two outcomes land in the same atom iff no generator separates them, so
    the atoms are the equivalence classes of the membership-signature
    relation.  This is linear in ``len(space) * len(generators)`` -- compare
    :func:`explicit_closure`, which is exponential.
    """
    space_tuple = tuple(space)
    generator_sets = [frozenset(generator) for generator in generators]
    signature_to_members: dict = {}
    for outcome in space_tuple:
        signature = tuple(outcome in generator for generator in generator_sets)
        signature_to_members.setdefault(signature, []).append(outcome)
    # Atoms inherit the first-occurrence order of the space enumeration,
    # which is deterministic without any per-outcome repr/sort work.
    return tuple(frozenset(members) for members in signature_to_members.values())


def explicit_closure(
    space: Iterable[Hashable], generators: Iterable[Iterable[Hashable]]
) -> FrozenSet[Atom]:
    """The full sigma-algebra as an explicit set of measurable sets.

    Closes the generators under complement and (finite = countable, here)
    union.  Exponential in the number of atoms; only use on small spaces.
    Used by the footnote-5 demonstration: adding one "natural looking" set
    to the measurable sets forces the nondeterministic input-bit events to
    become measurable too.
    """
    space_set = frozenset(space)
    sets: Set[Atom] = {frozenset(), space_set}
    for generator in generators:
        sets.add(frozenset(generator))
    changed = True
    while changed:
        changed = False
        current = list(sets)
        for measurable in current:
            complement = space_set - measurable
            if complement not in sets:
                sets.add(complement)
                changed = True
        current = list(sets)
        for left, right in combinations(current, 2):
            union = left | right
            if union not in sets:
                sets.add(union)
                changed = True
    return frozenset(sets)


def atoms_of_explicit_algebra(space: Iterable[Hashable], algebra: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Recover the atom partition from an explicit sigma-algebra."""
    return atoms_from_generators(space, algebra)


def common_refinement(
    space: Iterable[Hashable], *partitions: Sequence[Atom]
) -> Tuple[Atom, ...]:
    """The coarsest partition refining every given partition."""
    generators: List[Atom] = []
    for partition in partitions:
        generators.extend(frozenset(atom) for atom in partition)
    return atoms_from_generators(space, generators)


def restrict_partition(atoms: Sequence[Atom], event: Iterable[Hashable]) -> Tuple[Atom, ...]:
    """Intersect every atom with ``event`` and drop empties (trace algebra)."""
    event_set = frozenset(event)
    restricted = tuple(atom & event_set for atom in atoms)
    return tuple(atom for atom in restricted if atom)
