"""Extension -- Section 9's application: an interactive proof system.

The paper's conclusion points at interactive and zero-knowledge proofs
[FZ87, HMT88, GMR89] as the framework's natural application.  This bench
regenerates the three guarantees of the quadratic-residuosity protocol,
computed exactly inside the paper's own semantics: completeness 1,
soundness error 2**-t per cheating tree, and witness indistinguishability
of the verifier's view.
"""

from fractions import Fraction

from repro.examples_lib import (
    completeness,
    qr_proof_system,
    soundness_error,
    verifier_cannot_identify_witness,
    witness_indistinguishable,
    zero_knowledge,
)
from repro.reporting import print_table


def run_experiment():
    results = {}
    for rounds in (1, 2, 3):
        proof = qr_proof_system(rounds=rounds, randomness=(1, 14))
        results[rounds] = {
            "complete": completeness(proof),
            "soundness": soundness_error(proof),
            "indistinguishable": witness_indistinguishable(proof),
            "cannot_identify": verifier_cannot_identify_witness(proof),
            "zero_knowledge": zero_knowledge(qr_proof_system(rounds=rounds))
            if rounds <= 2
            else None,
        }
    return results


def test_ext_interactive_proof(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "EXT  quadratic-residuosity interactive proof (mod 15)",
        ["rounds", "completeness", "soundness error", "expected", "witness-indist."],
        [
            (
                rounds,
                data["complete"],
                data["soundness"],
                Fraction(1, 2**rounds),
                data["indistinguishable"],
            )
            for rounds, data in results.items()
        ],
    )
    for rounds, data in results.items():
        assert data["complete"]
        assert data["soundness"] == Fraction(1, 2**rounds)
        assert data["indistinguishable"]
        assert data["cannot_identify"]
        if data["zero_knowledge"] is not None:
            assert data["zero_knowledge"]
