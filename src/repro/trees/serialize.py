"""JSON serialization of computation trees and probabilistic systems.

Reproducibility plumbing: a tree (or a whole probabilistic system) can be
written to a JSON document and reconstructed exactly -- structures,
environments built by the standard builder, local states composed of
JSON-representable atoms, and exact rational edge labels (serialized as
``"num/den"`` strings).

Only values built from the JSON-safe atoms (strings, ints, booleans, None)
and nested tuples are supported; tuples round-trip as tagged lists so that
hashability -- which the model requires -- is preserved on load.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List

from ..core.model import GlobalState
from ..errors import TreeError
from .builder import Env
from .probabilistic_system import ProbabilisticSystem
from .tree import ComputationTree

_TUPLE_TAG = "__tuple__"
_ENV_TAG = "__env__"


def _encode_value(value: Any) -> Any:
    if isinstance(value, Env):
        return {
            _ENV_TAG: True,
            "adversary": _encode_value(value.adversary),
            "history": _encode_value(value.history),
            "extra": _encode_value(value.extra),
        }
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_value(item) for item in value]}
    if isinstance(value, Fraction):
        return {"__fraction__": f"{value.numerator}/{value.denominator}"}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TreeError(f"cannot serialize value of type {type(value).__name__}: {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_ENV_TAG):
            return Env(
                _decode_value(value["adversary"]),
                _decode_value(value["history"]),
                _decode_value(value["extra"]),
            )
        if _TUPLE_TAG in value:
            return tuple(_decode_value(item) for item in value[_TUPLE_TAG])
        if "__fraction__" in value:
            return Fraction(value["__fraction__"])
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _encode_state(state: GlobalState) -> Dict[str, Any]:
    return {
        "environment": _encode_value(state.environment),
        "locals": [_encode_value(local) for local in state.local_states],
    }


def _decode_state(payload: Dict[str, Any]) -> GlobalState:
    return GlobalState(
        _decode_value(payload["environment"]),
        tuple(_decode_value(local) for local in payload["locals"]),
    )


def tree_to_dict(tree: ComputationTree) -> Dict[str, Any]:
    """A JSON-safe dictionary capturing the tree exactly."""
    nodes = sorted(tree.nodes, key=repr)
    index_of = {node: index for index, node in enumerate(nodes)}
    return {
        "adversary": _encode_value(tree.adversary),
        "root": index_of[tree.root],
        "nodes": [_encode_state(node) for node in nodes],
        "children": {
            str(index_of[parent]): [index_of[child] for child in tree.children(parent)]
            for parent in nodes
            if tree.children(parent)
        },
        "edges": [
            {
                "parent": index_of[parent],
                "child": index_of[child],
                "probability": f"{tree.edge_probability(parent, child).numerator}"
                f"/{tree.edge_probability(parent, child).denominator}",
            }
            for parent, child in tree.edges
        ],
    }


def tree_from_dict(payload: Dict[str, Any]) -> ComputationTree:
    """Reconstruct a tree from :func:`tree_to_dict` output."""
    nodes = [_decode_state(node) for node in payload["nodes"]]
    children = {
        nodes[int(parent)]: tuple(nodes[child] for child in kids)
        for parent, kids in payload["children"].items()
    }
    edges = {
        (nodes[edge["parent"]], nodes[edge["child"]]): Fraction(edge["probability"])
        for edge in payload["edges"]
    }
    return ComputationTree(
        _decode_value(payload["adversary"]), nodes[payload["root"]], children, edges
    )


def system_to_json(psys: ProbabilisticSystem, indent: int = None) -> str:
    """Serialize a whole probabilistic system to a JSON string."""
    return json.dumps(
        {"trees": [tree_to_dict(tree) for tree in psys.trees]}, indent=indent
    )


def system_from_json(text: str) -> ProbabilisticSystem:
    """Reconstruct a probabilistic system from :func:`system_to_json`."""
    payload = json.loads(text)
    return ProbabilisticSystem(
        [tree_from_dict(tree) for tree in payload["trees"]]
    )
