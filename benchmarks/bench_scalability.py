"""Scalability -- how the core pipeline grows with system size.

Times the full stack (simulate -> trees -> knowledge index -> induced
spaces -> interval query) on the repeated-coin family, whose run count
doubles per toss.  This is the workload-generator sweep backing the
engineering claims in DESIGN.md (indexed knowledge, cached hashes, cached
events): the pipeline stays polynomial in the number of points.
"""

import time

from repro.core import ProbabilityAssignment, opponent_assignment
from repro.examples_lib import repeated_coin_system
from repro.reporting import print_table


def pipeline(tosses: int):
    example = repeated_coin_system(tosses)
    pa = ProbabilityAssignment(example.post_toss_assignment())
    anchor = next(iter(example.post_toss_points))
    interval = pa.probability_interval(0, anchor, example.most_recent_heads)
    against = opponent_assignment(example.psys, 1)
    one_run = example.psys.system.runs[0]
    clocked = {
        against.probability(0, point, example.most_recent_heads)
        for point in one_run.points()
        if point.time >= 1
    }
    return len(example.psys.system.points), interval, clocked


def test_scalability_pipeline(benchmark):
    points, interval, clocked = benchmark(pipeline, 8)
    rows = []
    for tosses in (4, 6, 8, 10):
        start = time.perf_counter()
        size, measured_interval, measured_clocked = pipeline(tosses)
        elapsed = time.perf_counter() - start
        rows.append(
            (
                tosses,
                2**tosses,
                size,
                measured_interval,
                f"{elapsed:.2f}s",
            )
        )
    print_table(
        "SCALABILITY  repeated-coin pipeline",
        ["tosses", "runs", "points", "inner/outer", "wall time"],
        rows,
    )
    from fractions import Fraction

    assert points == 2**8 * 9
    assert interval == (Fraction(1, 2**8), 1 - Fraction(1, 2**8))
    assert clocked == {Fraction(1, 2)}
