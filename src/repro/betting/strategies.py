"""Opponent strategies in the betting game (Section 6).

A *strategy* for the opponent ``p_j`` is a function from ``p_j``'s local
state to the payoff it offers for a bet on ``phi`` (or no offer at all).
This locality is the only assumption the paper makes about the opponent --
given two points ``p_j`` cannot distinguish, it must offer the same payoff.

The module provides the strategy type, bounded exhaustive enumeration over
finite payoff menus (for brute-force verification of the theorems), and the
targeted adversarial constructions used in the proofs of Proposition 6 and
Theorems 7 and 8 (offer ``1/alpha`` on ``K_j(d)``, a harmless payoff
everywhere else).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.model import LocalState, Point, System
from ..errors import BettingError
from ..probability.fractionutil import FractionLike, as_fraction

NO_BET = None
Payoff = Optional[Fraction]


class Strategy:
    """A betting strategy for opponent ``p_j``: local state -> payoff.

    ``table`` maps local states to positive payoffs; states absent from the
    table get ``default`` (``NO_BET`` unless overridden).  Payoffs must be
    positive -- the bet costs one dollar and pays the payoff if the fact is
    true.
    """

    __slots__ = ("agent", "_table", "_default", "name")

    def __init__(
        self,
        agent: int,
        table: Dict[LocalState, FractionLike],
        default: Optional[FractionLike] = NO_BET,
        name: Optional[str] = None,
    ) -> None:
        self.agent = agent
        self._table: Dict[LocalState, Fraction] = {}
        for local, payoff in table.items():
            value = as_fraction(payoff)
            if value <= 0:
                raise BettingError(f"payoff {value} is not positive")
            self._table[local] = value
        self._default: Payoff = None if default is NO_BET else as_fraction(default)
        if self._default is not None and self._default <= 0:
            raise BettingError(f"default payoff {self._default} is not positive")
        self.name = name or f"strategy(p{agent})"

    def payoff(self, local: LocalState) -> Payoff:
        """The payoff offered when the opponent's local state is ``local``."""
        return self._table.get(local, self._default)

    @property
    def default_payoff(self) -> Payoff:
        """The payoff offered at local states absent from the table."""
        return self._default

    def table_items(self):
        """The explicit (local state, payoff) entries of the strategy.

        The read-only view the betting provenance layer serialises: a
        strategy is evidence in a Theorem 7/8 refutation, so its full
        payoff table must be recordable without reaching into private
        state.
        """
        return self._table.items()

    def payoff_at(self, point: Point) -> Payoff:
        """The payoff offered at a point (reads the opponent's local state)."""
        return self.payoff(point.local_state(self.agent))

    def constant_on(self, points: Iterable[Point]) -> Payoff:
        """The single payoff offered across a set of points.

        Raises if the opponent distinguishes some of the points -- useful in
        the Theorem 7 computation, where the opponent's local state is
        constant on ``Tree^j_ic``.
        """
        payoffs = {self.payoff_at(point) for point in points}
        if len(payoffs) != 1:
            raise BettingError("opponent offers different payoffs across these points")
        return payoffs.pop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{local!r}: {payoff}" for local, payoff in self._table.items())
        return f"Strategy(p{self.agent}, {{{entries}}}, default={self._default})"


def opponent_states(system: System, agent: int, points: Iterable[Point]) -> Tuple[LocalState, ...]:
    """The opponent's distinct local states across ``points`` (sorted)."""
    states = {point.local_state(agent) for point in points}
    return tuple(sorted(states, key=repr))


def enumerate_strategies(
    agent: int,
    locals_: Sequence[LocalState],
    menu: Sequence[FractionLike],
    include_no_bet: bool = True,
    limit: int = 200_000,
) -> Iterator[Strategy]:
    """Every strategy assigning each local state a payoff from the menu.

    With ``include_no_bet`` the opponent may also decline to offer a bet in
    a state.  Total count is ``(len(menu) + include_no_bet) ** len(locals_)``;
    exceeding ``limit`` raises rather than silently truncating coverage.
    """
    options: List[Payoff] = [as_fraction(payoff) for payoff in menu]
    if include_no_bet:
        options = [NO_BET] + options
    count = len(options) ** len(locals_)
    if count > limit:
        raise BettingError(
            f"{count} strategies exceed the enumeration limit {limit}; "
            "shrink the menu or the local-state set"
        )
    for combination in product(options, repeat=len(locals_)):
        table = {
            local: payoff
            for local, payoff in zip(locals_, combination)
            if payoff is not NO_BET
        }
        yield Strategy(agent, table, default=NO_BET, name="enumerated")


def targeted_strategy(
    agent: int,
    special_locals: Iterable[LocalState],
    special_payoff: FractionLike,
    elsewhere_payoff: FractionLike = 1,
) -> Strategy:
    """The proofs' adversarial strategy: ``special_payoff`` on the given
    local states (typically ``K_j(d)``), ``elsewhere_payoff`` (typically the
    harmless payoff 1) everywhere else."""
    table = {local: special_payoff for local in special_locals}
    return Strategy(
        agent,
        table,
        default=elsewhere_payoff,
        name=f"targeted({special_payoff} on {len(table)} states)",
    )


def constant_strategy(agent: int, payoff: FractionLike) -> Strategy:
    """Offer the same payoff in every state (the 'always $2' example)."""
    return Strategy(agent, {}, default=payoff, name=f"constant({payoff})")


def injective_strategy(
    agent: int,
    locals_: Sequence[LocalState],
    pin_local: Optional[LocalState] = None,
    pin_payoff: Optional[FractionLike] = None,
) -> Strategy:
    """A strategy mapping distinct local states to distinct payoffs.

    Theorem 11's proof needs, for any strategy ``g`` and state ``t``, a
    strategy ``h`` with ``h(t) = g(t)`` that is injective elsewhere; pin the
    required value via ``pin_local`` / ``pin_payoff`` and the rest get fresh
    integer payoffs ``2, 3, 4, ...`` skipping the pinned value.
    """
    table: Dict[LocalState, Fraction] = {}
    pinned = as_fraction(pin_payoff) if pin_payoff is not None else None
    if pin_local is not None and pinned is not None:
        table[pin_local] = pinned
    next_payoff = Fraction(2)
    for local in locals_:
        if local in table:
            continue
        while pinned is not None and next_payoff == pinned or next_payoff in table.values():
            next_payoff += 1
        table[local] = next_payoff
        next_payoff += 1
    return Strategy(agent, table, default=NO_BET, name="injective")
