"""Generative construction of computation trees.

The paper's technical assumption (Section 3) requires the environment
component of every global state to encode the adversary and the entire past
history, so that a global state appears in at most one tree and at most once
there.  :class:`Env` realises the assumption: the builder threads an
``Env(adversary, history, extra)`` through every state it creates, where
``history`` is the tuple of transition labels taken so far.

A *step function* describes the probabilistic dynamics::

    step(time, local_states, extra) -> [(probability, label, new_locals, new_extra), ...]

Returning an empty sequence halts the run.  Labels must be distinct within
a step (they name the probabilistic choice -- e.g. ``"heads"``), because
they become part of the history and hence of state identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from ..errors import TreeError
from ..probability.fractionutil import ONE, ZERO, FractionLike, as_fraction
from ..core.model import GlobalState
from .tree import ComputationTree


@dataclass(frozen=True)
class Env:
    """An environment state satisfying the paper's technical assumption.

    ``adversary`` identifies the computation tree; ``history`` is the tuple
    of transition labels taken so far (so no global state repeats);
    ``extra`` carries any additional modelling payload (e.g. the type-3
    adversary of Section 7, or undelivered messages).
    """

    adversary: Hashable
    history: Tuple[Hashable, ...] = ()
    extra: Hashable = None

    def advanced(self, label: Hashable, extra: Hashable) -> "Env":
        """The environment after taking a transition labeled ``label``."""
        return Env(self.adversary, self.history + (label,), extra)

    def __hash__(self) -> int:
        # Histories grow linearly with time and can nest deeply; caching the
        # hash keeps global-state lookups O(1) after first use.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.adversary, self.history, self.extra))
            object.__setattr__(self, "_hash", cached)
        return cached


StepBranch = Tuple[FractionLike, Hashable, Tuple[Hashable, ...], Hashable]
StepFunction = Callable[[int, Tuple[Hashable, ...], Hashable], Sequence[StepBranch]]


def build_tree(
    adversary: Hashable,
    initial_locals: Sequence[Hashable],
    step: StepFunction,
    max_depth: int = 64,
    initial_extra: Hashable = None,
) -> ComputationTree:
    """Build the computation tree ``T_A`` from a step function.

    Parameters
    ----------
    adversary:
        The type-1 adversary id (becomes part of every environment state).
    initial_locals:
        The agents' local states at time 0.
    step:
        The step function described in the module docstring.
    max_depth:
        Safety cap on the recursion; exceeded depth raises :class:`TreeError`
        rather than looping forever on a non-halting step function.
    initial_extra:
        The ``extra`` payload of the root environment.
    """
    root_env = Env(adversary, (), initial_extra)
    root = GlobalState(root_env, tuple(initial_locals))
    children: dict = {}
    edge_probabilities: dict = {}

    def expand(state: GlobalState, time: int) -> None:
        if time > max_depth:
            raise TreeError(f"tree exceeded max_depth={max_depth}; non-halting step function?")
        env: Env = state.environment  # type: ignore[assignment]
        branches = list(step(time, state.local_states, env.extra))
        if not branches:
            return
        labels = [label for _, label, _, _ in branches]
        if len(set(labels)) != len(labels):
            raise TreeError(f"duplicate transition labels {labels!r} at time {time}")
        total = ZERO
        kids: List[GlobalState] = []
        for probability, label, new_locals, new_extra in branches:
            fraction = as_fraction(probability)
            if fraction <= ZERO:
                continue
            total += fraction
            child = GlobalState(env.advanced(label, new_extra), tuple(new_locals))
            kids.append(child)
            edge_probabilities[(state, child)] = fraction
        if total != ONE:
            raise TreeError(f"step probabilities at time {time} sum to {total}, not 1")
        children[state] = tuple(kids)
        for child in kids:
            expand(child, time + 1)

    expand(root, 0)
    # expand() has already enforced every tree invariant: labels are
    # distinct and positive and sum to 1 per node, histories extend
    # strictly (so no global state repeats), and each node was reached
    # from the root -- skip the duplicate validation pass.
    return ComputationTree(adversary, root, children, edge_probabilities, validate=False)


def halt() -> Sequence[StepBranch]:
    """The empty branch list: the run halts here."""
    return ()


def deterministic_step(
    label: Hashable, new_locals: Sequence[Hashable], new_extra: Hashable = None
) -> Sequence[StepBranch]:
    """A single certain transition."""
    return ((ONE, label, tuple(new_locals), new_extra),)


def chance_step(
    branches: Sequence[Tuple[FractionLike, Hashable, Sequence[Hashable]]],
    new_extra: Hashable = None,
) -> Sequence[StepBranch]:
    """A purely probabilistic transition with a shared ``extra`` payload."""
    return tuple(
        (probability, label, tuple(new_locals), new_extra)
        for probability, label, new_locals in branches
    )


def tree_from_trace_distribution(
    adversary: Hashable,
    initial_locals: Sequence[Hashable],
    traces: Sequence[Tuple[FractionLike, Sequence[Tuple[Hashable, Sequence[Hashable]]]]],
) -> ComputationTree:
    """Build a tree from a distribution over *traces*.

    Each trace is a sequence of ``(label, local_states)`` steps; its
    probability is split across the tree by common-prefix factoring.  This
    is convenient for hand-specified examples (the die, the aces) where
    writing a step function would be noise.
    """
    normalised = [
        (as_fraction(probability), tuple((label, tuple(locals_)) for label, locals_ in trace))
        for probability, trace in traces
    ]
    if sum((probability for probability, _ in normalised), ZERO) != ONE:
        raise TreeError("trace probabilities must sum to 1")

    def step(time: int, local_states: Tuple[Hashable, ...], extra: Hashable):
        prefix: Tuple[Hashable, ...] = extra if extra is not None else ()
        continuations: dict = {}
        total_mass = ZERO
        for probability, trace in normalised:
            if len(trace) < len(prefix) or tuple(label for label, _ in trace[: len(prefix)]) != prefix:
                continue
            total_mass += probability
            if len(trace) == len(prefix):
                continue
            label, locals_ = trace[len(prefix)]
            mass, _ = continuations.get(label, (ZERO, locals_))
            continuations[label] = (mass + probability, locals_)
        if not continuations:
            return ()
        if total_mass == ZERO:
            raise TreeError("no trace matches the current prefix")
        if any(
            len(trace) == len(prefix)
            for probability, trace in normalised
            if tuple(label for label, _ in trace[: len(prefix)]) == prefix
        ) and continuations:
            raise TreeError("traces must be prefix-free (one halts where another continues)")
        return tuple(
            (mass / total_mass, label, locals_, prefix + (label,))
            for label, (mass, locals_) in continuations.items()
        )

    return build_tree(adversary, initial_locals, step, initial_extra=())
