"""Differential suite: bitmask measure kernels == naive kernels, exactly.

Hypothesis drives random algebras over 0..7 -- including non-powerset
ones, since the random partition regularly produces multi-outcome atoms
-- random rational masses, and random events that may split atoms or
mention outcomes outside the sample space.  Every kernel of the bitmask
engine must agree with the retained ``*_naive`` implementation and with a
space constructed under the naive backend, value-for-value as exact
Fractions.
"""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NotMeasurableError
from repro.probability import FiniteProbabilitySpace, use_backend

OUTCOMES = tuple(range(8))
#: Outcomes never in the space: inner/outer measures must ignore them,
#: ``measure``/``is_measurable`` must reject them -- on both engines.
FOREIGN = (98, 99)


@st.composite
def partitions(draw):
    """Random partition of 0..7 plus random rational atom masses."""
    labels = draw(
        st.lists(st.integers(0, 3), min_size=len(OUTCOMES), max_size=len(OUTCOMES))
    )
    blocks: dict = {}
    for outcome, label in zip(OUTCOMES, labels):
        blocks.setdefault(label, set()).add(outcome)
    atoms = [frozenset(block) for block in blocks.values()]
    weights = draw(
        st.lists(st.integers(1, 9), min_size=len(atoms), max_size=len(atoms))
    )
    total = sum(weights)
    probabilities = {
        atom: Fraction(weight, total) for atom, weight in zip(atoms, weights)
    }
    return atoms, probabilities


events = st.sets(st.sampled_from(OUTCOMES + FOREIGN)).map(frozenset)


@given(partitions(), events)
def test_bitmask_kernels_match_naive_kernels(partition, event):
    atoms, probabilities = partition
    space = FiniteProbabilitySpace(atoms, probabilities)
    assert space.backend == "bitmask"
    assert space.is_measurable(event) == space.is_measurable_naive(event)
    assert space.inner_measure(event) == space.inner_measure_naive(event)
    assert space.outer_measure(event) == space.outer_measure_naive(event)
    assert space.measure_interval(event) == space.measure_interval_naive(event)
    # the second query is served by the interval cache; it must not drift
    assert space.measure_interval(event) == space.measure_interval_naive(event)
    try:
        expected = space.measure_naive(event)
    except NotMeasurableError:
        with pytest.raises(NotMeasurableError):
            space.measure(event)
    else:
        assert space.measure(event) == expected


@given(partitions(), events)
def test_backends_agree_on_identical_inputs(partition, event):
    atoms, probabilities = partition
    with use_backend("naive"):
        naive_space = FiniteProbabilitySpace(atoms, probabilities)
    bitmask_space = FiniteProbabilitySpace(atoms, probabilities)
    assert naive_space.backend == "naive"
    assert bitmask_space.backend == "bitmask"
    assert bitmask_space.is_measurable(event) == naive_space.is_measurable(event)
    assert bitmask_space.measure_interval(event) == naive_space.measure_interval(event)
    inner, outer = bitmask_space.measure_interval(event)
    assert type(inner) is Fraction and type(outer) is Fraction


@given(partitions())
def test_conditioning_agrees_across_backends(partition):
    atoms, probabilities = partition
    conditioning_event = frozenset(atoms[0])
    with use_backend("naive"):
        naive_space = FiniteProbabilitySpace(atoms, probabilities)
        naive_conditioned = naive_space.condition(conditioning_event)
    bitmask_conditioned = FiniteProbabilitySpace(atoms, probabilities).condition(
        conditioning_event
    )
    for atom in naive_conditioned.atoms:
        assert bitmask_conditioned.measure(atom) == naive_conditioned.measure(atom)
