"""RL001 — exact arithmetic only in the measure-theoretic core."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..model import Module, Violation
from ..registry import Rule, register

#: Subpackages where every probability must stay a ``fractions.Fraction``.
EXACT_SUBPACKAGES = frozenset({"probability", "core", "betting", "logic"})

#: Modules allowed to mention floats: the single sanctioned float ->
#: Fraction conversion boundary (``as_fraction``/``format_fraction``).
ALLOWLIST = frozenset({("probability", "fractionutil")})

#: Imports of approximate-arithmetic stdlib modules are banned outright.
BANNED_MODULES = frozenset({"math", "cmath"})


@register
class ExactArithmeticRule(Rule):
    rule_id = "RL001"
    title = "no float arithmetic in probability/, core/, betting/, logic/"
    rationale = """\
Every probability in the library is an exact fractions.Fraction (see
src/repro/probability/fractionutil.py).  The theorem verifiers -- Theorems
7, 8 and 9 and Proposition 6 in repro.betting.theorems -- compare measures
with `==`, which is only sound under the exact measure-theoretic semantics
of the paper's Sections 3-5.  A single float literal, float() call,
math.*/cmath.* import, or equality test against a float constant silently
replaces exact comparison with binary-rounding behaviour and can flip a
theorem verdict without any test noticing.

The only sanctioned float boundary is probability/fractionutil.py, where
as_fraction() converts a float via its decimal repr and format_fraction()
renders large denominators for tables; that module is allowlisted."""

    def check(self, module: Module) -> Iterator[Violation]:
        if module.subpackage not in EXACT_SUBPACKAGES:
            return
        if module.rel_parts in ALLOWLIST:
            return
        reported_constants: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in BANNED_MODULES:
                        yield self.violation(
                            module, node,
                            f"import of approximate-arithmetic module "
                            f"'{alias.name}' (use fractions.Fraction)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in BANNED_MODULES:
                    yield self.violation(
                        module, node,
                        f"import from approximate-arithmetic module "
                        f"'{node.module}' (use fractions.Fraction)",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    for operand in (left, right):
                        if _is_float_constant(operand):
                            reported_constants.add(id(operand))
                            yield self.violation(
                                module, operand,
                                "equality comparison against float constant "
                                f"{operand.value!r} (compare exact Fractions)",  # type: ignore[attr-defined]
                            )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "float":
                    yield self.violation(
                        module, node,
                        "float() conversion (keep values as Fraction; "
                        "fractionutil is the only sanctioned boundary)",
                    )
        for node in ast.walk(module.tree):
            if _is_float_constant(node) and id(node) not in reported_constants:
                yield self.violation(
                    module, node,
                    f"float literal {node.value!r} "  # type: ignore[attr-defined]
                    "(write Fraction(p, q) or a '\"p/q\"' string)",
                )


def _is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
