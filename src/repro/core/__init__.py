"""The paper's primary contribution, executable.

``model`` and ``facts`` realise Section 2; ``assignments`` realises the
Section 5 reduction from probability assignments to sample-space
assignments; ``standard`` gives the Section 6 lattice (``post``, ``fut``,
``opp(j)``, ``prior``); ``cuts`` gives the Section 7 type-3 adversaries;
``measurability`` covers Proposition 3 and its asynchronous failure.
"""

from .assignments import (
    ExplicitAssignment,
    FunctionAssignment,
    ProbabilityAssignment,
    SampleSpaceAssignment,
    check_req1,
    check_req2,
    check_req2_state_generated,
    induced_point_space,
    project_runs,
)
from .agreement import (
    AgreementReport,
    DialogueResult,
    DialogueRound,
    agreement_dialogue,
    aumann_agreement,
    common_knowledge_of_posteriors,
    knowledge_partition,
    meet_partition,
)
from .cuts import (
    count_point_cuts,
    cut_probability_interval,
    enumerate_banded_cuts,
    enumerate_horizontal_cuts,
    enumerate_partial_cuts,
    enumerate_point_cuts,
    enumerate_state_cuts,
    interval_over_banded_cuts,
    interval_over_cuts,
    points_by_run,
    pts_interval,
    verify_proposition10,
)
from .facts import (
    Fact,
    is_fact_about_global_state,
    is_fact_about_run,
    state_generated_point_set,
)
from .measurability import (
    measurability_report,
    non_measurable_sites,
    proposition3_instance,
    sufficient_richness_propositions,
)
from .model import GlobalState, LocalState, Point, Run, System
from .standard import (
    FutureAssignment,
    OpponentAssignment,
    PostAssignment,
    PriorAssignment,
    conditioning_identity_everywhere,
    conditioning_identity_holds,
    opponent_assignment,
    refinement_partition,
    standard_assignments,
)

__all__ = [
    "GlobalState",
    "LocalState",
    "Point",
    "Run",
    "System",
    "Fact",
    "is_fact_about_run",
    "is_fact_about_global_state",
    "state_generated_point_set",
    "SampleSpaceAssignment",
    "ExplicitAssignment",
    "FunctionAssignment",
    "ProbabilityAssignment",
    "check_req1",
    "check_req2",
    "check_req2_state_generated",
    "induced_point_space",
    "project_runs",
    "PostAssignment",
    "FutureAssignment",
    "OpponentAssignment",
    "PriorAssignment",
    "standard_assignments",
    "opponent_assignment",
    "refinement_partition",
    "conditioning_identity_holds",
    "conditioning_identity_everywhere",
    "measurability_report",
    "non_measurable_sites",
    "proposition3_instance",
    "sufficient_richness_propositions",
    "points_by_run",
    "count_point_cuts",
    "enumerate_point_cuts",
    "enumerate_partial_cuts",
    "enumerate_state_cuts",
    "enumerate_horizontal_cuts",
    "enumerate_banded_cuts",
    "interval_over_banded_cuts",
    "AgreementReport",
    "aumann_agreement",
    "agreement_dialogue",
    "DialogueResult",
    "DialogueRound",
    "common_knowledge_of_posteriors",
    "knowledge_partition",
    "meet_partition",
    "cut_probability_interval",
    "interval_over_cuts",
    "pts_interval",
    "verify_proposition10",
]
