"""Differential suite: wordarray == bitmask == naive kernels, exactly.

Hypothesis drives random algebras -- including non-powerset ones, since
the random partition regularly produces multi-outcome atoms -- random
rational masses, and random events that may split atoms or mention
outcomes outside the sample space.  Every kernel of the bitmask engine
must agree with the retained ``*_naive`` implementation, and a space
constructed under each backend (``naive``, ``bitmask``, and -- when
numpy is present -- ``wordarray``) must agree value-for-value as exact
Fractions.

Two universes run the same properties: the seed's 8 outcomes, and a
70-outcome universe whose masks span two ``uint64`` words with a partial
tail word -- the word-array backend's classic off-by-one site.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotMeasurableError
from repro.probability import FiniteProbabilitySpace, use_backend, wordmask

OUTCOMES = tuple(range(8))
#: Non-multiple-of-64 so word-array masks carry a partial tail word.
WIDE_OUTCOMES = tuple(range(70))
#: Outcomes never in the space: inner/outer measures must ignore them,
#: ``measure``/``is_measurable`` must reject them -- on every engine.
FOREIGN = (98, 99)

#: Backends every space-level property is run under.
THREE_BACKENDS = ("naive", "bitmask") + (
    ("wordarray",) if wordmask.available() else ()
)


@st.composite
def partitions(draw, outcomes=OUTCOMES, max_label=3):
    """Random partition of the universe plus random rational atom masses."""
    labels = draw(
        st.lists(
            st.integers(0, max_label),
            min_size=len(outcomes),
            max_size=len(outcomes),
        )
    )
    blocks: dict = {}
    for outcome, label in zip(outcomes, labels):
        blocks.setdefault(label, set()).add(outcome)
    atoms = [frozenset(block) for block in blocks.values()]
    weights = draw(
        st.lists(st.integers(1, 9), min_size=len(atoms), max_size=len(atoms))
    )
    total = sum(weights)
    probabilities = {
        atom: Fraction(weight, total) for atom, weight in zip(atoms, weights)
    }
    return atoms, probabilities


events = st.sets(st.sampled_from(OUTCOMES + FOREIGN)).map(frozenset)
wide_events = st.sets(st.sampled_from(WIDE_OUTCOMES + FOREIGN)).map(frozenset)


def build_spaces(atoms, probabilities):
    """The same algebra constructed under every available backend."""
    spaces = {}
    for backend in THREE_BACKENDS:
        with use_backend(backend):
            spaces[backend] = FiniteProbabilitySpace(atoms, probabilities)
        assert spaces[backend].backend == backend
    return spaces


def assert_spaces_agree(spaces, event):
    reference = spaces["naive"]
    expected_interval = reference.measure_interval(event)
    expected_measurable = reference.is_measurable(event)
    for backend, space in spaces.items():
        assert space.is_measurable(event) == expected_measurable, backend
        interval = space.measure_interval(event)
        assert interval == expected_interval, backend
        inner, outer = interval
        assert type(inner) is Fraction and type(outer) is Fraction
        try:
            expected = reference.measure_naive(event)
        except NotMeasurableError:
            with pytest.raises(NotMeasurableError):
                space.measure(event)
        else:
            assert space.measure(event) == expected, backend


@given(partitions(), events)
def test_bitmask_kernels_match_naive_kernels(partition, event):
    atoms, probabilities = partition
    space = FiniteProbabilitySpace(atoms, probabilities)
    assert space.backend == "bitmask"
    assert space.is_measurable(event) == space.is_measurable_naive(event)
    assert space.inner_measure(event) == space.inner_measure_naive(event)
    assert space.outer_measure(event) == space.outer_measure_naive(event)
    assert space.measure_interval(event) == space.measure_interval_naive(event)
    # the second query is served by the interval cache; it must not drift
    assert space.measure_interval(event) == space.measure_interval_naive(event)
    try:
        expected = space.measure_naive(event)
    except NotMeasurableError:
        with pytest.raises(NotMeasurableError):
            space.measure(event)
    else:
        assert space.measure(event) == expected


@given(partitions(), events)
def test_backends_agree_on_identical_inputs(partition, event):
    atoms, probabilities = partition
    assert_spaces_agree(build_spaces(atoms, probabilities), event)


@settings(max_examples=40)
@given(partitions(outcomes=WIDE_OUTCOMES, max_label=12), wide_events)
def test_backends_agree_on_tail_word_universes(partition, event):
    """70 outcomes: two words per mask, partial tail word, many atoms."""
    atoms, probabilities = partition
    assert_spaces_agree(build_spaces(atoms, probabilities), event)


@settings(max_examples=40)
@given(partitions(outcomes=WIDE_OUTCOMES, max_label=12), wide_events)
def test_inner_outer_split_on_tail_word_universes(partition, event):
    atoms, probabilities = partition
    spaces = build_spaces(atoms, probabilities)
    reference = spaces["naive"]
    for backend, space in spaces.items():
        assert space.inner_measure(event) == reference.inner_measure(event), backend
        assert space.outer_measure(event) == reference.outer_measure(event), backend


@given(partitions())
def test_conditioning_agrees_across_backends(partition):
    atoms, probabilities = partition
    conditioning_event = frozenset(atoms[0])
    conditioned = {}
    for backend in THREE_BACKENDS:
        with use_backend(backend):
            conditioned[backend] = FiniteProbabilitySpace(
                atoms, probabilities
            ).condition(conditioning_event)
    reference = conditioned["naive"]
    for atom in reference.atoms:
        expected = reference.measure(atom)
        for backend, space in conditioned.items():
            assert space.measure(atom) == expected, backend
