"""Parallel fan-out for sweeps and enumeration workloads.

The guarantee sweeps of Proposition 11 -- and the Theorem 7/8/9 style
enumerations generally -- are embarrassingly parallel: every
protocol/parameter combination builds its own system and queries it
independently, with exact :class:`fractions.Fraction` results that are
cheap to pickle.  This module fans such workloads across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the one
property the analyses rely on: **deterministic result ordering**.  Tasks
are enumerated up front in serial order (:func:`repro.attack.sweep.sweep_tasks`)
and ``Executor.map`` preserves input order, so the parallel sweep returns
exactly the same row list as the serial one -- only faster.

Environments without working process pools (restricted sandboxes, missing
``/dev/shm``, non-picklable custom builders) degrade gracefully: the
runner falls back to in-process execution and still returns the same
rows.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from fractions import Fraction
from pickle import PicklingError
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from ..probability.fractionutil import FractionLike
from .sweep import Builder, SweepRow, sweep_row_of, sweep_tasks

__all__ = ["parallel_map", "parallel_guarantee_sweep", "POOL_FALLBACK_ERRORS"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Errors that mean "a process pool cannot be used here" rather than "the
#: workload failed": pool creation being refused by the OS or the
#: platform, values that cannot cross a process boundary (CPython raises
#: AttributeError/TypeError, not just PicklingError, for closures and
#: unpicklable state), or the pool dying underneath us.  The fallback
#: re-runs the same pure map in-process, so a genuine application error
#: that happens to share one of these types is re-raised faithfully by
#: the serial pass.
POOL_FALLBACK_ERRORS = (
    OSError,
    NotImplementedError,
    PicklingError,
    AttributeError,
    TypeError,
    BrokenProcessPool,
)


def parallel_map(
    function: Callable[[_Item], _Result],
    items: Sequence[_Item],
    max_workers: Optional[int] = None,
) -> List[_Result]:
    """Order-preserving ``map`` over worker processes.

    ``function`` must be picklable (a module-level function); results come
    back in the order of ``items`` regardless of which worker finished
    first.  ``max_workers=1`` -- or any condition in
    :data:`POOL_FALLBACK_ERRORS` -- runs the same map in-process, so
    callers never need to branch on platform capabilities.
    """
    work = list(items)
    if max_workers is not None and max_workers < 1:
        raise ValueError("parallel_map needs at least one worker")
    if len(work) <= 1 or max_workers == 1:
        return [function(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(function, work))
    except POOL_FALLBACK_ERRORS:
        return [function(item) for item in work]


def parallel_guarantee_sweep(
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
    max_workers: Optional[int] = None,
) -> List[SweepRow]:
    """:func:`~repro.attack.sweep.guarantee_sweep`, fanned across processes.

    Row-for-row identical to the serial sweep (same task enumeration, same
    ordering, same exact Fractions); custom ``builders`` must be
    module-level callables so they can be shipped to workers.
    """
    tasks = sweep_tasks(messenger_counts, losses, builders, epsilon)
    return parallel_map(sweep_row_of, tasks, max_workers=max_workers)
