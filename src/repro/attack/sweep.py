"""Parameter sweeps over the coordinated-attack design space.

Proposition 11 is a single point in a family: the guarantee a protocol
gives depends on the messenger count ``k``, the capture probability, and
the confidence level ``eps`` demanded.  This module computes:

* :func:`post_threshold` -- the *largest* ``eps`` for which ``C^eps
  phi_CA`` holds at all points under ``P_post``.  Because ``phi_CA`` is a
  fact about the run and the induction rule applies, this is exactly the
  minimum, over agents and points, of the inner probability of coordination
  -- for CA2 it is ``min`` of B's silent confidence and A's delivery
  confidence.
* :func:`guarantee_sweep` -- the full protocol x parameters table the
  benchmark prints, exposing the crossover where a demanded ``eps``
  stops being achievable as the messenger count shrinks or the loss rate
  grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.model import Point
from ..core.standard import standard_assignments
from ..logic.semantics import Model
from ..logic.syntax import PrAtLeast, Prop
from ..obs.audit import AuditBundleWriter
from ..obs.recorder import get_recorder
from ..probability.bitset import get_default_backend, kernel_totals, use_backend
from ..probability.fractionutil import FractionLike, ONE, as_fraction
from ..reporting import json_ready
from .analysis import achieves, run_level_probability
from .protocols import AttackSystem, build_ca1, build_ca1_adaptive, build_ca2


def post_threshold(attack: AttackSystem) -> Fraction:
    """The supremum of ``eps`` with ``C^eps phi_CA`` at all points (P_post).

    Deterministic. Exact Fraction minimum over a fixed point set; same
    attack system, same threshold, in every process.
    Exact. Inner probabilities and the minimum stay in Fractions.

    Since ``phi_CA`` is a fact about the run, ``E^eps`` at all points is
    equivalent to ``eps <= min inner-probability`` across all agents and
    points; by the induction rule that already gives ``C^eps`` everywhere,
    and conversely ``C^eps`` implies ``E^eps``.  So the threshold is the
    pointwise minimum.
    """
    post = standard_assignments(attack.psys)["post"]
    system = attack.psys.system
    return min(
        post.inner_probability(agent, point, attack.coordinated)
        for agent in attack.group
        for point in system.points
    )


def post_threshold_witness(attack: AttackSystem) -> Tuple[Fraction, int, Point]:
    """:func:`post_threshold` with its argmin: ``(threshold, agent, point)``.

    The (agent, point) pair attaining the minimum inner probability is
    the binding constraint of the Proposition 11 guarantee -- the place
    where the ``C^eps phi_CA`` claim is tightest.  Ties break
    deterministically: agents in group order, points in point-index
    order, so the witness is stable across runs and processes (what the
    per-row provenance events and ``tools/tracediff`` rely on).
    """
    post = standard_assignments(attack.psys)["post"]
    index = attack.psys.point_index
    points = sorted(attack.psys.system.points, key=index.position)
    best: Optional[Tuple[Fraction, int, Point]] = None
    for agent in attack.group:
        for point in points:
            inner = post.inner_probability(agent, point, attack.coordinated)
            if best is None or inner < best[0]:
                best = (inner, agent, point)
    assert best is not None  # systems always have at least one point
    return best


def row_provenance_derivation(attack: AttackSystem):
    """The ``repro-explain/1`` derivation behind one sweep row's threshold.

    Explains ``Pr_i(coord) >= threshold`` at the row's witness point
    under ``P_post`` -- the exact Section 5 inner-measure computation
    (sample space, cells, witness event) that produced the row's
    ``post_threshold``.  This is what the ``provenance=True`` sweep mode
    attaches to each ``row_provenance`` event.
    """
    threshold, agent, point = post_threshold_witness(attack)
    post = standard_assignments(attack.psys)["post"]
    model = Model(post, {"coord": attack.coordinated})
    formula = PrAtLeast(agent, Prop("coord"), threshold)
    return model.explain(formula, point)


def prior_threshold(attack: AttackSystem) -> Fraction:
    """The analogous threshold for ``P_prior`` (= the run-level probability,
    since prior spaces are time slices and phi_CA is a run fact)."""
    prior = standard_assignments(attack.psys)["prior"]
    system = attack.psys.system
    return min(
        prior.inner_probability(agent, point, attack.coordinated)
        for agent in attack.group
        for point in system.points
    )


@dataclass
class SweepRow:
    """One protocol/parameter combination of the sweep."""

    protocol: str
    messengers: int
    loss: Fraction
    run_level: Fraction
    post_threshold: Fraction
    achieves_99_post: bool


Builder = Callable[[int, FractionLike], AttackSystem]

DEFAULT_BUILDERS: Dict[str, Builder] = {
    "CA1": build_ca1,
    "CA2": build_ca2,
    "CA1-adaptive": build_ca1_adaptive,
}

#: One unit of sweep work: ``(protocol name, builder, messengers, loss,
#: epsilon)``.  Tasks are what the parallel runner ships to worker
#: processes, so every component must be picklable (the default builders
#: are module-level functions, hence pickled by reference).
SweepTask = Tuple[str, Builder, int, Fraction, Fraction]


def task_fingerprint(task: SweepTask) -> Dict[str, object]:
    """The sweep coordinates identifying one task (Section 8).

    Deterministic. The fingerprint depends only on the task tuple and
    the active measure backend, so resumed and fresh runs key the same
    cell identically.
    Exact. Loss and epsilon serialise as Fraction strings -- no float
    ever enters a checkpoint key.

    Deliberately excludes the builder callable: two runs constructing
    the same (protocol, messengers, loss, epsilon) cell must produce
    interchangeable rows, and callables have no stable serial form.

    The ``backend`` field is *provenance, not identity*: rows are
    backend-independent exact Fractions, so checkpoint loading ignores
    it when matching records to tasks -- a sweep checkpointed under
    ``bitmask`` resumes cleanly under ``wordarray`` and vice versa, and
    checkpoints written before the field existed still load.  This is
    also the ``task`` payload every ``repro-audit/1`` leaf hash commits
    to, which is why it lives here: both the serial
    :func:`guarantee_sweep` and the fault-tolerant checkpointed sweep
    chain the same identity.
    """
    name, _builder, messengers, loss, epsilon = task
    return {
        "protocol": name,
        "messengers": messengers,
        "loss": str(Fraction(loss)),
        "epsilon": str(Fraction(epsilon)),
        "backend": get_default_backend(),
    }


def sweep_tasks(
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
) -> List[SweepTask]:
    """The deterministic task list behind :func:`guarantee_sweep`.

    Serial and parallel execution both enumerate this exact list in this
    exact order, which is what makes their results comparable row by row.
    """
    builders = builders or DEFAULT_BUILDERS
    threshold = as_fraction(epsilon)
    return [
        (name, builder, messengers, as_fraction(loss), threshold)
        for name, builder in builders.items()
        for messengers in messenger_counts
        for loss in losses
    ]


def sweep_row_from_attack(task: SweepTask, attack: AttackSystem) -> SweepRow:
    """Compute one :class:`SweepRow` from an already-built attack system.

    Split out of :func:`sweep_row_of` so callers that inspect the system
    between building and measuring it -- the ``strict=True`` validation
    path of :func:`repro.robustness.checkpoint.robust_guarantee_sweep` --
    reuse exactly the same row computation.
    """
    name, _builder, messengers, loss, threshold = task
    post = post_threshold(attack)
    return SweepRow(
        protocol=name,
        messengers=messengers,
        loss=loss,
        run_level=run_level_probability(attack),
        post_threshold=post,
        achieves_99_post=post >= threshold,
    )


def sweep_row_of(
    task: SweepTask,
    provenance: bool = False,
    backend: Optional[str] = None,
) -> SweepRow:
    """Compute one :class:`SweepRow` from a :data:`SweepTask`.

    Deterministic. The row is a pure function of the task tuple -- the
    property the retry/resume machinery and the process pool both
    assume (RL009 checks the whole closure).  Rows are backend-independent:
    every measure engine computes identical exact Fractions, so ``backend``
    selects *how* the row is computed, never *what* it contains.

    Module-level (not a closure) so :func:`repro.attack.parallel.parallel_map`
    can send it to worker processes; ``backend`` rides along as a plain
    string, which is how the parallel runner propagates the caller's
    engine choice into freshly spawned workers (whose process-global
    default would otherwise be ``"bitmask"``).

    With ``provenance=True`` (opt-in, default off) the row additionally
    emits a ``row_provenance`` event carrying the full
    ``repro-explain/1`` derivation of the row's ``post_threshold`` at
    its witness point (:func:`row_provenance_derivation`).  The event is
    observe-only: the returned row is byte-identical either way.
    """
    if backend is not None:
        with use_backend(backend):
            return sweep_row_of(task, provenance=provenance)
    name, builder, messengers, loss, _threshold = task
    recorder = get_recorder()
    with recorder.span(
        "sweep_row", protocol=name, messengers=messengers, loss=loss
    ):
        attack = builder(messengers, loss)
        row = sweep_row_from_attack(task, attack)
        recorder.event("cache_stats", **kernel_totals())
        if provenance:
            derivation = row_provenance_derivation(attack)
            recorder.event(
                "row_provenance",
                protocol=name,
                messengers=messengers,
                loss=loss,
                fingerprint=derivation.fingerprint(),
                derivation=derivation.json_ready(),
            )
        return row


def audited_sweep_row(task: SweepTask, writer: AuditBundleWriter, index: int) -> SweepRow:
    """Compute one row and chain it into a ``repro-audit/1`` bundle.

    Builds the attack system once and reuses it for both the row and its
    ``post_threshold`` derivation (:func:`row_provenance_derivation`),
    then appends the Merkle leaf binding (task fingerprint, exact row
    payload, derivation root fingerprint, index) -- the per-row unit of
    the verifiable-sweep story, replayed by ``tools/verifyaudit``.  The
    returned row is byte-identical to :func:`sweep_row_of`'s: auditing
    observes the Section 8 computation, it never perturbs it.
    """
    name, builder, messengers, loss, _threshold = task
    recorder = get_recorder()
    with recorder.span(
        "sweep_row", protocol=name, messengers=messengers, loss=loss
    ):
        attack = builder(messengers, loss)
        row = sweep_row_from_attack(task, attack)
        recorder.event("cache_stats", **kernel_totals())
        derivation = row_provenance_derivation(attack)
        chain = writer.append(
            index, task_fingerprint(task), json_ready(row), derivation
        )
        recorder.event(
            "audit_leaf",
            protocol=name,
            messengers=messengers,
            loss=loss,
            index=index,
            fingerprint=derivation.fingerprint(),
            chain=chain,
        )
        return row


def guarantee_sweep(
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
    provenance: bool = False,
    backend: Optional[str] = None,
    audit_path=None,
) -> List[SweepRow]:
    """Sweep protocols over messenger counts and loss probabilities.

    ``provenance=True`` opts every row into a ``row_provenance`` event
    with its threshold derivation; see :func:`sweep_row_of`.
    ``backend`` runs the whole sweep under a specific measure engine
    (``None`` keeps the process default); rows are identical either way.
    ``audit_path`` (opt-in, default off) additionally chains every row
    into a ``repro-audit/1`` Merkle bundle at that path -- each leaf
    binds the task fingerprint, the exact row payload, and the row's
    threshold-derivation root fingerprint, so ``tools/verifyaudit`` can
    certify the sweep without recomputing it (see
    :mod:`repro.obs.audit`); rows are byte-identical either way.
    """
    tasks = sweep_tasks(messenger_counts, losses, builders, epsilon)
    writer = AuditBundleWriter(audit_path) if audit_path is not None else None

    def rows() -> List[SweepRow]:
        if writer is not None:
            return [
                audited_sweep_row(task, writer, index)
                for index, task in enumerate(tasks)
            ]
        return [sweep_row_of(task, provenance=provenance) for task in tasks]

    with get_recorder().span("guarantee_sweep", tasks=len(tasks)):
        if backend is not None:
            with use_backend(backend):
                return rows()
        return rows()


def crossover_messengers(
    builder: Builder,
    epsilon: FractionLike,
    loss: FractionLike = Fraction(1, 2),
    max_messengers: int = 16,
) -> Optional[int]:
    """The least messenger count whose ``P_post`` threshold reaches ``eps``.

    The threshold is monotone in the messenger count (more messengers can
    only increase every conditional confidence), so this is the crossover
    of the sweep.  Returns ``None`` if not reached by ``max_messengers``.
    """
    target = as_fraction(epsilon)
    for messengers in range(1, max_messengers + 1):
        attack = builder(messengers, as_fraction(loss))
        if post_threshold(attack) >= target:
            return messengers
    return None


def threshold_is_exact(attack: AttackSystem, samples: int = 3) -> bool:
    """Cross-check :func:`post_threshold` against the gfp-based
    :func:`~repro.attack.analysis.achieves` on both sides of the value."""
    post = standard_assignments(attack.psys)["post"]
    threshold = post_threshold(attack)
    if not achieves(attack, post, threshold):
        return False
    if threshold < ONE:
        nudged = threshold + (ONE - threshold) / (samples + 1)
        if achieves(attack, post, nudged):
            return False
    return True
