"""The fact-keyed event cache: identity semantics, no id recycling."""

from repro.core import Fact, ProbabilityAssignment, standard_assignments
from repro.examples_lib import three_agent_coin_system


def test_fact_hashes_and_compares_by_identity():
    first = Fact(lambda point: True, name="t")
    second = Fact(lambda point: True, name="t")
    assert first == first
    assert first != second
    assert hash(first) != hash(second) or first is second
    assert len({first, second}) == 2


def test_distinct_fact_objects_get_distinct_cache_entries():
    example = three_agent_coin_system()
    post = standard_assignments(example.psys)["post"]
    point = example.psys.system.points[0]
    heads = example.heads
    # an extensionally identical but distinct fact object must not collide
    twin = Fact(heads.holds_at, name="heads-twin")
    first = post.satisfying_points(2, point, heads)
    second = post.satisfying_points(2, point, twin)
    assert first == second
    keys = list(post._event_cache)
    assert {key[0] for key in keys} >= {heads, twin}


def test_cache_returns_same_object_on_repeat_queries():
    example = three_agent_coin_system()
    post = standard_assignments(example.psys)["post"]
    point = example.psys.system.points[0]
    first = post.satisfying_points(0, point, example.heads)
    second = post.satisfying_points(0, point, example.heads)
    assert first is second


def test_garbage_collected_fact_does_not_poison_new_facts():
    """The old id(fact) keying could hand a new fact a dead fact's entry."""
    import gc

    example = three_agent_coin_system()
    post = standard_assignments(example.psys)["post"]
    point = example.psys.system.points[0]
    doomed = Fact(lambda candidate: False, name="doomed")
    assert post.satisfying_points(0, point, doomed) == frozenset()
    del doomed
    gc.collect()
    # allocate many facts to encourage id reuse; each must compute fresh
    for _ in range(64):
        fresh = Fact(lambda candidate: True, name="fresh")
        assert post.satisfying_points(0, point, fresh) == post.sample_space(0, point)
