"""Computation trees: structure, run probabilities, relabeling, rendering."""

from fractions import Fraction

import pytest

from repro.core import GlobalState
from repro.errors import InvalidMeasureError, TechnicalAssumptionError, TreeError
from repro.trees import ComputationTree
from repro.testing import random_tree


def state(name, *locals_):
    return GlobalState(name, tuple(locals_) or ("l",))


@pytest.fixture
def simple_tree():
    """root -> {left: 1/3, right: 2/3}; left -> {leaf: 1}."""
    root, left, right, leaf = (
        state("root"),
        state("left"),
        state("right"),
        state("leaf"),
    )
    return ComputationTree(
        "A",
        root,
        {root: [left, right], left: [leaf]},
        {
            (root, left): Fraction(1, 3),
            (root, right): Fraction(2, 3),
            (left, leaf): Fraction(1),
        },
    )


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        root, a, b = state("r"), state("a"), state("b")
        with pytest.raises(InvalidMeasureError):
            ComputationTree(
                "A",
                root,
                {root: [a, b]},
                {(root, a): Fraction(1, 3), (root, b): Fraction(1, 3)},
            )

    def test_zero_probability_edge_rejected(self):
        root, a, b = state("r"), state("a"), state("b")
        with pytest.raises(InvalidMeasureError):
            ComputationTree(
                "A",
                root,
                {root: [a, b]},
                {(root, a): Fraction(1), (root, b): Fraction(0)},
            )

    def test_missing_edge_label_rejected(self):
        root, a = state("r"), state("a")
        with pytest.raises(TreeError):
            ComputationTree("A", root, {root: [a]}, {})

    def test_repeated_global_state_rejected(self):
        root, a = state("r"), state("a")
        with pytest.raises(TechnicalAssumptionError):
            ComputationTree(
                "A",
                root,
                {root: [a], a: [root]},
                {(root, a): Fraction(1), (a, root): Fraction(1)},
            )

    def test_unreachable_node_rejected(self):
        root, a, orphan, kid = state("r"), state("a"), state("o"), state("k")
        with pytest.raises(TreeError):
            ComputationTree(
                "A",
                root,
                {root: [a], orphan: [kid]},
                {(root, a): Fraction(1), (orphan, kid): Fraction(1)},
            )


class TestStructure:
    def test_children_and_leaves(self, simple_tree):
        root = simple_tree.root
        assert len(simple_tree.children(root)) == 2
        right = simple_tree.children(root)[1]
        assert simple_tree.is_leaf(right)

    def test_edge_probability(self, simple_tree):
        root = simple_tree.root
        left = simple_tree.children(root)[0]
        assert simple_tree.edge_probability(root, left) == Fraction(1, 3)
        with pytest.raises(TreeError):
            simple_tree.edge_probability(left, root)

    def test_nodes_and_depth(self, simple_tree):
        assert len(simple_tree.nodes) == 4
        assert simple_tree.depth() == 2

    def test_path_to(self, simple_tree):
        left = simple_tree.children(simple_tree.root)[0]
        leaf = simple_tree.children(left)[0]
        assert simple_tree.path_to(leaf) == (simple_tree.root, left, leaf)
        with pytest.raises(TreeError):
            simple_tree.path_to(state("stranger"))


class TestRuns:
    def test_run_probabilities_multiply(self, simple_tree):
        probabilities = sorted(
            simple_tree.run_probability(run) for run in simple_tree.runs
        )
        assert probabilities == [Fraction(1, 3), Fraction(2, 3)]

    def test_run_probabilities_sum_to_one(self):
        tree = random_tree(5, depth=3)
        assert sum(tree.run_probability(run) for run in tree.runs) == 1

    def test_foreign_run_rejected(self, simple_tree):
        other = random_tree(1).runs[0]
        with pytest.raises(TreeError):
            simple_tree.run_probability(other)

    def test_runs_through(self, simple_tree):
        time0_points = [point for point in simple_tree.points if point.time == 0]
        assert simple_tree.runs_through(time0_points) == frozenset(simple_tree.runs)

    def test_runs_through_node(self, simple_tree):
        left = simple_tree.children(simple_tree.root)[0]
        assert len(simple_tree.runs_through_node(left)) == 1
        assert len(simple_tree.runs_through_node(simple_tree.root)) == 2

    def test_runs_through_node_matches_naive_scan(self):
        tree = random_tree(6, depth=3)
        for node in tree.nodes:
            assert tree.runs_through_node(node) == tree.runs_through_node_naive(node)

    def test_runs_through_foreign_node_is_empty(self, simple_tree):
        foreign = state("stranger")
        assert simple_tree.runs_through_node(foreign) == frozenset()
        assert simple_tree.runs_through_node_naive(foreign) == frozenset()

    def test_contains_point(self, simple_tree):
        assert simple_tree.contains_point(simple_tree.points[0])
        foreign = random_tree(1).points[0]
        assert not simple_tree.contains_point(foreign)


class TestRunSpace:
    def test_powerset_by_default(self, simple_tree):
        space = simple_tree.run_space()
        assert space.has_powerset_algebra()
        assert space.measure(space.outcomes) == 1

    def test_generated_algebra(self):
        tree = random_tree(7, depth=2)
        half = frozenset(list(tree.runs)[: len(tree.runs) // 2])
        space = tree.run_space(generators=[half])
        assert space.is_measurable(half)
        assert len(space.atoms) <= 2


class TestRelabel:
    def test_relabel_with_mapping(self, simple_tree):
        root = simple_tree.root
        left, right = simple_tree.children(root)
        leaf = simple_tree.children(left)[0]
        relabeled = simple_tree.relabel(
            {
                (root, left): Fraction(1, 2),
                (root, right): Fraction(1, 2),
                (left, leaf): Fraction(1),
            }
        )
        assert relabeled.edge_probability(root, left) == Fraction(1, 2)
        # structure untouched
        assert relabeled.structure() == simple_tree.structure()

    def test_relabel_with_function(self, simple_tree):
        relabeled = simple_tree.relabel(
            lambda parent, child: Fraction(1, len(simple_tree.children(parent)))
        )
        root = simple_tree.root
        assert relabeled.edge_probability(root, simple_tree.children(root)[0]) == Fraction(1, 2)

    def test_relabel_validates(self, simple_tree):
        with pytest.raises(InvalidMeasureError):
            simple_tree.relabel(lambda parent, child: Fraction(1, 3))


class TestRender:
    def test_ascii_contains_probabilities(self, simple_tree):
        art = simple_tree.ascii_render()
        assert "[1/3]" in art and "[2/3]" in art

    def test_ascii_custom_describe(self, simple_tree):
        art = simple_tree.ascii_render(lambda node: str(node.environment))
        assert "root" in art
