"""The ``repro-metrics/1`` snapshot schema: round-trips, deltas, capture."""

import io
import json
import os
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetricsError
from repro.obs import (
    METRICS_SCHEMA,
    MetricsRecorder,
    MetricsSnapshotWriter,
    NULL_RECORDER,
    ObsDeltaCapture,
    get_recorder,
    merge_worker_delta,
    read_snapshot,
    read_snapshots,
    snapshot_delta,
    take_snapshot,
    use_recorder,
    write_snapshot,
)
from repro.probability import kernel_totals, reset_kernel_totals
from repro.probability.bitset import merge_kernel_totals
from repro.reporting import fraction_from_json


def _instrumented_recorder():
    metrics = MetricsRecorder()
    metrics.counter("model.points", 12)
    metrics.counter("model.gfp_fixpoints", 2)
    metrics.counter("model.gfp_iterations", 7)
    metrics.gauge("exact.p", Fraction(1, 3))
    with metrics.span("build"):
        pass
    return metrics


class TestTakeSnapshot:
    def test_shape_and_derived_sections(self):
        snapshot = take_snapshot(
            _instrumented_recorder(),
            label="t",
            kernel={"cache_hits": 3, "cache_misses": 1},
        )
        assert snapshot["type"] == "snapshot"
        assert snapshot["label"] == "t"
        assert snapshot["counters"]["model.points"] == 12
        assert snapshot["gauges"]["exact.p"] == Fraction(1, 3)
        assert snapshot["spans"]["build"]["count"] == 1
        assert snapshot["cache"]["hit_rate"] == Fraction(3, 4)
        assert snapshot["gfp"] == {"fixpoints": 2, "iterations": 7}

    def test_no_recorder_still_carries_kernel_totals(self):
        snapshot = take_snapshot(kernel={"naive_queries": 5})
        assert snapshot["counters"] == {}
        assert snapshot["kernel_totals"]["naive_queries"] == 5
        assert snapshot["cache"]["hit_rate"] is None


class TestRoundTrip:
    def test_header_then_snapshot(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_snapshot(path, metrics=_instrumented_recorder(), label="after")
        records = read_snapshots(path)
        assert records[0]["type"] == "header"
        assert records[0]["schema"] == METRICS_SCHEMA
        assert records[0]["pid"] == os.getpid()
        final = read_snapshot(path)
        assert final["label"] == "after"
        # Exact values survive the trip as "p/q" strings.
        assert fraction_from_json(final["gauges"]["exact.p"]) == Fraction(1, 3)

    def test_writer_streams_many_snapshots(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with MetricsSnapshotWriter(path) as writer:
            for label in ("one", "two", "three"):
                writer.write(take_snapshot(label=label, kernel={}))
        records = read_snapshots(path)
        assert [r["label"] for r in records if r["type"] == "snapshot"] == [
            "one",
            "two",
            "three",
        ]
        assert [r["seq"] for r in records] == list(range(4))
        # read_snapshot returns the *last* snapshot.
        assert read_snapshot(path)["label"] == "three"

    @settings(max_examples=25, deadline=None)
    @given(
        counters=st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz._", min_size=1, max_size=12
            ),
            st.integers(min_value=0, max_value=10**9),
            max_size=6,
        ),
        numerator=st.integers(min_value=0, max_value=99),
        truncate=st.integers(min_value=1, max_value=40),
    )
    def test_truncated_tail_is_dropped_not_fatal(self, counters, numerator, truncate):
        """A kill mid-``write`` loses at most the half-written final line."""
        metrics = MetricsRecorder()
        for name, value in counters.items():
            metrics.counter(name, value)
        metrics.gauge("exact.q", Fraction(numerator, 100))
        buffer = io.StringIO()
        writer = MetricsSnapshotWriter(buffer)
        writer.write(take_snapshot(metrics, label="full", kernel={}))
        writer.write(take_snapshot(metrics, label="doomed", kernel={}))
        text = buffer.getvalue()
        intact = read_snapshots(text.splitlines())
        torn = read_snapshots(text[:-truncate].splitlines())
        # Whatever survives is a prefix of the intact stream, and the
        # surviving records decode identically -- including the exact
        # Fraction gauge.
        assert torn == intact[: len(torn)]
        assert len(torn) >= 1
        for record in torn:
            if record["type"] == "snapshot":
                assert record["counters"] == dict(counters)
                assert fraction_from_json(record["gauges"]["exact.q"]) == Fraction(
                    numerator, 100
                )


class TestReadErrors:
    def test_missing_header_rejected(self):
        line = json.dumps({"type": "snapshot", "label": "", "counters": {}})
        with pytest.raises(MetricsError):
            read_snapshots([line])

    def test_wrong_schema_rejected(self):
        line = json.dumps({"type": "header", "schema": "repro-trace/1"})
        with pytest.raises(MetricsError):
            read_snapshots([line])

    def test_garbage_before_the_end_is_fatal(self):
        header = json.dumps({"type": "header", "schema": METRICS_SCHEMA})
        with pytest.raises(MetricsError):
            read_snapshots([header, "{torn", json.dumps({"type": "snapshot"})])

    def test_empty_file_without_header_rejected(self):
        with pytest.raises(MetricsError):
            read_snapshot([])

    def test_no_snapshot_records_rejected(self):
        header = json.dumps({"type": "header", "schema": METRICS_SCHEMA})
        with pytest.raises(MetricsError):
            read_snapshot([header])


class TestSnapshotDelta:
    def test_counter_and_kernel_differences_are_exact(self):
        before = take_snapshot(kernel={"cache_hits": 10, "cache_misses": 4})
        metrics = MetricsRecorder()
        metrics.counter("model.points", 3)
        after = take_snapshot(metrics, kernel={"cache_hits": 25, "cache_misses": 4})
        delta = snapshot_delta(before, after)
        assert delta["counters"] == {"model.points": 3}
        assert delta["kernel_totals"] == {"cache_hits": 15}

    def test_zero_differences_are_omitted(self):
        snapshot = take_snapshot(kernel={"cache_hits": 7})
        delta = snapshot_delta(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["kernel_totals"] == {}


class TestObsDeltaCapture:
    def test_captures_only_the_block(self):
        outer = MetricsRecorder()
        outer.counter("outer.before", 1)
        with use_recorder(outer):
            with ObsDeltaCapture() as capture:
                get_recorder().counter("inner.work", 2)
            # The outer recorder is restored and untouched by the block.
            assert get_recorder() is outer
        assert capture.delta["counters"] == {"inner.work": 2}
        assert capture.worker == os.getpid()
        assert "outer.before" not in capture.delta["counters"]

    def test_partial_delta_survives_an_exception(self):
        with pytest.raises(RuntimeError):
            with ObsDeltaCapture() as capture:
                get_recorder().counter("half.done", 1)
                raise RuntimeError("task failed")
        assert capture.delta["counters"] == {"half.done": 1}

    def test_restores_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        with ObsDeltaCapture():
            assert get_recorder() is not NULL_RECORDER
        assert get_recorder() is NULL_RECORDER


class TestMergeWorkerDelta:
    def test_plain_and_attributed_counters(self):
        parent = MetricsRecorder()
        delta = {
            "counters": {"model.points": 4},
            "gauges": {"exact.p": "1/3"},
            "spans": {},
            "kernel_totals": {},
        }
        merge_worker_delta(parent, delta, worker=4242, index=1, attempt=0)
        assert parent.counters["model.points"] == 4
        assert parent.counters["worker.4242.model.points"] == 4
        assert parent.gauges["worker.4242.exact.p"] == "1/3"
        assert parent.counters["event:worker_obs_delta"] == 1

    def test_kernel_totals_fold_into_process_counters(self):
        reset_kernel_totals()
        try:
            parent = MetricsRecorder()
            delta = {
                "counters": {},
                "gauges": {},
                "spans": {},
                "kernel_totals": {"cache_hits": 6, "cache_misses": 2},
            }
            merge_worker_delta(parent, delta, worker=7)
            merge_worker_delta(parent, delta, worker=8)
            totals = kernel_totals()
            assert totals["cache_hits"] == 12
            assert totals["cache_misses"] == 4
            assert parent.counters["worker.7.kernel.cache_hits"] == 6
            assert parent.counters["worker.8.kernel.cache_hits"] == 6
        finally:
            reset_kernel_totals()

    def test_merge_kernel_totals_ignores_unknown_keys(self):
        reset_kernel_totals()
        try:
            merge_kernel_totals({"cache_hits": 3, "from_the_future": 99})
            assert kernel_totals()["cache_hits"] == 3
            assert "from_the_future" not in kernel_totals()
        finally:
            reset_kernel_totals()
