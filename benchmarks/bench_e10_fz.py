"""E10 -- Section 7's closing example: P_pts versus Fischer-Zuck P_state.

Paper claims: on the 0.99-biased coin with p2's odd information structure,
P_pts |= K_2^[0.99, 0.99] heads while P_state |= K_2^[0, 0.99] heads -- the
state-cut {T} only ever tests on the tails run.
"""

from fractions import Fraction

from repro.examples_lib import biased_async_system, pts_versus_state_intervals
from repro.reporting import print_table


def run_experiment():
    example = biased_async_system()
    return pts_versus_state_intervals(example)


def test_e10_pts_versus_state(benchmark):
    pts, state = benchmark(run_experiment)
    print_table(
        "E10  0.99 coin: sharpest K_2^[a,b](heads) at time 0",
        ["adversary class", "paper", "measured"],
        [
            ("pts (one point per run)", "[99/100, 99/100]", pts),
            ("state (Fischer-Zuck)", "[0, 99/100]", state),
        ],
    )
    assert pts == (Fraction(99, 100), Fraction(99, 100))
    assert state == (Fraction(0), Fraction(99, 100))
