"""End-to-end verification of every headline claim of the paper.

One test per claim, each exercising the full stack: simulator/builder ->
trees -> assignments -> logic/betting.  These are the same computations the
benchmark harness prints as tables (see EXPERIMENTS.md).
"""

from fractions import Fraction

import pytest

from repro.attack import (
    b_conditional_confidence,
    build_ca1,
    build_ca2,
    build_never_attack,
    proposition11_table,
    run_level_probability,
)
from repro.betting import (
    build_embedded_system,
    constant_strategy,
    theorem8_witness,
    theorem9_witness,
    verify_proposition6,
    verify_theorem7,
    verify_theorem11,
    verify_theorem9_part_a,
)
from repro.core import (
    PostAssignment,
    ProbabilityAssignment,
    opponent_assignment,
    standard_assignments,
    verify_proposition10,
)
from repro.examples_lib import (
    ask_then_ask,
    biased_async_system,
    input_coin_system,
    posterior_after,
    pts_versus_state_intervals,
    repeated_coin_system,
    reveal_random,
    three_agent_coin_system,
)
from repro.logic import Model, parse


class TestIntroductionCoin:
    """The time-0/time-1 betting story of the introduction."""

    def test_full_story(self):
        example = three_agent_coin_system()
        psys = example.psys
        named = standard_assignments(psys)
        model = Model(named["post"], {"heads": example.heads})
        c = psys.system.points_at_time(1)[0]
        # post: p1 knows the probability is exactly 1/2
        assert model.holds(parse("K0^[1/2,1/2] heads"), c)
        # fut: p1 knows it is 0 or 1 but not which
        fut = model.with_assignment(named["fut"])
        assert fut.holds(parse("K0 ((Pr0(heads) >= 1) | (Pr0(heads) <= 0))"), c)
        assert not fut.holds(parse("K0 (Pr0(heads) >= 1)"), c)
        assert not fut.holds(parse("K0^1/2 heads"), c)
        # betting: accept from p2, refuse from p3
        assert opponent_assignment(psys, 1).knows_probability_at_least(
            0, c, example.heads, Fraction(1, 2)
        )
        assert not opponent_assignment(psys, 2).knows_probability_at_least(
            0, c, example.heads, Fraction(1, 2)
        )


class TestSection3:
    def test_vardi_example(self):
        example = input_coin_system()
        post = standard_assignments(example.psys)["post"]
        per_tree = {
            example.psys.adversary_of(point): post.probability(1, point, example.heads)
            for point in example.psys.system.points_at_time(1)
        }
        assert per_tree == {"bit=0": Fraction(1, 2), "bit=1": Fraction(2, 3)}


class TestSection6Theorems:
    @pytest.fixture(scope="class")
    def coin(self):
        return three_agent_coin_system()

    def test_theorem7_both_opponents(self, coin):
        for opponent in (1, 2):
            assert verify_theorem7(coin.psys, 0, opponent, coin.heads).holds

    def test_proposition6(self, coin):
        assert verify_proposition6(coin.psys, 0, 2, coin.heads).holds

    def test_theorem8_witness_exists(self, coin):
        witness = theorem8_witness(
            coin.psys, lambda psys: PostAssignment(psys), agent=0, opponent=2
        )
        assert witness is not None and witness.expected_loss < 0

    def test_theorem9_chain(self, coin):
        named = standard_assignments(coin.psys)
        report = verify_theorem9_part_a(
            named["fut"], named["post"], [coin.heads, ~coin.heads]
        )
        assert report.holds
        assert theorem9_witness(named["fut"], named["post"]) is not None


class TestSection7:
    def test_ten_toss_bounds(self):
        example = repeated_coin_system(10)
        pa = ProbabilityAssignment(example.post_toss_assignment())
        anchor = next(iter(example.post_toss_points))
        assert pa.probability_interval(0, anchor, example.most_recent_heads) == (
            Fraction(1, 1024),
            Fraction(1023, 1024),
        )

    def test_ten_toss_clocked_opponent(self):
        example = repeated_coin_system(10)
        against_p2 = opponent_assignment(example.psys, 1)
        anchor = next(iter(example.post_toss_points))
        assert against_p2.probability(
            0, anchor, example.most_recent_heads
        ) == Fraction(1, 2)

    def test_proposition10(self):
        example = biased_async_system()
        post = ProbabilityAssignment(PostAssignment(example.psys))
        assert verify_proposition10(example.psys, post, 1, example.heads)

    def test_fischer_zuck_comparison(self):
        pts, state = pts_versus_state_intervals(biased_async_system())
        assert pts == (Fraction(99, 100), Fraction(99, 100))
        assert state == (Fraction(0), Fraction(99, 100))


class TestSection8:
    def test_proposition11_matrix(self):
        rows = proposition11_table(
            [build_ca1(), build_ca2(), build_never_attack()], Fraction(99, 100)
        )
        matrix = {row.protocol: (row.prior, row.post, row.fut) for row in rows}
        assert matrix == {
            "CA1": (True, False, False),
            "CA2": (True, True, False),
            "CA0": (True, True, True),
        }

    def test_paper_numbers(self):
        ca1 = build_ca1()
        assert run_level_probability(ca1) == Fraction(2047, 2048)
        assert b_conditional_confidence(build_ca2()) == Fraction(1024, 1025)


class TestAppendixB:
    def test_two_aces(self):
        protocol1 = ask_then_ask()
        protocol2 = reveal_random()
        assert posterior_after(protocol1, ("yes-ace",), protocol1.both_aces) == Fraction(1, 5)
        assert posterior_after(protocol1, ("yes-spades",), protocol1.both_aces) == Fraction(1, 3)
        assert posterior_after(protocol2, ("say-spades",), protocol2.both_aces) == Fraction(1, 5)

    def test_theorem11(self):
        coin = three_agent_coin_system()
        embedded = build_embedded_system(coin.psys, 0, 2, [constant_strategy(2, 2)])
        assert verify_theorem11(embedded, coin.heads).holds
