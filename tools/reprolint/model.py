"""Data model shared by the reprolint engine and its rules.

A rule sees one :class:`Module` at a time: the parsed AST, the raw source,
and enough package metadata to decide which invariants apply (layering
needs the subpackage, traceability needs the module path, ...).
Suppressions are parsed once per file by the engine and honoured
centrally, so rules never need to know about them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

#: Comment syntax: ``# reprolint: disable=RL001`` or ``=RL001,RL004``.
#: On a standalone comment line the suppression applies to the whole file;
#: as a trailing comment it applies to violations reported on that line.
SUPPRESSION_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One diagnostic, addressable as ``path:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Per-file and per-line rule suppressions parsed from comments."""

    file_wide: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, violation: Violation) -> bool:
        if violation.rule_id in self.file_wide:
            return True
        return violation.rule_id in self.by_line.get(violation.line, set())


def parse_suppressions(source_lines: Sequence[str]) -> Suppressions:
    suppressions = Suppressions()
    for lineno, line in enumerate(source_lines, start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        before_comment = line[: line.index("#")].strip()
        if before_comment:
            suppressions.by_line.setdefault(lineno, set()).update(rules)
        else:
            suppressions.file_wide.update(rules)
    return suppressions


@dataclass
class Module:
    """A parsed source file plus the package metadata rules care about."""

    #: Path exactly as it should appear in diagnostics.
    path: str
    #: Dotted module name relative to the scanned package root, e.g.
    #: ``("core", "cuts")`` for ``src/repro/core/cuts.py`` and
    #: ``("core", "__init__")`` for the package initialiser.
    rel_parts: Tuple[str, ...]
    tree: ast.Module
    source_lines: List[str]
    suppressions: Suppressions
    #: Name of the scanned package root (``"repro"``), used to recognise
    #: absolute imports of project modules.
    root_package: str = "repro"

    @property
    def subpackage(self) -> str:
        """First component under the package root (``""`` for top level)."""
        return self.rel_parts[0] if len(self.rel_parts) > 1 else ""

    @property
    def is_package_init(self) -> bool:
        return self.rel_parts[-1] == "__init__"

    def violation(
        self, node: ast.AST, rule_id: str, message: str
    ) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )


__all__ = [
    "Module",
    "SUPPRESSION_RE",
    "Suppressions",
    "Violation",
    "parse_suppressions",
]
