#!/usr/bin/env python3
"""Probabilistic coordinated attack (Sections 4 and 8, Proposition 11).

Two generals coordinate through messengers who are each captured with
probability 1/2.  Protocol CA1 has B report back; CA2 keeps B silent.
Both coordinate in a fraction 1 - 2**-11 of the runs -- but only CA2 keeps
every agent confident at every point, and no protocol that ever attacks
survives an opponent who knows the whole past.

Run:  python examples/coordinated_attack.py
"""

from fractions import Fraction

from repro.attack import (
    GENERAL_A,
    b_conditional_confidence,
    build_ca1,
    build_ca2,
    build_never_attack,
    doomed_but_attacking_points,
    prior_inconsistency_witness,
    proposition11_table,
    run_level_probability,
)
from repro.probability import format_fraction

EPSILON = Fraction(99, 100)


def main() -> None:
    print("Building CA1, CA2, CA0 with 10 messengers, loss probability 1/2 ...")
    attacks = [build_ca1(), build_ca2(), build_never_attack()]
    ca1, ca2, _ = attacks

    print()
    print(f"Run-level coordination probability: {run_level_probability(ca1)}"
          f" = {float(run_level_probability(ca1)):.6f}")
    print(f"B's confidence after total silence (CA2): "
          f"{b_conditional_confidence(ca2)}"
          f" = {float(b_conditional_confidence(ca2)):.6f}")
    print()

    print("The Section 4 pathology in CA1:")
    doomed = doomed_but_attacking_points(ca1)
    point = doomed[0]
    print(f"  {len(doomed)} point(s) where A attacks while *certain* the")
    print(f"  attack is uncoordinated; A's local state there: "
          f"{point.local_state(GENERAL_A)}")
    witness = prior_inconsistency_witness(ca1)
    print(f"  at that point P_prior still 'knows' coordination with")
    print(f"  probability >= 0.99: {witness is not None}  (inconsistent assignments bite)")
    print()

    print(f"Proposition 11: does C^{EPSILON} phi_CA hold at all points?")
    print(f"{'protocol':<10}{'run-level':>12}{'P_prior':>9}{'P_post':>8}{'P_fut':>7}"
          f"{'doomed pts':>12}")
    for row in proposition11_table(attacks, EPSILON):
        print(
            f"{row.protocol:<10}{format_fraction(row.run_level):>12}"
            f"{str(row.prior):>9}{str(row.post):>8}{str(row.fut):>7}"
            f"{row.certain_failure_count:>12}"
        )
    print()
    print("Reading: moving the opponent down the lattice (prior -> post -> fut)")
    print("strengthens the guarantee; P_fut-level coordination is equivalent to")
    print("deterministic coordinated attack, achieved only by never attacking.")


if __name__ == "__main__":
    main()
