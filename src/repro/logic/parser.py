"""A parser for ``L(Phi)`` formulas.

Grammar (agents are 0-based integers; ``K0`` is the paper's ``K_{p_1}``)::

    formula :=  iff
    iff     :=  impl ('<->' impl)*
    impl    :=  or ('->' impl)?                 -- right associative
    or      :=  and ('|' and)*
    and     :=  until ('&' until)*
    until   :=  unary ('U' until)?              -- right associative
    unary   :=  '!' unary
             |  'X' unary | 'F' unary | 'G' unary
             |  'K<i>' unary                    -- K0, K1, ...
             |  'K<i>^' frac unary              -- K1^1/2 phi
             |  'K<i>^[' frac ',' frac ']' unary
             |  'E{i,j,...}' ('^' frac)? unary
             |  'C{i,j,...}' ('^' frac)? unary
             |  'Pr<i>' '(' formula ')' ('>='|'<=') frac
             |  'true' | 'false' | IDENT | '(' formula ')'
    frac    :=  NUMBER ('/' NUMBER)?            -- 1/2, 0.99, 1

Examples::

    parse("K0 (Pr0(heads) >= 1/2)")
    parse("C{0,1}^0.99 attack_coordinated")
    parse("G (a_attacks <-> b_attacks)")
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import List, NamedTuple, Optional, Tuple

from ..errors import ParseError
from ..probability.fractionutil import as_fraction
from .syntax import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    Formula,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    Until,
    eventually,
    henceforth,
    knows_prob_at_least,
    knows_prob_interval,
)


class _Token(NamedTuple):
    kind: str
    text: str


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<SPACE>\s+)
  | (?P<KNOWS>K\d+)
  | (?P<PR>Pr\d+)
  | (?P<NUMBER>\d+(\.\d+)?)
  | (?P<IDENT>[a-z_][A-Za-z0-9_]*)
  | (?P<NEXT>X\b) | (?P<FUTURE>F\b) | (?P<GLOBALLY>G\b) | (?P<UNTIL>U\b)
  | (?P<EVERYONE>E\{) | (?P<COMMON>C\{)
  | (?P<IFF><->) | (?P<IMPLIES>->) | (?P<GE>>=) | (?P<LE><=)
  | (?P<LPAREN>\() | (?P<RPAREN>\)) | (?P<LBRACKET>\[) | (?P<RBRACKET>\])
  | (?P<RBRACE>\}) | (?P<CARET>\^) | (?P<COMMA>,) | (?P<SLASH>/)
  | (?P<NOT>!) | (?P<AND>&) | (?P<OR>\|)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup or ""
        if kind != "SPACE":
            tokens.append(_Token(kind, match.group()))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of formula")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}")
        return token

    def _match(self, kind: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._iff()
        if self._peek() is not None:
            raise ParseError(f"trailing input starting at {self._peek().text!r}")
        return formula

    def _iff(self) -> Formula:
        left = self._implies()
        while self._match("IFF"):
            left = Iff(left, self._implies())
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self._match("IMPLIES"):
            return Implies(left, self._implies())
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self._match("OR"):
            left = Or(left, self._and())
        return left

    def _and(self) -> Formula:
        left = self._until()
        while self._match("AND"):
            left = And(left, self._until())
        return left

    def _until(self) -> Formula:
        left = self._unary()
        if self._match("UNTIL"):
            return Until(left, self._until())
        return left

    def _fraction(self) -> Fraction:
        numerator = self._expect("NUMBER").text
        if self._match("SLASH"):
            denominator = self._expect("NUMBER").text
            return Fraction(int(numerator), int(denominator))
        return as_fraction(numerator)

    def _group(self) -> Tuple[int, ...]:
        agents = [int(self._expect("NUMBER").text)]
        while self._match("COMMA"):
            agents.append(int(self._expect("NUMBER").text))
        self._expect("RBRACE")
        return tuple(agents)

    def _unary(self) -> Formula:
        token = self._advance()
        if token.kind == "NOT":
            return Not(self._unary())
        if token.kind == "NEXT":
            return Next(self._unary())
        if token.kind == "FUTURE":
            return eventually(self._unary())
        if token.kind == "GLOBALLY":
            return henceforth(self._unary())
        if token.kind == "KNOWS":
            agent = int(token.text[1:])
            if self._match("CARET"):
                if self._match("LBRACKET"):
                    low = self._fraction()
                    self._expect("COMMA")
                    high = self._fraction()
                    self._expect("RBRACKET")
                    return knows_prob_interval(agent, low, high, self._unary())
                alpha = self._fraction()
                return knows_prob_at_least(agent, alpha, self._unary())
            return Knows(agent, self._unary())
        if token.kind in ("EVERYONE", "COMMON"):
            group = self._group()
            alpha = None
            if self._match("CARET"):
                alpha = self._fraction()
            sub = self._unary()
            if token.kind == "EVERYONE":
                if alpha is None:
                    return EveryoneKnows(group, sub)
                return EveryoneKnowsProb(group, alpha, sub)
            if alpha is None:
                return CommonKnows(group, sub)
            return CommonKnowsProb(group, alpha, sub)
        if token.kind == "PR":
            agent = int(token.text[2:])
            self._expect("LPAREN")
            sub = self._iff()
            self._expect("RPAREN")
            comparison = self._advance()
            bound = self._fraction()
            if comparison.kind == "GE":
                return PrAtLeast(agent, sub, bound)
            if comparison.kind == "LE":
                return PrAtMost(agent, sub, bound)
            raise ParseError(f"expected >= or <= after Pr, found {comparison.text!r}")
        if token.kind == "IDENT":
            if token.text == "true":
                return TRUE
            if token.text == "false":
                return FALSE
            return Prop(token.text)
        if token.kind == "LPAREN":
            formula = self._iff()
            self._expect("RPAREN")
            return formula
        raise ParseError(f"unexpected token {token.text!r}")


def parse(text: str) -> Formula:
    """Parse a formula of ``L(Phi)`` from its concrete syntax."""
    return _Parser(_tokenize(text)).parse()
