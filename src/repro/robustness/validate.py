"""Runtime validators for the paper's structural invariants.

The constructions of the reproduction *rely* on structural facts the
paper states once and then assumes everywhere: atom probabilities sum to
1 and the atoms partition the sample space (Section 3), every node of a
computation tree appears exactly once -- the technical assumption -- and
each node's outgoing arc probabilities are positive and sum to 1
(Sections 3 and 4), and sample-space assignments satisfy REQ1 and REQ2
(Section 5).  Construction-time checks enforce these on the happy path,
but fast-path constructors (``validate=False`` trees, weight-form
spaces) bypass them by design.

This module re-checks the invariants *after the fact*, against any
object however it was built, and reports **every** violation found --
never just the first -- in one :class:`ValidationReport`.  The sweep
entry points of :mod:`repro.robustness.checkpoint` expose the checks as
an opt-in ``strict=True`` path, so a production sweep can prove its
systems well-formed without paying for validation when it trusts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.assignments import requirement_defects
from ..errors import ValidationError
from ..probability.algebra import partition_defects
from ..probability.fractionutil import ONE, ZERO
from ..probability.space import FiniteProbabilitySpace
from ..trees.probabilistic_system import ProbabilisticSystem
from ..trees.tree import ComputationTree

__all__ = [
    "InvariantViolation",
    "ValidationReport",
    "validate_assignment",
    "validate_space",
    "validate_system",
    "validate_tree",
]

#: Cap on the number of per-atom agreement events sampled by
#: :func:`validate_space`; keeps validation linear on large spaces.
_MAX_ATOM_EVENTS = 32


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: a stable code, a message, and its subject."""

    code: str
    message: str
    subject: str = ""

    def render(self) -> str:
        prefix = f"[{self.code}]"
        if self.subject:
            prefix += f" {self.subject}:"
        return f"{prefix} {self.message}"


@dataclass
class ValidationReport:
    """The aggregated outcome of one validation pass.

    Collects *all* violations (a corrupted space with three broken atoms
    reports three entries, not one) so a failing sweep run tells the
    whole story at once.  ``raise_if_failed`` converts a non-empty report
    into a :class:`~repro.errors.ValidationError` carrying the violation
    records.
    """

    subject: str
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str) -> None:
        self.violations.append(
            InvariantViolation(code=code, message=message, subject=self.subject)
        )

    def extend(self, other: "ValidationReport") -> None:
        self.violations.extend(other.violations)

    def render(self) -> str:
        if self.ok:
            return f"{self.subject}: all invariants hold"
        lines = [f"{self.subject}: {len(self.violations)} violation(s)"]
        lines.extend("  " + violation.render() for violation in self.violations)
        return "\n".join(lines)

    def raise_if_failed(self) -> "ValidationReport":
        if not self.ok:
            raise ValidationError(self.render(), violations=tuple(self.violations))
        return self


def _agreement_events(space: FiniteProbabilitySpace) -> List[Tuple[str, frozenset]]:
    """A deterministic event sample for the backend agreement check."""
    events: List[Tuple[str, frozenset]] = [
        ("empty event", frozenset()),
        ("full sample space", space.outcomes),
    ]
    atoms = space.atoms[:_MAX_ATOM_EVENTS]
    for position, atom in enumerate(atoms):
        events.append((f"atom #{position}", atom))
        events.append((f"complement of atom #{position}", space.outcomes - atom))
    alternating = frozenset().union(*space.atoms[::2]) if space.atoms else frozenset()
    events.append(("union of even-indexed atoms", alternating))
    for position, atom in enumerate(atoms):
        if len(atom) > 1:
            # A proper subset of a non-singleton atom: exercises the
            # non-measurable (inner < outer) path of both kernels.
            events.append((f"split of atom #{position}", frozenset(list(atom)[:1])))
            break
    return events


def validate_space(space: FiniteProbabilitySpace) -> ValidationReport:
    """Check a probability space against the Section 3 measure axioms.

    Validates that the atoms partition the sample space, that the atom
    probabilities are nonnegative and sum to exactly 1 (in both the
    integer-weight and Fraction views, which must agree), and -- on the
    bitmask backend -- that the mask kernels and the retained naive
    kernels return identical exact answers on a deterministic sample of
    events.  All violations are aggregated into one report.
    """
    report = ValidationReport(subject=f"space({len(space)} outcomes)")
    for defect in partition_defects(space.outcomes, space.atoms):
        report.add("partition", defect)
    weights = space.atom_weights
    denominator = space.weight_denominator
    if denominator <= 0:
        report.add("measure-sum", f"weight denominator is {denominator}, not positive")
    for position, weight in enumerate(weights):
        if weight < 0:
            report.add(
                "measure-negative", f"atom #{position} has negative weight {weight}"
            )
    if denominator > 0 and sum(weights) != denominator:
        report.add(
            "measure-sum",
            f"atom weights sum to {sum(weights)}/{denominator}, not 1",
        )
    fraction_total = ZERO
    for position, atom in enumerate(space.atoms):
        probability = space.atom_probability(atom)
        if probability < ZERO:
            report.add(
                "measure-negative",
                f"atom #{position} has negative probability {probability}",
            )
        fraction_total += probability
    if space.atoms and fraction_total != ONE:
        report.add(
            "measure-sum", f"atom probabilities sum to {fraction_total}, not 1"
        )
    if space.backend == "bitmask" and report.ok:
        # Kernel agreement is only meaningful on a well-formed measure;
        # on a corrupted one both kernels are off by the same data.
        for label, event in _agreement_events(space):
            mask_answer = (
                space.is_measurable(event),
                space.inner_measure(event),
                space.outer_measure(event),
            )
            naive_answer = (
                space.is_measurable_naive(event),
                space.inner_measure_naive(event),
                space.outer_measure_naive(event),
            )
            if mask_answer != naive_answer:
                report.add(
                    "backend-divergence",
                    f"bitmask and naive kernels disagree on {label}: "
                    f"{mask_answer} != {naive_answer}",
                )
    return report


def validate_tree(tree: ComputationTree) -> ValidationReport:
    """Check a computation tree against the Section 3 and 4 invariants.

    Validates the technical assumption (every global state reached
    exactly once from the root -- Section 3's requirement that the
    environment encode the full history), that each node's outgoing arc
    probabilities are positive and sum to exactly 1, that every node of
    the structure is reachable, and that the induced run measure sums to
    1.  All violations are aggregated into one report.
    """
    report = ValidationReport(subject=f"tree(adversary={tree.adversary!r})")
    structure = tree.structure()
    for parent, kids in structure.items():
        total = ZERO
        for child in kids:
            try:
                probability = tree.edge_probability(parent, child)
            except Exception as error:
                report.add("arc-missing", f"edge {parent!r} -> {child!r}: {error}")
                continue
            if probability <= ZERO:
                report.add(
                    "arc-positive",
                    f"edge {parent!r} -> {child!r} labeled {probability}, not positive",
                )
            total += probability
        if kids and total != ONE:
            report.add(
                "arc-sum",
                f"outgoing probabilities at {parent!r} sum to {total}, not 1",
            )
    occurrences = tree.node_occurrences()
    for node, count in occurrences.items():
        if count > 1:
            report.add(
                "technical-assumption",
                f"global state {node!r} is reached {count} times; the "
                "environment must encode the full history (Section 3)",
            )
    for parent in structure:
        if parent not in occurrences:
            report.add(
                "reachability", f"node {parent!r} is not reachable from the root"
            )
    run_total = ZERO
    for run in tree.runs:
        run_total += tree.run_probability(run)
    if run_total != ONE:
        report.add("run-measure", f"run probabilities sum to {run_total}, not 1")
    return report


def validate_assignment(assignment) -> ValidationReport:
    """Check REQ1/REQ2 (Section 5) at every (agent, point) of an assignment.

    Accepts a :class:`~repro.core.assignments.SampleSpaceAssignment` or a
    :class:`~repro.core.assignments.ProbabilityAssignment` (whose
    underlying ``ssa`` is validated).  Every sample space must contain
    only points of the point's own computation tree (REQ1) and determine
    a measurable, positive-measure set of runs (REQ2); defects from
    *all* pairs are aggregated, not just the first failing one.
    """
    ssa = getattr(assignment, "ssa", assignment)
    psys = ssa.psys
    report = ValidationReport(subject=f"assignment({ssa.name})")
    system = psys.system
    for agent in system.agents:
        for point in system.points:
            sample = ssa.sample_space(agent, point)
            for defect in requirement_defects(psys, point, sample):
                report.add(
                    "requirements", f"agent {agent} at {point!r}: {defect}"
                )
    return report


def validate_system(psys: ProbabilisticSystem) -> ValidationReport:
    """Check a probabilistic system's trees and run spaces (Sections 3-4).

    Aggregates :func:`validate_tree` over every tree, checks the
    cross-tree half of the technical assumption (a global state belongs
    to at most one computation tree -- Section 4), and runs
    :func:`validate_space` on each adversary's run space.  All
    violations land in one report.
    """
    report = ValidationReport(subject="system")
    ownership: dict = {}
    for tree in psys.trees:
        report.extend(validate_tree(tree))
        for node in tree.nodes:
            ownership.setdefault(node, []).append(tree.adversary)
    for node, owners in ownership.items():
        if len(owners) > 1:
            report.add(
                "technical-assumption",
                f"global state {node!r} appears in {len(owners)} trees "
                f"({owners!r}); it may belong to at most one (Section 4)",
            )
    for adversary in psys.adversaries:
        report.extend(validate_space(psys.run_space(adversary)))
    return report
