"""Executable verification of the paper's core betting-game results.

Each verifier checks the statement *exhaustively* on a finite system:
Theorem 7 (safety == probabilistic knowledge under ``P^j``) against
brute-force strategy enumeration; Proposition 6 (``Tree``-safety ==
``Tree^j``-safety in synchronous systems); Theorem 8 (``S^j`` is the
maximum assignment determining safe bets -- part (b) by actually building
the adversarial relabeling from the proof); Theorem 9 (interval
monotonicity along the lattice, with strictness witnesses); and footnote 13
(threshold rules are without loss of generality).

Verifiers return a :class:`VerificationReport`; ``report.holds`` is the
verdict and ``report.details`` carries human-readable evidence for the
benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.assignments import ProbabilityAssignment, SampleSpaceAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..core.standard import OpponentAssignment, opponent_assignment
from ..errors import BettingError
from ..probability.fractionutil import ONE, ZERO, FractionLike, as_fraction, format_fraction
from ..trees.probabilistic_system import ProbabilisticSystem
from ..trees.tree import ComputationTree
from .game import BettingRule
from .safety import (
    breaks_even_with,
    expected_winnings,
    is_safe,
    is_safe_analytic,
    refuting_strategy,
)
from .strategies import NO_BET, Strategy, enumerate_strategies, opponent_states


@dataclass
class VerificationReport:
    """The outcome of one theorem verification."""

    name: str
    holds: bool
    checked: int
    details: List[str] = field(default_factory=list)

    def add(self, line: str) -> None:
        """Append a line of evidence."""
        self.details.append(line)

    def __bool__(self) -> bool:
        return self.holds


def relevant_alphas(
    assignment: ProbabilityAssignment,
    agent: int,
    fact: Fact,
    points: Iterable[Point],
    extra: Sequence[FractionLike] = (),
) -> Tuple[Fraction, ...]:
    """Candidate thresholds for quantifying over ``alpha`` in Theorem 7.

    Theorem 7 quantifies safety of ``Bet(phi, alpha)`` over all rational
    ``alpha``; safety is monotone in ``alpha``, so it suffices to test the
    boundary values -- the distinct inner probabilities of the fact --
    plus midpoints between consecutive values and the endpoints.
    """
    values = {
        assignment.inner_probability(agent, point, fact) for point in points
    }
    values |= {as_fraction(value) for value in extra}
    ordered = sorted(value for value in values if ZERO <= value <= ONE)
    candidates: List[Fraction] = []
    for index, value in enumerate(ordered):
        if value > ZERO:
            candidates.append(value)
        if index + 1 < len(ordered):
            midpoint = (value + ordered[index + 1]) / 2
            if ZERO < midpoint <= ONE:
                candidates.append(midpoint)
    if ONE not in candidates:
        candidates.append(ONE)
    if not candidates:
        candidates.append(ONE)
    return tuple(sorted(set(candidates)))


def _strategy_family(
    assignment: ProbabilityAssignment,
    agent: int,
    opponent: int,
    point: Point,
    alpha: Fraction,
    limit: int = 200_000,
) -> List[Strategy]:
    """An exhaustive strategy family sufficient to witness unsafety.

    Strategies range over the opponent's local states within the union of
    the agent's sample spaces across ``K_i(c)``, with payoff menu
    ``{no bet, 1, 1/alpha, 2/alpha}`` -- the harmless payoff, the boundary
    payoff, and a strictly profitable one.
    """
    system = assignment.psys.system
    relevant_points: set = set()
    for candidate in system.knowledge_set(agent, point):
        relevant_points |= assignment.sample_space(agent, candidate)
    locals_ = opponent_states(system, opponent, relevant_points)
    menu = [ONE, ONE / alpha, 2 / alpha]
    return list(enumerate_strategies(opponent, locals_, menu, True, limit))


def verify_theorem7(
    psys: ProbabilisticSystem,
    agent: int,
    opponent: int,
    fact: Fact,
    points: Optional[Sequence[Point]] = None,
    alphas: Optional[Sequence[FractionLike]] = None,
    strategy_limit: int = 200_000,
) -> VerificationReport:
    """Theorem 7: ``Bet(phi, alpha)`` is ``P^j``-safe at ``c`` iff
    ``(P^j, c) |= K_i^alpha phi``.

    The left side is evaluated by brute force -- exhaustive enumeration of
    opponent strategies over a payoff menu that provably contains a
    refutation whenever one exists -- and the right side by the inner-measure
    semantics of probabilistic knowledge.  Every (point, alpha) pair must
    agree.
    """
    opponent_pa = opponent_assignment(psys, opponent)
    system = psys.system
    test_points = list(points) if points is not None else list(system.points)
    report = VerificationReport("Theorem 7", True, 0)
    for point in test_points:
        candidate_points = system.knowledge_set(agent, point)
        grid = (
            tuple(as_fraction(alpha) for alpha in alphas)
            if alphas is not None
            else relevant_alphas(opponent_pa, agent, fact, candidate_points)
        )
        for alpha in grid:
            if not ZERO < alpha <= ONE:
                continue
            rule = BettingRule(fact, alpha)
            strategies = _strategy_family(
                opponent_pa, agent, opponent, point, alpha, strategy_limit
            )
            safe = is_safe(opponent_pa, agent, point, rule, strategies)
            knows = opponent_pa.knows_probability_at_least(agent, point, fact, alpha)
            report.checked += 1
            if safe != knows:
                report.holds = False
                report.add(
                    f"MISMATCH at time-{point.time} point, alpha={format_fraction(alpha)}: "
                    f"safe={safe} but K^alpha={knows}"
                )
                continue
            witness = refuting_strategy(opponent_pa, agent, opponent, point, fact, alpha)
            if knows and witness is not None:
                report.holds = False
                report.add("refuting strategy produced despite knowledge holding")
            if not knows:
                if witness is None:
                    report.holds = False
                    report.add("no refuting strategy despite knowledge failing")
                else:
                    bad = min(
                        expected_winnings(
                            opponent_pa.space(agent, candidate), rule.winnings(witness)
                        )
                        for candidate in candidate_points
                    )
                    if bad >= ZERO:
                        report.holds = False
                        report.add("claimed refuting strategy does not lose money")
    report.add(
        f"checked {report.checked} (point, alpha) pairs; equivalence "
        f"{'holds' if report.holds else 'FAILS'}"
    )
    return report


def verify_proposition6(
    psys: ProbabilisticSystem,
    agent: int,
    opponent: int,
    fact: Fact,
    points: Optional[Sequence[Point]] = None,
    alphas: Optional[Sequence[FractionLike]] = None,
    strategy_limit: int = 200_000,
) -> VerificationReport:
    """Proposition 6: in a synchronous system ``Bet(phi, alpha)`` is
    ``Tree``-safe iff it is ``Tree^j``-safe (both by strategy enumeration)."""
    from ..core.standard import PostAssignment

    psys.system.require_synchronous()
    post_pa = ProbabilityAssignment(PostAssignment(psys))
    opp_pa = opponent_assignment(psys, opponent)
    system = psys.system
    test_points = list(points) if points is not None else list(system.points)
    report = VerificationReport("Proposition 6", True, 0)
    for point in test_points:
        candidate_points = system.knowledge_set(agent, point)
        grid = (
            tuple(as_fraction(alpha) for alpha in alphas)
            if alphas is not None
            else relevant_alphas(opp_pa, agent, fact, candidate_points)
        )
        for alpha in grid:
            if not ZERO < alpha <= ONE:
                continue
            rule = BettingRule(fact, alpha)
            strategies = _strategy_family(
                post_pa, agent, opponent, point, alpha, strategy_limit
            )
            tree_safe = is_safe(post_pa, agent, point, rule, strategies)
            opp_safe = is_safe(opp_pa, agent, point, rule, strategies)
            report.checked += 1
            if tree_safe != opp_safe:
                report.holds = False
                report.add(
                    f"MISMATCH at time-{point.time} point, alpha={format_fraction(alpha)}: "
                    f"Tree-safe={tree_safe}, Tree^j-safe={opp_safe}"
                )
    report.add(
        f"checked {report.checked} (point, alpha) pairs; equivalence "
        f"{'holds' if report.holds else 'FAILS'}"
    )
    return report


# ----------------------------------------------------------------------
# Theorem 8
# ----------------------------------------------------------------------


def determines_safe_bets(
    assignment: ProbabilityAssignment,
    opponent_pa: ProbabilityAssignment,
    agent: int,
    facts: Sequence[Fact],
    alphas: Optional[Sequence[FractionLike]] = None,
) -> bool:
    """Does the assignment determine safe bets against the opponent?

    For every fact, point and threshold: if ``(P, c) |= K_i^alpha phi``
    then ``Bet(phi, alpha)`` is safe against ``p_j`` (by the Theorem 7
    characterization, i.e. ``K_i^alpha`` under ``P^j``).
    """
    system = assignment.psys.system
    for fact in facts:
        for point in system.points:
            candidate_points = system.knowledge_set(agent, point)
            grid = (
                tuple(as_fraction(alpha) for alpha in alphas)
                if alphas is not None
                else relevant_alphas(assignment, agent, fact, candidate_points)
            )
            for alpha in grid:
                if not ZERO < alpha <= ONE:
                    continue
                if assignment.knows_probability_at_least(agent, point, fact, alpha):
                    if not is_safe_analytic(opponent_pa, agent, point, fact, alpha):
                        return False
    return True


def verify_theorem8_part_a(
    psys_variants: Sequence[ProbabilisticSystem],
    ssa_factory: Callable[[ProbabilisticSystem], SampleSpaceAssignment],
    agent: int,
    opponent: int,
    facts_factory: Callable[[ProbabilisticSystem], Sequence[Fact]],
) -> VerificationReport:
    """Theorem 8(a): if ``S <= S^j`` then ``S`` determines safe bets against
    ``p_j`` -- *for every transition probability assignment*.

    ``psys_variants`` are relabelings of the same tree structure; the check
    quantifies over all of them, as the theorem's definition requires.
    """
    report = VerificationReport("Theorem 8(a)", True, 0)
    for psys in psys_variants:
        ssa = ssa_factory(psys)
        opponent_ssa = OpponentAssignment(psys, opponent)
        if not ssa.leq(opponent_ssa):
            report.holds = False
            report.add("hypothesis S <= S^j fails for a variant; nothing to check")
            continue
        assignment = ProbabilityAssignment(ssa)
        opponent_pa = ProbabilityAssignment(opponent_ssa)
        report.checked += 1
        if not determines_safe_bets(assignment, opponent_pa, agent, facts_factory(psys)):
            report.holds = False
            report.add("an assignment below S^j failed to determine safe bets")
    report.add(
        f"checked {report.checked} transition labelings; "
        f"{'all determine safe bets' if report.holds else 'FAILURE'}"
    )
    return report


def boost_path_labeling(tree: ComputationTree, target, margin: Fraction = Fraction(1, 100)):
    """A relabeling concentrating probability on the root path to ``target``.

    Implements the step in Theorem 8(b)'s proof: choose ``pi`` so the runs
    through ``G_d`` carry more than half the measure.  Every edge on the
    path gets probability ``1 - (siblings * delta)`` with ``delta`` small
    enough that the product stays above ``1 - margin``.
    """
    path = tree.path_to(target)
    path_edges = set(zip(path, path[1:]))
    max_siblings = max(
        (len(tree.children(parent)) - 1 for parent, _ in path_edges), default=0
    )
    levels = max(len(path_edges), 1)
    if max_siblings == 0:
        return {edge: tree.edge_probability(*edge) for edge in tree.edges}
    delta = margin / (levels * max_siblings)

    labels: Dict[tuple, Fraction] = {}
    for parent, child in tree.edges:
        kids = tree.children(parent)
        if (parent, child) in path_edges:
            labels[(parent, child)] = ONE - (len(kids) - 1) * delta
        elif any((parent, kid) in path_edges for kid in kids):
            labels[(parent, child)] = delta
        else:
            labels[(parent, child)] = tree.edge_probability(parent, child)
    return labels


@dataclass
class Theorem8Witness:
    """The adversarial construction of Theorem 8(b), fully evaluated."""

    point: Point
    escaping_point: Point
    fact: Fact
    alpha: Fraction
    alpha_opponent: Fraction
    expected_loss: Fraction
    relabeled: ProbabilisticSystem


def theorem8_witness(
    base_psys: ProbabilisticSystem,
    ssa_factory: Callable[[ProbabilisticSystem], SampleSpaceAssignment],
    agent: int,
    opponent: int,
) -> Optional[Theorem8Witness]:
    """Theorem 8(b): an assignment with ``S not<= S^j`` fails to determine
    safe bets, witnessed constructively.

    Finds ``(c, d)`` with ``d in S_ic \\ Tree^j_ic``, relabels the tree to
    put most of the mass on ``d``'s global state, takes ``phi`` to be the
    negation of "the global state is c's" (sufficient richness), and
    exhibits the strategy under which ``Bet(phi, alpha)`` -- accepted
    because ``(P_S, c) |= K_i^alpha phi`` -- loses money in expectation.
    Returns ``None`` when the hypothesis ``S <= S^j`` actually holds.
    """
    ssa = ssa_factory(base_psys)
    opponent_ssa = OpponentAssignment(base_psys, opponent)
    system = base_psys.system
    for point in system.points:
        sample = ssa.sample_space(agent, point)
        joint = opponent_ssa.sample_space(agent, point)
        escaped = sample - joint
        if not escaped:
            continue
        escaping = next(iter(sorted(escaped, key=lambda p: (p.time, repr(p.global_state)))))
        target = escaping.global_state
        tree = base_psys.tree_of(point)
        labels = boost_path_labeling(tree, target)
        relabeled_trees = [
            other.relabel(labels) if other is tree else other for other in base_psys.trees
        ]
        relabeled = ProbabilisticSystem(relabeled_trees)
        new_point = _transfer_point(relabeled, point)
        new_ssa = ssa_factory(relabeled)
        new_pa = ProbabilityAssignment(new_ssa)
        new_opp_pa = opponent_assignment(relabeled, opponent)
        at_c = Fact.at_global_state(new_point.global_state)
        fact = ~at_c
        alpha = new_pa.inner_probability(agent, new_point, fact)
        alpha_opponent = new_opp_pa.inner_probability(agent, new_point, fact)
        if not ZERO < alpha <= ONE or alpha <= alpha_opponent:
            continue
        if not new_pa.knows_probability_at_least(agent, new_point, fact, alpha):
            continue
        rule = BettingRule(fact, alpha)
        from .strategies import targeted_strategy

        strategy = targeted_strategy(
            opponent, [new_point.local_state(opponent)], ONE / alpha, ONE
        )
        loss = expected_winnings(
            new_opp_pa.space(agent, new_point), rule.winnings(strategy)
        )
        if loss >= ZERO:
            continue
        return Theorem8Witness(
            point=new_point,
            escaping_point=escaping,
            fact=fact,
            alpha=alpha,
            alpha_opponent=alpha_opponent,
            expected_loss=loss,
            relabeled=relabeled,
        )
    return None


def _transfer_point(psys: ProbabilisticSystem, point: Point) -> Point:
    """Locate the point with the same global state in a relabeled system."""
    for candidate in psys.system.points:
        if candidate.global_state == point.global_state:
            return candidate
    raise BettingError("point has no counterpart in the relabeled system")


# ----------------------------------------------------------------------
# Theorem 9
# ----------------------------------------------------------------------


def verify_theorem9_part_a(
    lower: ProbabilityAssignment,
    higher: ProbabilityAssignment,
    facts: Sequence[Fact],
) -> VerificationReport:
    """Theorem 9(a): with ``P < P'``, ``(P, c) |= K_i^[a,b] phi`` implies
    ``(P', c) |= K_i^[a,b] phi`` -- equivalently, the sharpest interval under
    ``P'`` is contained in the sharpest interval under ``P``."""
    report = VerificationReport("Theorem 9(a)", True, 0)
    system = lower.psys.system
    for fact in facts:
        for agent in system.agents:
            for point in system.points:
                low_lo, low_hi = lower.knowledge_interval(agent, point, fact)
                high_lo, high_hi = higher.knowledge_interval(agent, point, fact)
                report.checked += 1
                if not (low_lo <= high_lo and high_hi <= low_hi):
                    report.holds = False
                    report.add(
                        f"interval inflation at agent {agent}, time {point.time}: "
                        f"low=[{low_lo},{low_hi}] high=[{high_lo},{high_hi}]"
                    )
    report.add(
        f"checked {report.checked} (fact, agent, point) triples; monotonicity "
        f"{'holds' if report.holds else 'FAILS'}"
    )
    return report


@dataclass
class Theorem9Witness:
    """A strictness witness for Theorem 9(b)."""

    agent: int
    point: Point
    fact: Fact
    alpha_low: Fraction
    alpha_high: Fraction


def theorem9_witness(
    lower: ProbabilityAssignment, higher: ProbabilityAssignment
) -> Optional[Theorem9Witness]:
    """Theorem 9(b): find ``phi``, ``i``, ``c``, ``alpha`` with
    ``(P', c) |= K_i^[alpha,1] phi`` but ``(P, c) not|= K_i^[alpha,1] phi``.

    Uses the proof's construction: pick ``c`` where ``S'_ic`` properly
    contains ``S_ic`` and take ``phi`` to be the negation of "the global
    state is c's"."""
    system = lower.psys.system
    for agent in system.agents:
        for point in system.points:
            small = lower.sample_space(agent, point)
            big = higher.sample_space(agent, point)
            if small == big or not small < big:
                continue
            fact = ~Fact.at_global_state(point.global_state)
            alpha_low = lower.knowledge_interval(agent, point, fact)[0]
            alpha_high = higher.knowledge_interval(agent, point, fact)[0]
            if alpha_high > alpha_low:
                return Theorem9Witness(agent, point, fact, alpha_low, alpha_high)
    return None


# ----------------------------------------------------------------------
# Footnote 13: thresholds are without loss of generality
# ----------------------------------------------------------------------


def acceptance_rule_is_safe(
    assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    fact: Fact,
    accepted: Callable[[Fraction], bool],
    strategies: Sequence[Strategy],
) -> bool:
    """Safety of an arbitrary acceptance rule (accept payoff iff predicate).

    This is the generalised bet of Footnote 13: instead of the half-line
    ``payoff >= 1/alpha`` of ``Bet(phi, alpha)``, the agent accepts any
    payoff in an arbitrary set; :func:`footnote13_threshold_optimality`
    uses it to show thresholds are without loss of generality.
    """
    from .game import acceptance_set_rule

    gain = acceptance_set_rule(fact, accepted)
    system = assignment.psys.system
    for candidate in system.knowledge_set(agent, point):
        space = assignment.space(agent, point=candidate)
        for strategy in strategies:

            def winnings(inner_point: Point) -> Fraction:
                return gain(inner_point, strategy.payoff_at(inner_point))

            if expected_winnings(space, winnings) < ZERO:
                return False
    return True


def footnote13_threshold_optimality(
    psys: ProbabilisticSystem,
    agent: int,
    opponent: int,
    fact: Fact,
    acceptance_payoffs: Sequence[FractionLike],
    point: Point,
    strategy_limit: int = 200_000,
) -> VerificationReport:
    """Footnote 13: accepting an arbitrary payoff set is safe iff accepting
    the half-line from its infimum is safe, i.e. iff ``Bet(phi, 1/min)`` is.

    Verified by comparing the two rules' safety against an exhaustive
    strategy family whose menu includes every payoff in the set (plus the
    harmless payoff 1)."""
    payoffs = sorted(as_fraction(value) for value in acceptance_payoffs)
    if not payoffs or payoffs[0] <= ONE:
        raise BettingError("acceptance payoffs must exceed 1 for a nontrivial bet")
    accepted_set = set(payoffs)
    alpha = ONE / payoffs[0]
    opponent_pa = opponent_assignment(psys, opponent)
    system = psys.system
    relevant_points: set = set()
    for candidate in system.knowledge_set(agent, point):
        relevant_points |= opponent_pa.sample_space(agent, candidate)
    locals_ = opponent_states(system, opponent, relevant_points)
    menu = [ONE] + payoffs + [payoffs[0] + Fraction(1, 2)]
    strategies = list(enumerate_strategies(opponent, locals_, menu, True, strategy_limit))
    set_safe = acceptance_rule_is_safe(
        opponent_pa, agent, point, fact, accepted_set.__contains__, strategies
    )
    threshold_safe = acceptance_rule_is_safe(
        opponent_pa, agent, point, fact, lambda payoff: payoff >= payoffs[0], strategies
    )
    bet_safe = is_safe(opponent_pa, agent, point, BettingRule(fact, alpha), strategies)
    holds = set_safe == threshold_safe == bet_safe
    report = VerificationReport("Footnote 13", holds, len(strategies))
    report.add(
        f"arbitrary-set safe={set_safe}, half-line safe={threshold_safe}, "
        f"Bet(phi, {format_fraction(alpha)}) safe={bet_safe}"
    )
    return report
