"""E12 -- Proposition 11: the coordinated-attack matrix.

Paper claims (Sections 4 and 8): both CA1 and CA2 coordinate in
1 - 2**-11 of the runs; CA1 achieves C^0.99 phi_CA at all points w.r.t.
P_prior but not P_post (there is a point where A is certain of failure yet
attacks); CA2 achieves it w.r.t. P_post (and P_prior) but not P_fut;
P_fut-level achievement is equivalent to deterministic coordinated attack.
Our adaptive CA1 extension (end of Section 8) is included as a fourth row.
"""

from fractions import Fraction

from repro.attack import (
    b_conditional_confidence,
    build_ca1,
    build_ca1_adaptive,
    build_ca2,
    build_never_attack,
    conditional_coordination,
    proposition11_table,
    run_level_probability,
)
from repro.reporting import print_table

EPSILON = Fraction(99, 100)


def run_experiment():
    attacks = [build_ca1(), build_ca2(), build_ca1_adaptive(), build_never_attack()]
    rows = proposition11_table(attacks, EPSILON)
    return (
        rows,
        run_level_probability(attacks[0]),
        b_conditional_confidence(attacks[1]),
        conditional_coordination(attacks[1]),
    )


def test_e12_proposition11(benchmark):
    rows, run_level, confidence, fz_conditional = benchmark(run_experiment)
    print_table(
        "E12  Proposition 11: C^0.99(phi_CA) at all points?  (10 messengers)",
        ["protocol", "run-level", "P_prior", "P_post", "P_fut", "doomed-but-attacking"],
        [
            (
                row.protocol,
                row.run_level,
                row.prior,
                row.post,
                row.fut,
                row.certain_failure_count,
            )
            for row in rows
        ],
    )
    print_table(
        "E12  supporting numbers",
        ["quantity", "paper", "measured"],
        [
            ("run-level coordination", "2047/2048", run_level),
            ("B's confidence after silence", "1024/1025 (>= .99)", confidence),
            ("FZ conditional coordination", "1023/1024 (>= .99)", fz_conditional),
        ],
    )
    matrix = {row.protocol: (row.prior, row.post, row.fut) for row in rows}
    assert matrix["CA1"] == (True, False, False)
    assert matrix["CA2"] == (True, True, False)
    assert matrix["CA1-adaptive"] == (True, True, False)
    assert matrix["CA0"] == (True, True, True)
    assert run_level == Fraction(2047, 2048)
    assert confidence == Fraction(1024, 1025)
    assert fz_conditional == Fraction(1023, 1024)
