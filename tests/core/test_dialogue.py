"""The posterior-announcement (agreement) dialogue."""

from fractions import Fraction

import pytest

from repro.core import Fact, agreement_dialogue
from repro.errors import ModelError
from repro.examples_lib import three_agent_coin_system
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


class TestDialogue:
    def test_ignorant_pair_agrees_immediately(self, coin):
        tree = coin.psys.trees[0]
        start = coin.psys.system.points_at_time(1)[0]
        result = agreement_dialogue(coin.psys, tree, 1, (0, 1), coin.heads, start)
        assert result.agreed
        assert set(result.final_posteriors.values()) == {Fraction(1, 2)}

    def test_informed_vs_ignorant_converges_to_truth(self, coin):
        # p3 announces its posterior (0 or 1); p1 learns the outcome from
        # the announcement, so they agree on the degenerate value.
        tree = coin.psys.trees[0]
        heads_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if coin.heads.holds_at(point)
        )
        result = agreement_dialogue(
            coin.psys, tree, 1, (2, 0), coin.heads, heads_point
        )
        assert result.agreed
        assert set(result.final_posteriors.values()) == {Fraction(1)}

    def test_rounds_record_partitions(self, coin):
        tree = coin.psys.trees[0]
        start = coin.psys.system.points_at_time(1)[0]
        result = agreement_dialogue(coin.psys, tree, 1, (2, 0), coin.heads, start)
        assert result.rounds
        for round_ in result.rounds:
            assert round_.speaker in (0, 2)
            assert 0 <= round_.announced <= 1

    def test_agreement_on_random_systems(self):
        # Aumann via the dialogue: with a common prior the process always
        # ends in agreement.
        for seed in range(4):
            psys = random_psys(seed=seed, depth=2, observability=("clock", "full"))
            tree = psys.trees[0]
            start = [point for point in tree.points if point.time == 2][0]
            result = agreement_dialogue(psys, tree, 2, (0, 1), parity_fact(), start)
            assert result.agreed, (seed, result.final_posteriors)

    def test_partial_observers_agree(self):
        psys = random_psys(seed=7, depth=2, observability=("full", "full"))
        tree = psys.trees[0]
        start = [point for point in tree.points if point.time == 1][0]
        result = agreement_dialogue(psys, tree, 1, (0, 1), parity_fact(), start)
        assert result.agreed

    def test_start_must_be_on_slice(self, coin):
        tree = coin.psys.trees[0]
        start = coin.psys.system.points_at_time(0)[0]
        with pytest.raises(ModelError):
            agreement_dialogue(coin.psys, tree, 1, (0, 1), coin.heads, start)

    def test_three_party_dialogue(self, coin):
        tree = coin.psys.trees[0]
        start = coin.psys.system.points_at_time(1)[0]
        result = agreement_dialogue(
            coin.psys, tree, 1, (0, 1, 2), coin.heads, start
        )
        assert result.agreed
        assert len(result.final_posteriors) == 3
