"""Command-line interface: ``python -m tools.reproflow [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cache import DEFAULT_CACHE_PATH, SummaryCache
from .engine import analyze_paths
from .report import build_report
from .rules.base import FLOW_REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reproflow",
        description=(
            "Whole-program dataflow analyzer for the Halpern & Tuttle "
            "reproduction: call-graph effect inference guarding task-payload "
            "determinism (RL009), exactness taint (RL010), process-pool "
            "pickle safety (RL011), and docstring effect contracts (RL012)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (e.g. src/repro)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit violations as a JSON array instead of path:line:col lines",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="write the full repro-flow/1 report artifact (callgraph, effect "
        "summaries, payload closure) to FILE; '-' for stdout",
    )
    parser.add_argument(
        "--explain",
        metavar="RL00X",
        help="print the rationale for one flow rule and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered flow rule ids and titles and exit",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE_PATH,
        help=f"extraction cache file (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-extract every file, neither reading nor writing the cache",
    )
    parser.add_argument(
        "--report-stale-suppressions",
        action="store_true",
        help=(
            "also report RL009-RL012 'disable=' comments that matched no "
            "violation in this run (exit 1 when any are found)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        try:
            rule = FLOW_REGISTRY.get_rule(args.explain.strip().upper())
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        print(f"{rule.rule_id}: {rule.title}")
        print()
        print(rule.rationale)
        return 0

    if args.list_rules:
        for rule in FLOW_REGISTRY.all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m tools.reproflow src/repro)")

    cache = None if args.no_cache else SummaryCache(args.cache)
    report = analyze_paths(args.paths, cache=cache)
    violations = report.violations

    for warning in report.unknown_suppressions:
        print(f"reproflow: warning: {warning.render()}", file=sys.stderr)

    stale = report.stale_suppressions if args.report_stale_suppressions else []

    if args.report:
        artifact = json.dumps(build_report(report), indent=2, sort_keys=True)
        if args.report == "-":
            print(artifact)
        else:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(artifact)
                handle.write("\n")

    if args.json:
        if args.report_stale_suppressions:
            print(
                json.dumps(
                    {
                        "violations": [v.as_dict() for v in violations],
                        "stale_suppressions": [
                            {
                                "path": w.path,
                                "line": w.line,
                                "rule": w.rule_id,
                                "message": w.message,
                            }
                            for w in stale
                        ],
                    },
                    indent=2,
                )
            )
        else:
            print(json.dumps([v.as_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.render())
        for warning in stale:
            print(warning.render())
        if violations:
            print(
                f"reproflow: {len(violations)} violation(s) "
                f"(suppress a line with '# reproflow: disable=<RULE>')",
                file=sys.stderr,
            )
        if stale:
            print(
                f"reproflow: {len(stale)} stale suppression(s)", file=sys.stderr
            )
    return 1 if violations or stale else 0


if __name__ == "__main__":
    sys.exit(main())
