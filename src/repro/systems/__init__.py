"""A small distributed-system simulator generating probabilistic systems.

Protocol code (agents + channels) unfolds into the labeled computation
trees of Section 3: synchronous lockstep rounds in :mod:`synchronous`,
scheduler-adversary interleavings in :mod:`scheduler`.  The coordinated
attack protocols and the paper's coin examples are built on this substrate.
"""

from .agents import (
    ActionDistribution,
    Agent,
    AgentAction,
    CoinTossingAgent,
    FunctionAgent,
    IdleAgent,
    RepeatedCoinTosser,
    act,
    certainly,
    chance,
)
from .channels import (
    Channel,
    CollapsingLossyChannel,
    LossyChannel,
    PerfectChannel,
)
from .messages import Message, inbox_for, message_sort_key, sort_messages
from .scheduler import (
    ScheduleAdversary,
    fixed_order,
    round_robin,
    run_scheduled,
    scheduled_system,
    starving,
)
from .synchronous import SyncProtocol, protocol_system, run_protocol

__all__ = [
    "Agent",
    "FunctionAgent",
    "IdleAgent",
    "CoinTossingAgent",
    "RepeatedCoinTosser",
    "AgentAction",
    "ActionDistribution",
    "act",
    "certainly",
    "chance",
    "Message",
    "inbox_for",
    "sort_messages",
    "message_sort_key",
    "Channel",
    "PerfectChannel",
    "LossyChannel",
    "CollapsingLossyChannel",
    "SyncProtocol",
    "run_protocol",
    "protocol_system",
    "ScheduleAdversary",
    "round_robin",
    "fixed_order",
    "starving",
    "run_scheduled",
    "scheduled_system",
]
