"""E11 -- Proposition 10: P_post and P_pts agree on K_i^[a,b] formulas.

Verified two ways: explicit enumeration of every cut on small systems, and
the closed form (worst/best cut per run) that the proof establishes --
which is what makes the 10-toss system (11**1024 cuts) computable.
"""

from repro.core import PostAssignment, ProbabilityAssignment, pts_interval, verify_proposition10
from repro.examples_lib import biased_async_system, repeated_coin_system
from repro.reporting import print_table


def run_experiment():
    biased = biased_async_system()
    biased_post = ProbabilityAssignment(PostAssignment(biased.psys))
    small = repeated_coin_system(2)
    small_post = ProbabilityAssignment(PostAssignment(small.psys))
    results = {
        "biased (enumerated + closed form)": verify_proposition10(
            biased.psys, biased_post, 1, biased.heads
        ),
        "2-toss coin (enumerated + closed form)": verify_proposition10(
            small.psys, small_post, 0, small.most_recent_heads, enumeration_limit=200
        ),
    }
    big = repeated_coin_system(8)
    big_post = ProbabilityAssignment(PostAssignment(big.psys))
    anchor = big.psys.system.points_at_time(1)[0]
    closed = pts_interval(big.psys, PostAssignment(big.psys), 0, anchor, big.most_recent_heads)
    post_interval = big_post.knowledge_interval(0, anchor, big.most_recent_heads)
    results["8-toss closed form == post interval"] = closed == post_interval
    return results


def test_e11_proposition10(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E11  Proposition 10: P_post == P_pts on K^[a,b]",
        ["instance", "paper", "measured"],
        [(name, "agree", "agree" if value else "DISAGREE") for name, value in results.items()],
    )
    assert all(results.values())
