"""Pluggable rule registry.

A rule is a class with a unique ``rule_id``, a one-line ``title``, a
``rationale`` tying the invariant back to the paper, and a ``check``
method yielding :class:`~tools.reprolint.model.Violation` objects for one
module.  Registering is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "RL042"
        ...

New rule modules only need to be imported from
``tools.reprolint.rules.__init__`` to take effect; the engine and CLI
discover them through this registry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from .model import Module, Violation


class Rule:
    """Base class for reprolint rules."""

    #: Unique identifier, ``RL`` followed by three digits.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Multi-paragraph explanation printed by ``--explain``; must say which
    #: part of the paper the invariant protects.
    rationale: str = ""

    def check(self, module: Module) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: Module, node: object, message: str) -> Violation:
        return module.violation(node, self.rule_id, message)  # type: ignore[arg-type]


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (as a singleton instance) to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


__all__ = ["Rule", "all_rules", "get_rule", "register"]
