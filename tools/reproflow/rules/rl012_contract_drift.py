"""RL012 — docstring effect contracts must match inferred effects."""

from __future__ import annotations

from typing import Iterator

from ...reprolint.model import Violation
from ..program import Program
from .base import FlowRule, register
from .rl009_determinism import BANNED_EFFECTS, _EFFECT_LABEL


@register
class ContractDriftRule(FlowRule):
    rule_id = "RL012"
    title = "declared Deterministic./Exact. contracts must hold"
    rationale = """\
The observability and robustness layers lean on effect *contracts*
stated in docstrings: a line reading ``Deterministic.`` promises the
function's result depends only on its arguments (no clock, no unseeded
randomness, no global mutation, transitively), and ``Exact.`` promises
it computes with Fractions end to end (no float usage outside the
sanctioned ``fractionutil`` boundary).  Checkpoint fingerprints, replay
validation, and the tracediff conventions all cite these contracts --
silently outgrowing one (a refactor adds a perf_counter call three
levels down) invalidates reasoning that still *looks* documented.

This rule re-derives each declared contract from the whole-program
effect inference and reports drift at the function's definition, with
the call chain to the contradicting site.  Fix by restoring the
property or deleting the stale declaration; a known-benign divergence
can be waived on the ``def`` line with ``# reproflow: disable=RL012``."""

    def check_program(self, program: Program) -> Iterator[Violation]:
        for fqn in sorted(program.functions):
            info = program.functions[fqn]
            contracts = info.record.get("contracts", [])
            if not contracts:
                continue
            if "deterministic" in contracts:
                for effect in BANNED_EFFECTS:
                    if (fqn, effect) not in program.effect_cause:
                        continue
                    chain = program.effect_chain(fqn, effect)
                    yield self.flow_violation(
                        info,
                        info.line,
                        f"'{fqn}' declares 'Deterministic.' but "
                        f"{_EFFECT_LABEL[effect]}; "
                        f"chain: {program.render_chain(chain)}",
                    )
            if "exact" in contracts and fqn in program.uses_float:
                chain = program.uses_float_chain(fqn)
                yield self.flow_violation(
                    info,
                    info.line,
                    f"'{fqn}' declares 'Exact.' but uses float arithmetic; "
                    f"chain: {program.render_chain(chain)}",
                )


__all__ = ["ContractDriftRule"]
