"""Model checking ``L(Phi)`` over finite probabilistic systems.

A :class:`Model` bundles a probabilistic system, a probability assignment
``P`` (needed to interpret ``Pr_i``), and a valuation mapping primitive
proposition names to facts.  Checking computes formula *extensions* --
the set of points where a formula holds -- bottom-up with memoisation.

Internally every extension is an int bit mask over the system's shared
:class:`~repro.probability.bitset.OutcomeIndex` of points: boolean
connectives become single bitwise operations, ``K_i`` becomes a subset
test per information class, and the greatest fixed points of
(probabilistic) common knowledge iterate on machine ints.  Masks are
converted to :class:`frozenset` point sets only at the public boundary
(:meth:`Model.extension` and friends).

The fixpoint and memo machinery reports to :mod:`repro.obs` (gfp
iteration counts, extension-mask computes/memo hits) -- observe-only, so
an instrumented check returns bit-identical extensions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact
from ..core.model import Point, System
from ..errors import LogicError
from ..obs.recorder import NULL_RECORDER, get_recorder
from ..probability import wordmask
from ..probability.bitset import get_default_backend
from ..trees.probabilistic_system import ProbabilisticSystem
from .syntax import (
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    TrueFormula,
    Until,
)

PointSet = FrozenSet[Point]


class Model:
    """An interpreted system: trees + probability assignment + valuation."""

    def __init__(
        self,
        assignment: ProbabilityAssignment,
        valuation: Mapping[str, Fact],
    ) -> None:
        self.assignment = assignment
        self.psys: ProbabilisticSystem = assignment.psys
        self.system: System = self.psys.system
        self.valuation: Dict[str, Fact] = dict(valuation)
        self._extensions: Dict[Formula, PointSet] = {}
        self._extension_masks: Dict[Formula, int] = {}
        self._index = self.psys.point_index
        self._full_mask = self._index.full_mask
        self._points_cache: Optional[PointSet] = None
        # Backend choice is latched at model construction, like a space's:
        # the knowledge folds below go through the wordarray kernels iff
        # the wordarray backend was active (and numpy present) when this
        # model was built.
        self._words = get_default_backend() == "wordarray" and wordmask.available()
        self._n_words = wordmask.word_count(len(self._index)) if self._words else 0

    # ------------------------------------------------------------------
    # Core evaluation
    # ------------------------------------------------------------------

    def extension(self, formula: Formula) -> PointSet:
        """The set of points satisfying ``formula`` (memoised)."""
        if formula in self._extensions:
            return self._extensions[formula]
        mask = self.extension_mask(formula)
        if mask == self._full_mask:
            result = self._all_points()
        else:
            result = self._index.members_of(mask)
        self._extensions[formula] = result
        return result

    def extension_mask(self, formula: Formula) -> int:
        """The extension of ``formula`` as a bit mask (memoised).

        Bit positions follow the system's shared
        :attr:`~repro.core.model.System.point_index`, so masks from
        different formulas -- or from other consumers of the same system
        -- compose with plain bitwise operators.
        """
        if formula in self._extension_masks:
            get_recorder().counter("model.extension_mask_memo_hits")
            return self._extension_masks[formula]
        mask = self._compute_extension_mask(formula)
        self._extension_masks[formula] = mask
        get_recorder().counter("model.extension_masks_computed")
        return mask

    def holds(self, formula: Formula, point: Point) -> bool:
        """``(P, c) |= formula``."""
        index = self._index
        if point not in index:
            return False
        return bool(self.extension_mask(formula) >> index.position(point) & 1)

    def valid(self, formula: Formula) -> bool:
        """True iff the formula holds at every point of the system."""
        return self.extension_mask(formula) == self._full_mask

    def fact_of(self, formula: Formula) -> Fact:
        """The formula's extension wrapped as a :class:`Fact`."""
        return Fact.from_points(self.extension(formula), name=str(formula))

    def with_assignment(self, assignment: ProbabilityAssignment) -> "Model":
        """The same valuation interpreted under a different assignment.

        The probability assignment is exactly what Sections 6-8 vary; this
        constructor is how the coordinated-attack analysis swaps ``P_prior``
        / ``P_post`` / ``P_fut`` while holding everything else fixed.
        """
        return Model(assignment, self.valuation)

    def explain(
        self,
        formula: Formula,
        point: Point,
        assignment: Optional[ProbabilityAssignment] = None,
    ):
        """A :class:`~repro.obs.provenance.Derivation` for ``formula`` at
        ``point``: the full Section 5 evidence behind :meth:`holds`.

        The derivation records, per node, the semantic clause applied and
        the paper definition it instantiates -- for ``Pr_i(phi) >= alpha``
        the sample space ``S(i, c)``, its cells with exact measures and
        the inner-measure witness event (Section 5); for ``K_i`` a
        counterexample point when it fails (the Theorem 7 refutation
        direction); for ``C_G^alpha`` the gfp iteration snapshots
        (Section 8).  ``assignment`` evaluates under a different
        probability assignment (the Section 6 lattice) without mutating
        this model.  The verdict always agrees with :meth:`holds` -- the
        explain layer re-derives, it never decides.
        """
        # Local import: logic.explain sits above logic.semantics in the
        # intra-package DAG (RL002); the cold explain path may reach up.
        from .explain import explain as build_derivation

        model = self
        if assignment is not None and assignment is not self.assignment:
            model = self.with_assignment(assignment)
        return build_derivation(model, formula, point)

    # ------------------------------------------------------------------
    # Recursive cases
    # ------------------------------------------------------------------

    def _all_points(self) -> PointSet:
        cached = self._points_cache
        if cached is None:
            cached = frozenset(self.system.points)
            self._points_cache = cached
        return cached

    def _compute_extension_mask(self, formula: Formula) -> int:
        full = self._full_mask
        if isinstance(formula, Prop):
            try:
                fact = self.valuation[formula.name]
            except KeyError:
                raise LogicError(f"no valuation for proposition {formula.name!r}") from None
            return self._points_mask(fact.holds_at)
        if isinstance(formula, TrueFormula):
            return full
        if isinstance(formula, FalseFormula):
            return 0
        if isinstance(formula, Not):
            return full & ~self.extension_mask(formula.sub)
        if isinstance(formula, And):
            return self.extension_mask(formula.left) & self.extension_mask(formula.right)
        if isinstance(formula, Or):
            return self.extension_mask(formula.left) | self.extension_mask(formula.right)
        if isinstance(formula, Implies):
            return (full & ~self.extension_mask(formula.left)) | self.extension_mask(
                formula.right
            )
        if isinstance(formula, Iff):
            left = self.extension_mask(formula.left)
            right = self.extension_mask(formula.right)
            return full & ~(left ^ right)
        if isinstance(formula, Knows):
            return self._knowledge_mask(formula.agent, self.extension_mask(formula.sub))
        if isinstance(formula, PrAtLeast):
            fact = Fact.from_points(self.extension(formula.sub))
            inner = self.assignment.inner_probability
            agent, alpha = formula.agent, formula.alpha
            return self._points_mask(
                lambda point: inner(agent, point, fact) >= alpha
            )
        if isinstance(formula, PrAtMost):
            fact = Fact.from_points(self.extension(formula.sub))
            outer = self.assignment.outer_probability
            agent, beta = formula.agent, formula.beta
            return self._points_mask(
                lambda point: outer(agent, point, fact) <= beta
            )
        if isinstance(formula, Next):
            sub = self.extension_mask(formula.sub)
            position = self._index.position
            return self._points_mask(
                lambda point: sub >> position(point.successor()) & 1
            )
        if isinstance(formula, Until):
            return self._until_mask(formula)
        if isinstance(formula, EveryoneKnows):
            return self._everyone_mask(formula.group, self.extension_mask(formula.sub))
        if isinstance(formula, CommonKnows):
            sub = self.extension_mask(formula.sub)
            if self._words:
                return self._gfp_mask_words(sub, formula.group)
            return self._gfp_mask(
                sub,
                lambda target: self._everyone_mask(formula.group, target),
            )
        if isinstance(formula, EveryoneKnowsProb):
            return self._everyone_prob_mask(
                formula.group, formula.alpha, self.extension_mask(formula.sub)
            )
        if isinstance(formula, CommonKnowsProb):
            return self._gfp_mask(
                self.extension_mask(formula.sub),
                lambda target: self._everyone_prob_mask(
                    formula.group, formula.alpha, target
                ),
            )
        raise LogicError(f"unknown formula constructor {type(formula).__name__}")

    def _points_mask(self, predicate) -> int:
        """The mask of the points satisfying a point predicate."""
        mask = 0
        bit = 1
        for point in self._index.members:
            if predicate(point):
                mask |= bit
            bit <<= 1
        return mask

    # ------------------------------------------------------------------
    # Knowledge helpers (mask kernels)
    # ------------------------------------------------------------------

    def _knowledge_mask(self, agent: int, target: int) -> int:
        """Extension mask of ``K_i`` applied to an extension mask.

        ``K_i(c)`` is constant on each information class and equals the
        class itself, so the extension of ``K_i phi`` is the union of the
        classes wholly inside the target -- one subset test per class on
        the bitmask path, one batched
        :meth:`~repro.probability.wordmask.PartitionKernel.knowledge_words`
        pass on the wordarray path.
        """
        if self._words:
            kernel = self.system.agent_partition_kernel(agent)
            target_words = wordmask.mask_to_words(target, self._n_words)
            return wordmask.words_to_mask(kernel.knowledge_words(target_words))
        result = 0
        for class_mask in self.system.agent_class_masks(agent):
            if class_mask & ~target == 0:
                result |= class_mask
        return result

    def _everyone_mask(self, group: Iterable[int], target: int) -> int:
        if self._words:
            target_words = wordmask.mask_to_words(target, self._n_words)
            return wordmask.words_to_mask(self._everyone_words(group, target_words))
        result = self._full_mask
        for agent in group:
            result &= self._knowledge_mask(agent, target)
        return result

    def _everyone_words(self, group: Iterable[int], target_words):
        """Word-array ``E_G`` applied to a word-array target.

        The wordarray bulk path: every agent's whole information partition
        is folded against the target by its
        :meth:`~repro.core.model.System.agent_partition_kernel`, and the
        per-agent knowledge masks are intersected without ever leaving
        word-array form -- the batching that makes the ``C_G`` gfp scale.
        """
        result = None
        for agent in group:
            kernel = self.system.agent_partition_kernel(agent)
            knows = kernel.knowledge_words(target_words)
            result = knows if result is None else wordmask.intersect_words(result, knows)
        if result is None:
            return wordmask.full_words(len(self._index))
        return result

    def _prob_knowledge_mask(self, agent: int, alpha, target: int) -> int:
        """Extension mask of ``K_i^alpha`` applied to an extension mask."""
        fact = Fact.from_points(self._index.members_of(target))
        inner = self.assignment.inner_probability
        satisfying = self._points_mask(
            lambda point: inner(agent, point, fact) >= alpha
        )
        return self._knowledge_mask(agent, satisfying)

    def _everyone_prob_mask(self, group: Iterable[int], alpha, target: int) -> int:
        result = self._full_mask
        for agent in group:
            result &= self._prob_knowledge_mask(agent, alpha, target)
        return result

    def _gfp_mask(self, sub_mask: int, everyone) -> int:
        """Greatest fixed point of ``X == E(phi & X)`` by downward iteration.

        The operator is monotone and the lattice of point sets finite, so
        iteration from the top converges; the result is the greatest fixed
        point, matching the Section 8 definition of (probabilistic) common
        knowledge.
        """
        recorder = get_recorder()
        # Identity check against the singleton (the sanctioned
        # "uninstrumented" test): per-iteration snapshots are provenance
        # events and must cost nothing on the default path.
        snapshot = recorder is not NULL_RECORDER
        current = self._full_mask
        iterations = 0
        while True:
            iterations += 1
            updated = everyone(sub_mask & current)
            if snapshot:
                recorder.event(
                    "gfp_iteration",
                    representation="mask",
                    iteration=iterations,
                    current_size=current.bit_count(),
                    updated_size=updated.bit_count(),
                    updated_mask=updated,
                )
            if updated == current:
                recorder.counter("model.gfp_fixpoints")
                recorder.counter("model.gfp_iterations", iterations)
                recorder.event(
                    "gfp",
                    representation="mask",
                    iterations=iterations,
                    fixpoint_size=current.bit_count(),
                )
                return current
            current = updated

    def _gfp_mask_words(self, sub_mask: int, group: Iterable[int]) -> int:
        """:meth:`_gfp_mask` for ``C_G``, iterated in word-array form.

        Same downward iteration from the full space (Section 8), but the
        candidate mask stays a ``uint64`` word array across iterations:
        one int->words conversion for the sub-formula mask going in, one
        words->int conversion for the fixpoint coming out, and everything
        between is vectorized.  Events mirror the int path with
        ``representation="wordarray"``.
        """
        recorder = get_recorder()
        snapshot = recorder is not NULL_RECORDER
        sub = wordmask.mask_to_words(sub_mask, self._n_words)
        current = wordmask.full_words(len(self._index))
        iterations = 0
        while True:
            iterations += 1
            updated = self._everyone_words(group, wordmask.intersect_words(sub, current))
            if snapshot:
                recorder.event(
                    "gfp_iteration",
                    representation="wordarray",
                    iteration=iterations,
                    current_size=wordmask.popcount_words(current),
                    updated_size=wordmask.popcount_words(updated),
                    updated_mask=wordmask.words_to_mask(updated),
                )
            if wordmask.equal_words(updated, current):
                recorder.counter("model.gfp_fixpoints")
                recorder.counter("model.gfp_iterations", iterations)
                recorder.event(
                    "gfp",
                    representation="wordarray",
                    iterations=iterations,
                    fixpoint_size=wordmask.popcount_words(current),
                )
                return wordmask.words_to_mask(current)
            current = updated

    # ------------------------------------------------------------------
    # Knowledge helpers (point-set boundary, used by common_knowledge)
    # ------------------------------------------------------------------

    def _knowledge_extension(self, agent: int, target: PointSet) -> PointSet:
        mask = self._knowledge_mask(agent, self._index.mask_of_known(target))
        return self._index.members_of(mask)

    def _everyone_extension(self, group: Iterable[int], target: PointSet) -> PointSet:
        mask = self._everyone_mask(group, self._index.mask_of_known(target))
        return self._index.members_of(mask)

    def _prob_knowledge_extension(self, agent: int, alpha, target: PointSet) -> PointSet:
        """Extension of ``K_i^alpha`` applied to an extension (not a formula)."""
        mask = self._prob_knowledge_mask(agent, alpha, self._index.mask_of_known(target))
        return self._index.members_of(mask)

    def _everyone_prob_extension(
        self, group: Iterable[int], alpha, target: PointSet
    ) -> PointSet:
        mask = self._everyone_prob_mask(group, alpha, self._index.mask_of_known(target))
        return self._index.members_of(mask)

    def _gfp(self, sub_extension: PointSet, everyone) -> PointSet:
        """Greatest fixed point on point sets (see :meth:`_gfp_mask`).

        Kept on the frozenset representation because callers (the
        common-knowledge checkers) pass point-set-level ``everyone``
        operators.
        """
        recorder = get_recorder()
        snapshot = recorder is not NULL_RECORDER
        current = self._all_points()
        iterations = 0
        while True:
            iterations += 1
            updated = everyone(sub_extension & current)
            if snapshot:
                recorder.event(
                    "gfp_iteration",
                    representation="points",
                    iteration=iterations,
                    current_size=len(current),
                    updated_size=len(updated),
                    updated_mask=self._index.mask_of_known(updated),
                )
            if updated == current:
                recorder.counter("model.gfp_fixpoints")
                recorder.counter("model.gfp_iterations", iterations)
                recorder.event(
                    "gfp",
                    representation="points",
                    iterations=iterations,
                    fixpoint_size=len(current),
                )
                return current
            current = updated

    # ------------------------------------------------------------------
    # Until
    # ------------------------------------------------------------------

    def _until_mask(self, formula: Until) -> int:
        left = self.extension_mask(formula.left)
        right = self.extension_mask(formula.right)
        position = self._index.position
        result = 0
        for run in self.system.runs:
            run_points = list(run.points())
            holds_next = False
            for index in range(len(run_points) - 1, -1, -1):
                bit = 1 << position(run_points[index])
                if right & bit:
                    holds = True
                elif left & bit and index + 1 < len(run_points):
                    holds = holds_next
                else:
                    holds = False
                if holds:
                    result |= bit
                holds_next = holds
        return result
