"""reprolint: AST-based invariant checker for this reproduction.

Eight rules guard the properties the paper's executable theorems rely on:

* RL001 -- exact arithmetic (no floats) in probability/, core/,
  betting/, logic/; ``probability/fractionutil.py`` is the single
  sanctioned float boundary.
* RL002 -- package layering ``{obs, probability, reporting} -> core ->
  {logic, systems, trees} -> betting -> attack -> robustness`` with no
  runtime back-edges (``if TYPE_CHECKING:`` imports are exempt).
* RL003 -- every public function in the theorem-bearing modules cites
  the paper result it implements.
* RL004 -- no mutable default arguments.
* RL005 -- no bare ``except:``.
* RL006 -- ``__all__`` in each ``__init__.py`` exists and only lists
  names the module actually binds.
* RL007 -- every ``raise`` names a builtin or a ``ReproError`` subclass,
  so ``except ReproError`` stays a complete domain handler.
* RL008 -- wall-clock reads only inside ``repro/obs/``
  (``time.sleep`` stays allowed: it affects scheduling, never results).

RL000 is the reserved tool-level diagnostic: a file the analyzer cannot
parse is reported (exit 1) instead of crashing the run or hiding its
siblings' findings.  RL009-RL012 live in the second, whole-program tier
(``tools/reproflow``), which shares this package's module model,
registry class, and suppression syntax.

Usage::

    python -m tools.reprolint src/repro tools      # human output, exit 1 on findings
    python -m tools.reprolint --json src/repro     # machine-readable
    python -m tools.reprolint --explain RL001      # rule rationale
    python -m tools.reprolint --list-rules
    python -m tools.reprolint --report-stale-suppressions src/repro

Suppress with ``# reprolint: disable=RL001`` -- file-wide on a standalone
comment line, single-line as a trailing comment.  Suppressions that no
longer match any violation are reported by
``--report-stale-suppressions``; suppressions naming unknown rule ids
always warn.
"""

from .engine import (
    LintError,
    LintReport,
    SuppressionWarning,
    lint_module,
    lint_paths,
    lint_paths_report,
    load_module,
    tool_error_violation,
)
from .model import (
    FLOW_RULE_IDS,
    TOOL_ERROR_RULE_ID,
    Module,
    SuppressionDecl,
    Suppressions,
    Violation,
    parse_suppressions,
)
from .registry import Registry, Rule, all_rules, get_rule, register

__all__ = [
    "FLOW_RULE_IDS",
    "LintError",
    "LintReport",
    "Module",
    "Registry",
    "Rule",
    "SuppressionDecl",
    "SuppressionWarning",
    "Suppressions",
    "TOOL_ERROR_RULE_ID",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_module",
    "lint_paths",
    "lint_paths_report",
    "load_module",
    "parse_suppressions",
    "register",
    "tool_error_violation",
]
