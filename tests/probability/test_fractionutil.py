"""Exact-arithmetic helpers."""

from fractions import Fraction

import pytest

from repro.probability import as_fraction, check_probability, format_fraction


class TestAsFraction:
    def test_fraction_passthrough(self):
        value = Fraction(2, 3)
        assert as_fraction(value) is value

    def test_int(self):
        assert as_fraction(1) == Fraction(1)

    def test_ratio_string(self):
        assert as_fraction("2/3") == Fraction(2, 3)

    def test_decimal_string(self):
        assert as_fraction("0.99") == Fraction(99, 100)

    def test_tuple(self):
        assert as_fraction((3, 7)) == Fraction(3, 7)

    def test_float_uses_decimal_repr(self):
        # Fraction(0.99) would expose the binary float; we want 99/100.
        assert as_fraction(0.99) == Fraction(99, 100)

    def test_float_half_exact(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestCheckProbability:
    def test_in_range(self):
        assert check_probability("1/2") == Fraction(1, 2)

    def test_endpoints(self):
        assert check_probability(0) == Fraction(0)
        assert check_probability(1) == Fraction(1)

    @pytest.mark.parametrize("bad", ["3/2", -1, "1.5"])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad)


class TestFormatFraction:
    def test_integer(self):
        assert format_fraction(Fraction(3)) == "3"

    def test_small_denominator(self):
        assert format_fraction(Fraction(1, 2)) == "1/2"

    def test_large_denominator_exact_boundary(self):
        assert format_fraction(Fraction(1023, 1024)) == "1023/1024"

    def test_huge_denominator_falls_back_to_decimal(self):
        text = format_fraction(Fraction(1, 2**40))
        assert "/" not in text
        assert text.startswith("0.0")
