"""RL006 — ``__all__`` in package initialisers must match reality."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..model import Module, Violation
from ..registry import Rule, register


@register
class PublicApiRule(Rule):
    rule_id = "RL006"
    title = "__all__ in every __init__.py exists and lists only defined names"
    rationale = """\
The package initialisers are the library's public API surface: the
paper-to-code map (docs/paper_map.md) and the tutorial both address
objects by their exported names.  Each __init__.py must declare __all__,
and every name in it must actually be bound in that module -- a phantom
export makes `from repro.core import *` raise AttributeError and lets
the documented API drift from the code.  Duplicates are flagged because
they always indicate a merge mistake."""

    def check(self, module: Module) -> Iterator[Violation]:
        if not module.is_package_init:
            return
        all_node = _find_all_assignment(module.tree)
        if all_node is None:
            yield self.violation(
                module, module.tree,
                "package __init__.py does not declare __all__",
            )
            return
        names = _literal_names(all_node.value)
        if names is None:
            yield self.violation(
                module, all_node,
                "__all__ must be a literal list/tuple of string constants",
            )
            return
        bound = _bound_names(module.tree)
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                yield self.violation(
                    module, all_node, f"duplicate name {name!r} in __all__"
                )
            seen.add(name)
            if name not in bound:
                yield self.violation(
                    module, all_node,
                    f"__all__ exports {name!r} but the module never binds it",
                )


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _literal_names(value: ast.expr) -> Optional[List[str]]:
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names: List[str] = []
    for element in value.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _bound_names(tree: ast.Module) -> Set[str]:
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version gates, optional imports)
            # still bind names on some path; recurse one level.
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(child.name)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        bound.update(_target_names(target))
    return bound


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()
