"""Interval-cache sizing is configurable and flows through construction.

One ``interval_cache_maxsize`` argument at :class:`ProbabilisticSystem`
construction bounds the LRU of every space the analysis builds -- the
per-adversary run spaces and the induced sample spaces -- and derived
spaces (``condition``/``coarsen``/``product``) inherit their parent's
bound.  ``None`` keeps the class default.
"""

from fractions import Fraction

import pytest

from repro.core import ProbabilityAssignment, standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.probability import FiniteProbabilitySpace
from repro.trees import ProbabilisticSystem


def small_space(maxsize=None):
    atoms = [frozenset({0, 1}), frozenset({2, 3}), frozenset({4})]
    probabilities = {
        atoms[0]: Fraction(2, 5),
        atoms[1]: Fraction(2, 5),
        atoms[2]: Fraction(1, 5),
    }
    return FiniteProbabilitySpace(
        atoms, probabilities, interval_cache_maxsize=maxsize
    )


class TestSpaceLevel:
    def test_default_is_class_default(self):
        space = small_space()
        assert space.interval_cache_maxsize is None
        assert space._interval_cache.maxsize == space.interval_cache_size

    def test_override_sizes_the_cache(self):
        space = small_space(maxsize=7)
        assert space.interval_cache_maxsize == 7
        assert space._interval_cache.maxsize == 7

    def test_too_small_is_rejected(self):
        with pytest.raises(ValueError):
            small_space(maxsize=0)

    def test_tiny_cache_evicts_but_stays_exact(self):
        space = small_space(maxsize=1)
        queries = [frozenset({0, 1}), frozenset({2, 3}), frozenset({0})]
        first = [space.measure_interval(event) for event in queries]
        # every re-query misses the one-entry cache; values cannot drift
        assert [space.measure_interval(event) for event in queries] == first
        stats = space._interval_cache.stats()
        assert stats["maxsize"] == 1
        assert stats["evictions"] > 0

    def test_derived_spaces_inherit_the_bound(self):
        space = small_space(maxsize=7)
        assert space.condition(frozenset({0, 1})).interval_cache_maxsize == 7
        coarse = space.coarsen([frozenset({0, 1, 2, 3}), frozenset({4})])
        assert coarse.interval_cache_maxsize == 7
        assert space.product(small_space()).interval_cache_maxsize == 7

    def test_from_point_masses_accepts_the_bound(self):
        space = FiniteProbabilitySpace.from_point_masses(
            {"a": Fraction(1, 2), "b": Fraction(1, 2)},
            interval_cache_maxsize=3,
        )
        assert space.interval_cache_maxsize == 3


class TestSystemLevel:
    def test_run_spaces_carry_the_system_bound(self):
        example = three_agent_coin_system()
        psys = ProbabilisticSystem(
            example.psys.trees, interval_cache_maxsize=11
        )
        assert psys.interval_cache_maxsize == 11
        for adversary in psys.adversaries:
            assert psys.run_space(adversary).interval_cache_maxsize == 11

    def test_induced_point_spaces_inherit(self):
        example = three_agent_coin_system()
        psys = ProbabilisticSystem(
            example.psys.trees, interval_cache_maxsize=13
        )
        post = standard_assignments(psys)["post"]
        point = next(iter(psys.system.points))
        assert post.space(0, point).interval_cache_maxsize == 13

    def test_default_none_flows_through(self):
        example = three_agent_coin_system()
        assert example.psys.interval_cache_maxsize is None
        post = standard_assignments(example.psys)["post"]
        point = next(iter(example.psys.system.points))
        space = post.space(0, point)
        assert space.interval_cache_maxsize is None
        assert space._interval_cache.maxsize == space.interval_cache_size

    def test_values_identical_under_any_bound(self):
        example = three_agent_coin_system()
        default = standard_assignments(example.psys)["post"]
        bounded_psys = ProbabilisticSystem(
            example.psys.trees, interval_cache_maxsize=1
        )
        bounded = ProbabilityAssignment(
            standard_assignments(bounded_psys)["post"].ssa
        )
        for point in list(example.psys.system.points)[:4]:
            assert default.probability(
                0, point, example.heads
            ) == bounded.probability(0, point, example.heads)
