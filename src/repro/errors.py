"""Exception hierarchy shared by every subsystem of the reproduction.

Keeping the exceptions in one flat module lets callers catch broad classes
(``ReproError``) or precise ones (``NotMeasurableError``) without importing
the subsystem that raised them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ProbabilityError(ReproError):
    """Base class for errors raised by the measure-theory substrate."""


class NotMeasurableError(ProbabilityError):
    """An event (or random variable) is not measurable in the given space.

    The paper handles non-measurable events with inner and outer measures
    (Section 5 and Section 7); this error signals that a caller asked for an
    exact probability where only bounds exist.
    """


class NotAPartitionError(ProbabilityError):
    """A proposed atom collection does not partition the sample space."""


class BackendError(ProbabilityError):
    """A mask-level operation was requested from a space built on the
    naive (frozenset) measure backend, which carries no outcome index."""


class InvalidMeasureError(ProbabilityError):
    """Atom probabilities are negative or do not sum to one."""


class ZeroMeasureConditioningError(ProbabilityError):
    """Conditioning on an event of measure zero is undefined."""


class ModelError(ReproError):
    """Base class for errors in the runs/points/knowledge model."""


class SynchronyError(ModelError):
    """An operation that requires a synchronous system was applied to an
    asynchronous one (or vice versa)."""


class TreeError(ReproError):
    """Base class for errors in the computation-tree substrate."""


class TechnicalAssumptionError(TreeError):
    """The paper's technical assumption is violated: the environment state
    must encode the adversary and the full history, so a global state may
    appear in at most one computation tree and at most once per tree."""


class AssignmentError(ReproError):
    """Base class for errors about sample-space / probability assignments."""


class Req1Error(AssignmentError):
    """REQ1 violated: a sample space contains points from more than one
    computation tree (Section 5)."""


class Req2Error(AssignmentError):
    """REQ2 violated: the runs through a sample space are not a measurable
    set of positive measure (Section 5)."""


class LogicError(ReproError):
    """Base class for errors in the logic L(Phi)."""


class ParseError(LogicError):
    """A formula string could not be parsed."""


class BettingError(ReproError):
    """Base class for errors in the betting-game engine."""


class SimulationError(ReproError):
    """Base class for errors in the distributed-system simulator."""


class ValidationError(ReproError):
    """A structural invariant of the paper failed a runtime validation pass.

    Raised by :meth:`repro.robustness.validate.ValidationReport.raise_if_failed`
    with the *aggregated* list of violations (never just the first): atom
    probabilities summing to one and algebra closure (Section 3), the
    technical assumption on computation trees (Section 4), and REQ1/REQ2
    on sample-space assignments (Section 5).
    """

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        #: The aggregated ``InvariantViolation`` records behind the message.
        self.violations = tuple(violations)


class ExecutionError(ReproError):
    """Base class for terminal failures of the fault-tolerant sweep engine.

    The Proposition 11 guarantee sweeps (Section 8) are exact computations:
    a task either returns its exact Fractions or the engine must say
    precisely which task failed and how.  Instances carry the failing
    task's identity (``task_index``, ``task``) and the full attempt log
    (a tuple of ``repro.robustness.engine.TaskAttempt`` records).
    """

    def __init__(
        self,
        message: str,
        task_index=None,
        task=None,
        attempts: tuple = (),
    ) -> None:
        super().__init__(message)
        #: Position of the failing task in the deterministic task list.
        self.task_index = task_index
        #: The task value itself (e.g. a ``SweepTask`` tuple).
        self.task = task
        #: Chronological ``TaskAttempt`` records, one per try.
        self.attempts = tuple(attempts)


class RetryExhaustedError(ExecutionError):
    """A task kept failing after the retry policy's bounded attempts.

    The engine behind the Proposition 11 sweeps (Section 8) retries failed
    tasks with deterministic exponential backoff; when the final attempt
    still raises (or its worker is lost), this terminal error reports the
    task identity and every recorded attempt instead of silently re-running
    the whole sweep.
    """


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task timeout on its final permitted attempt.

    Sweep tasks (Section 8, Proposition 11) build finite systems and must
    terminate; a timeout means the task is stuck, not slow, so the engine
    abandons its worker and -- once retries are exhausted -- surfaces the
    task identity and attempt log rather than hanging the sweep.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint file disagrees with the task list resuming it.

    Checkpoint rows record each task's fingerprint (protocol, messengers,
    loss, epsilon -- the sweep coordinates of Section 8); resuming against
    different parameters would silently splice rows from two different
    sweeps, so the mismatch is an error.
    """


class TraceError(ReproError):
    """A trace file does not conform to the ``repro-trace/1`` schema.

    Raised when a reader (``tools/tracereport``,
    :func:`repro.obs.trace.read_trace` in strict mode) is handed a file
    whose header is missing or names a different schema, so a report is
    never silently folded from a file that was not produced by a
    :class:`repro.obs.trace.TraceRecorder`.
    """


class MetricsError(ReproError):
    """A metrics artifact does not conform to the ``repro-metrics/1`` schema.

    Raised when a reader (``tools/tracereport --metrics``,
    ``tools/reprotop``, :func:`repro.obs.snapshot.read_snapshots`) is
    handed a file whose header is missing or names a different schema,
    or whose records are not well-formed snapshots, so a worker-merged
    counter report is never silently folded from a file that was not
    produced by :mod:`repro.obs.snapshot`.
    """


class AuditError(ReproError):
    """An audit bundle does not conform to ``repro-audit/1`` or fails its
    hash chain.

    Raised by the readers and verifiers of :mod:`repro.obs.audit` when a
    bundle's header is missing or names a foreign schema, when a record
    is structurally malformed, or -- through the verification report --
    when a recomputed leaf hash, chain link, or derivation-node
    fingerprint disagrees with what the bundle recorded, so a sweep is
    never certified from a file that was tampered with or that
    :class:`repro.obs.audit.AuditBundleWriter` did not produce.
    """


class ProvenanceError(ReproError):
    """A derivation payload does not conform to the ``repro-explain/1`` schema.

    Raised when a reader (``tools/tracediff``,
    :func:`repro.obs.provenance.derivation_from_json`) is handed a payload
    whose schema marker is missing or wrong, or whose node structure is not
    a well-formed derivation tree, so a report is never silently built from
    a file that was not produced by ``Model.explain``.
    """


class WorkerTaskError(ReproError):
    """A task raised inside a worker process and the original exception
    could not cross the process boundary (it was unpicklable).

    Carries the worker-side ``repr`` summary of the original error so the
    failure stays attributable even when the exception object itself
    cannot be shipped back.
    """
