"""Distribution constructors."""

from fractions import Fraction

import pytest

from repro.errors import InvalidMeasureError
from repro.probability import (
    at_least_one_survives,
    bernoulli,
    biased_coin,
    binomial_survivors,
    fair_coin,
    joint,
    point_mass,
    sequences,
    space_of,
    uniform_choice,
    weighted,
)


def total(distribution):
    return sum(probability for probability, _ in distribution)


class TestBasicConstructors:
    def test_point_mass(self):
        assert point_mass("x") == [(Fraction(1), "x")]

    def test_fair_coin(self):
        distribution = fair_coin()
        assert total(distribution) == 1
        assert {value for _, value in distribution} == {"heads", "tails"}

    def test_bernoulli_degenerate_one(self):
        assert bernoulli(1, "s", "f") == [(Fraction(1), "s")]

    def test_bernoulli_degenerate_zero(self):
        assert bernoulli(0, "s", "f") == [(Fraction(1), "f")]

    def test_bernoulli_out_of_range(self):
        with pytest.raises(InvalidMeasureError):
            bernoulli("3/2")

    def test_biased_coin(self):
        distribution = biased_coin("2/3")
        assert dict((value, probability) for probability, value in distribution) == {
            "heads": Fraction(2, 3),
            "tails": Fraction(1, 3),
        }

    def test_uniform_choice(self):
        distribution = uniform_choice(range(1, 7))
        assert total(distribution) == 1
        assert all(probability == Fraction(1, 6) for probability, _ in distribution)

    def test_uniform_choice_empty(self):
        with pytest.raises(InvalidMeasureError):
            uniform_choice([])

    def test_weighted_validates_sum(self):
        with pytest.raises(InvalidMeasureError):
            weighted([(Fraction(1, 2), "a")])

    def test_weighted_drops_zero_branches(self):
        distribution = weighted([(1, "a"), (0, "b")])
        assert distribution == [(Fraction(1), "a")]

    def test_weighted_negative_rejected(self):
        with pytest.raises(InvalidMeasureError):
            weighted([(Fraction(3, 2), "a"), (Fraction(-1, 2), "b")])


class TestCombinators:
    def test_joint_independent_product(self):
        pair = joint(fair_coin(), fair_coin())
        assert total(pair) == 1
        assert len(pair) == 4
        assert all(probability == Fraction(1, 4) for probability, _ in pair)

    def test_sequences_length(self):
        triples = sequences(fair_coin(), 3)
        assert len(triples) == 8
        assert all(len(value) == 3 for _, value in triples)

    def test_space_of_merges_duplicates(self):
        distribution = [(Fraction(1, 2), "x"), (Fraction(1, 2), "x")]
        space = space_of(distribution)
        assert space.measure({"x"}) == 1


class TestChannelsMath:
    def test_binomial_survivors_total(self):
        assert total(binomial_survivors(10, Fraction(1, 2))) == 1

    def test_binomial_survivors_extremes(self):
        distribution = dict(
            (value, probability)
            for probability, value in binomial_survivors(10, Fraction(1, 2))
        )
        assert distribution[0] == Fraction(1, 1024)
        assert distribution[10] == Fraction(1, 1024)

    def test_binomial_survivors_symmetry(self):
        distribution = dict(
            (value, probability)
            for probability, value in binomial_survivors(6, Fraction(1, 2))
        )
        for k in range(7):
            assert distribution[k] == distribution[6 - k]

    def test_at_least_one_survives_matches_paper(self):
        # Ten messengers, loss 1/2: delivery probability 1 - 2**-10.
        distribution = dict(
            (value, probability)
            for probability, value in at_least_one_survives(10, Fraction(1, 2))
        )
        assert distribution[True] == 1 - Fraction(1, 1024)
        assert distribution[False] == Fraction(1, 1024)

    def test_at_least_one_agrees_with_binomial(self):
        fine = dict(
            (value, probability)
            for probability, value in binomial_survivors(7, Fraction(1, 3))
        )
        coarse = dict(
            (value, probability)
            for probability, value in at_least_one_survives(7, Fraction(1, 3))
        )
        assert coarse[False] == fine[0]
        assert coarse[True] == sum(fine[k] for k in range(1, 8))
