"""reproflow analysis driver: files -> summaries -> program -> findings.

Mirrors the reprolint engine's contract: parse failures become RL000
violations (the run continues), suppression comments are honoured
centrally (both ``# reprolint:`` and ``# reproflow:`` tags), and the
suppression audit distinguishes unknown rule ids from stale waivers.
This tier judges staleness only for its own rule ids (RL009-RL012) --
intra-file ids are the other tier's business, exactly dual to how
reprolint treats :data:`~tools.reprolint.model.FLOW_RULE_IDS`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..reprolint.engine import (
    SuppressionWarning,
    iter_python_files,
    tool_error_violation,
)
from ..reprolint.model import (
    FLOW_RULE_IDS,
    TOOL_ERROR_RULE_ID,
    SuppressionDecl,
    Suppressions,
    Violation,
)
from . import rules as _rules  # noqa: F401  (populates FLOW_REGISTRY)
from .cache import SummaryCache
from .extract import extract_module, sha256_of
from .program import Program
from .rules.base import FLOW_REGISTRY


@dataclass
class FlowReport:
    """Everything one analyzer run learned."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    unknown_suppressions: List[SuppressionWarning] = field(default_factory=list)
    stale_suppressions: List[SuppressionWarning] = field(default_factory=list)
    program: Optional[Program] = None
    #: path -> sha256 of every analyzed file (for the report artifact).
    file_hashes: Dict[str, str] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


def package_identity(path: str) -> Tuple[str, Tuple[str, ...]]:
    """``(root_package, rel_parts)`` for a file, walking ``__init__.py``
    ancestry exactly like reprolint's loader."""
    directory = os.path.dirname(os.path.abspath(path))
    package_dirs: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        package_dirs.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    package_dirs.reverse()
    stem = os.path.splitext(os.path.basename(path))[0]
    if package_dirs:
        return package_dirs[0], tuple(package_dirs[1:]) + (stem,)
    return "", (stem,)


def _suppressions_from_summary(summary: Dict[str, object]) -> Suppressions:
    """Rebuild the reprolint suppression object from a (possibly cached)
    summary, so waivers are honoured without re-reading the file."""
    suppressions = Suppressions()
    for decl in summary.get("suppressions", []):  # type: ignore[union-attr]
        parsed = SuppressionDecl(
            rule_id=str(decl["rule_id"]),
            line=int(decl["line"]),
            scope=str(decl["scope"]),
        )
        suppressions.declarations.append(parsed)
        if parsed.scope == "file":
            suppressions.file_wide.add(parsed.rule_id)
        else:
            suppressions.by_line.setdefault(parsed.line, set()).add(parsed.rule_id)
    return suppressions


def analyze_paths(
    paths: Sequence[str], cache: Optional[SummaryCache] = None
) -> FlowReport:
    """Run the whole-program analysis over every file under ``paths``."""
    report = FlowReport()
    summaries: List[Dict[str, object]] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
            sha = sha256_of(raw)
            report.file_hashes[path] = sha
            summary = cache.get(path, sha) if cache is not None else None
            if summary is None:
                root_package, rel_parts = package_identity(path)
                summary = extract_module(
                    path, raw.decode("utf-8"), rel_parts, root_package
                )
                if cache is not None:
                    cache.put(path, sha, summary)
        except (OSError, SyntaxError, ValueError) as exc:
            report.violations.append(tool_error_violation(path, exc))
            continue
        summaries.append(summary)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.save()
    program = Program.build(summaries)
    report.program = program
    suppressions_by_path: Dict[str, Suppressions] = {
        str(summary["path"]): _suppressions_from_summary(summary)
        for summary in summaries
    }
    raw_violations: List[Violation] = []
    for rule in FLOW_REGISTRY.all_rules():
        raw_violations.extend(rule.check_program(program))
    for violation in raw_violations:
        suppressions = suppressions_by_path.get(violation.path)
        if suppressions is not None and suppressions.suppresses(violation):
            report.suppressed.append(violation)
        else:
            report.violations.append(violation)
    # Suppression audit: unknown ids always warn; staleness is judged
    # only for this tier's own rule ids, after the whole run.
    known_rule_ids = (
        set(FLOW_REGISTRY.rule_ids()) | FLOW_RULE_IDS | {TOOL_ERROR_RULE_ID}
    )
    for path in sorted(suppressions_by_path):
        suppressions = suppressions_by_path[path]
        stale_keys = {decl.key() for decl in suppressions.stale_declarations()}
        for decl in suppressions.declarations:
            if decl.rule_id not in known_rule_ids and decl.rule_id not in {
                rule.rule_id for rule in _intra_file_rules()
            }:
                report.unknown_suppressions.append(
                    SuppressionWarning(
                        path=path,
                        line=decl.line,
                        rule_id=decl.rule_id,
                        kind="unknown-rule",
                        message=(
                            f"suppression names unknown rule {decl.rule_id!r} "
                            "and waives nothing (typo?)"
                        ),
                    )
                )
            elif decl.rule_id in FLOW_RULE_IDS and decl.key() in stale_keys:
                scope = "file-wide" if decl.scope == "file" else "line-scoped"
                report.stale_suppressions.append(
                    SuppressionWarning(
                        path=path,
                        line=decl.line,
                        rule_id=decl.rule_id,
                        kind="stale",
                        message=(
                            f"{scope} suppression of {decl.rule_id} matched no "
                            "violation; delete it (the finding it waived is gone)"
                        ),
                    )
                )
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    report.suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    report.unknown_suppressions.sort(key=lambda w: (w.path, w.line, w.rule_id))
    report.stale_suppressions.sort(key=lambda w: (w.path, w.line, w.rule_id))
    return report


def _intra_file_rules():
    from ..reprolint.registry import all_rules

    return all_rules()


__all__ = ["FlowReport", "analyze_paths", "package_identity"]
