"""Executable axiom checking for the logic of knowledge and probability.

The paper leans on the Fagin-Halpern [FH88] axiomatics (and the S5
properties of possible-worlds knowledge from [HM90]).  This module provides
validity checkers for the schemes most relevant to the paper, instantiated
over a model's primitive propositions:

Knowledge (S5):
  K   -- ``K_i(phi -> psi) -> (K_i phi -> K_i psi)``       (distribution)
  T   -- ``K_i phi -> phi``                                 (veridicality)
  4   -- ``K_i phi -> K_i K_i phi``                         (positive introspection)
  5   -- ``!K_i phi -> K_i !K_i phi``                       (negative introspection)

Probability (inner-measure semantics):
  W1  -- ``Pr_i(true) >= 1``
  W2  -- ``Pr_i(phi) >= 0``  (trivially; kept for completeness)
  MONO -- if ``phi -> psi`` is valid then ``Pr_i(phi) >= a -> Pr_i(psi) >= a``
  SUPER -- disjoint superadditivity of the inner measure:
        ``Pr_i(phi & psi) >= a  &  Pr_i(phi & !psi) >= b  ->  Pr_i(phi) >= a+b``
  CONS -- ``K_i phi -> Pr_i(phi) >= 1``  (consistent assignments only)

These are *checkers*, not provers: each instantiates the scheme over the
supplied formulas and model-checks the result, reporting any failing
instance.  The additivity axiom of [FH88] (an equality) holds only for
measurable facts; SUPER is the inequality form valid for inner measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..probability.fractionutil import FractionLike, ONE, ZERO, as_fraction
from .semantics import Model
from .syntax import (
    TRUE,
    And,
    Formula,
    Implies,
    Knows,
    Not,
    Or,
    PrAtLeast,
)


@dataclass
class AxiomReport:
    """Validity verdict for one axiom scheme over a formula family."""

    name: str
    instances: int
    failures: List[Formula] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.valid


def _check(model: Model, name: str, instances: Iterable[Formula]) -> AxiomReport:
    report = AxiomReport(name, 0)
    for instance in instances:
        report.instances += 1
        if not model.valid(instance):
            report.failures.append(instance)
    return report


def check_distribution(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """Axiom K over all ordered pairs of the given formulas."""
    instances = [
        Implies(
            Knows(agent, Implies(left, right)),
            Implies(Knows(agent, left), Knows(agent, right)),
        )
        for agent in agents
        for left in formulas
        for right in formulas
    ]
    return _check(model, "K (distribution)", instances)

def check_veridicality(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """Axiom T: knowledge is true."""
    instances = [
        Implies(Knows(agent, formula), formula)
        for agent in agents
        for formula in formulas
    ]
    return _check(model, "T (veridicality)", instances)


def check_positive_introspection(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """Axiom 4."""
    instances = [
        Implies(Knows(agent, formula), Knows(agent, Knows(agent, formula)))
        for agent in agents
        for formula in formulas
    ]
    return _check(model, "4 (positive introspection)", instances)


def check_negative_introspection(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """Axiom 5."""
    instances = [
        Implies(
            Not(Knows(agent, formula)),
            Knows(agent, Not(Knows(agent, formula))),
        )
        for agent in agents
        for formula in formulas
    ]
    return _check(model, "5 (negative introspection)", instances)


def check_probability_bounds(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """W1/W2: the trivial bounds of the probability operator."""
    instances: List[Formula] = []
    for agent in agents:
        instances.append(PrAtLeast(agent, TRUE, ONE))
        for formula in formulas:
            instances.append(PrAtLeast(agent, formula, ZERO))
    return _check(model, "W1/W2 (bounds)", instances)


def check_monotonicity(
    model: Model,
    agents: Sequence[int],
    formulas: Sequence[Formula],
    alphas: Sequence[FractionLike] = ("1/2",),
) -> AxiomReport:
    """MONO: valid implication lifts through ``Pr_i >= a``.

    Only semantically-valid implications ``phi -> psi`` instantiate the
    scheme (the rule has a validity premise).
    """
    thresholds = [as_fraction(alpha) for alpha in alphas]
    instances: List[Formula] = []
    for left in formulas:
        for right in formulas:
            if not model.valid(Implies(left, right)):
                continue
            for agent in agents:
                for alpha in thresholds:
                    instances.append(
                        Implies(
                            PrAtLeast(agent, left, alpha),
                            PrAtLeast(agent, right, alpha),
                        )
                    )
    return _check(model, "MONO", instances)


def check_superadditivity(
    model: Model,
    agents: Sequence[int],
    formulas: Sequence[Formula],
    alphas: Sequence[FractionLike] = ("1/4", "1/2"),
) -> AxiomReport:
    """SUPER: inner measures are superadditive on disjoint pieces."""
    thresholds = [as_fraction(alpha) for alpha in alphas]
    instances: List[Formula] = []
    for agent in agents:
        for phi in formulas:
            for psi in formulas:
                for a in thresholds:
                    for b in thresholds:
                        if a + b > 1:
                            continue
                        instances.append(
                            Implies(
                                And(
                                    PrAtLeast(agent, And(phi, psi), a),
                                    PrAtLeast(agent, And(phi, Not(psi)), b),
                                ),
                                PrAtLeast(agent, phi, a + b),
                            )
                        )
    return _check(model, "SUPER", instances)


def check_consistency_axiom(
    model: Model, agents: Sequence[int], formulas: Sequence[Formula]
) -> AxiomReport:
    """CONS: ``K_i phi -> Pr_i(phi) = 1``; characterises consistency.

    Valid exactly when the probability assignment is consistent
    (``S_ic subseteq K_i(c)``) -- Section 5's observation, so this checker
    doubles as a semantic consistency test.
    """
    instances = [
        Implies(Knows(agent, formula), PrAtLeast(agent, formula, ONE))
        for agent in agents
        for formula in formulas
    ]
    return _check(model, "CONS", instances)


def full_audit(
    model: Model,
    agents: Sequence[int],
    formulas: Sequence[Formula],
) -> List[AxiomReport]:
    """Run every checker; CONS is expected to fail for P_prior-style models."""
    return [
        check_distribution(model, agents, formulas),
        check_veridicality(model, agents, formulas),
        check_positive_introspection(model, agents, formulas),
        check_negative_introspection(model, agents, formulas),
        check_probability_bounds(model, agents, formulas),
        check_monotonicity(model, agents, formulas),
        check_superadditivity(model, agents, formulas),
        check_consistency_axiom(model, agents, formulas),
    ]
