"""Rule modules.  Importing this package populates the registry.

To add a rule: create ``rlNNN_short_name.py`` defining a ``Rule``
subclass decorated with ``@register``, then import it here.
"""

from . import (  # noqa: F401  (imported for the registration side effect)
    rl001_exact_arithmetic,
    rl002_layering,
    rl003_traceability,
    rl004_mutable_defaults,
    rl005_bare_except,
    rl006_public_api,
    rl007_error_hierarchy,
    rl008_clock_quarantine,
)

__all__ = [
    "rl001_exact_arithmetic",
    "rl002_layering",
    "rl003_traceability",
    "rl004_mutable_defaults",
    "rl005_bare_except",
    "rl006_public_api",
    "rl007_error_hierarchy",
    "rl008_clock_quarantine",
]
