"""FiniteProbabilitySpace: measure, inner/outer, conditioning, expectation."""

from fractions import Fraction

import pytest

from repro.errors import (
    InvalidMeasureError,
    NotMeasurableError,
    ZeroMeasureConditioningError,
)
from repro.probability import FiniteProbabilitySpace, indicator, scaled_indicator


@pytest.fixture
def die():
    return FiniteProbabilitySpace.uniform(range(1, 7))


@pytest.fixture
def coarse():
    """Outcomes 1..6 with atoms {1,2,3} and {4,5,6} (the die's S2 view)."""
    return FiniteProbabilitySpace.from_atoms(
        [{1, 2, 3}, {4, 5, 6}], [Fraction(1, 2), Fraction(1, 2)]
    )


class TestConstruction:
    def test_point_masses(self):
        space = FiniteProbabilitySpace.from_point_masses(
            {"h": Fraction(1, 2), "t": Fraction(1, 2)}
        )
        assert space.has_powerset_algebra()
        assert len(space) == 2

    def test_masses_must_sum_to_one(self):
        with pytest.raises(InvalidMeasureError):
            FiniteProbabilitySpace.from_point_masses({"h": Fraction(1, 3)})

    def test_negative_mass_rejected(self):
        with pytest.raises(InvalidMeasureError):
            FiniteProbabilitySpace.from_point_masses(
                {"h": Fraction(3, 2), "t": Fraction(-1, 2)}
            )

    def test_uniform_empty_rejected(self):
        with pytest.raises(InvalidMeasureError):
            FiniteProbabilitySpace.uniform([])

    def test_missing_atom_probability_rejected(self):
        with pytest.raises(InvalidMeasureError):
            FiniteProbabilitySpace([frozenset("ab")], {})

    def test_from_atoms_length_mismatch(self):
        with pytest.raises(InvalidMeasureError):
            FiniteProbabilitySpace.from_atoms([{1}, {2}], [Fraction(1)])


class TestMeasure:
    def test_full_space(self, die):
        assert die.measure(die.outcomes) == 1

    def test_subset(self, die):
        assert die.measure({2, 4, 6}) == Fraction(1, 2)

    def test_empty(self, die):
        assert die.measure(frozenset()) == 0

    def test_escaping_event_rejected(self, die):
        with pytest.raises(NotMeasurableError):
            die.measure({7})

    def test_atom_splitting_event_rejected(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.measure({2, 4, 6})

    def test_is_measurable(self, coarse):
        assert coarse.is_measurable({1, 2, 3})
        assert not coarse.is_measurable({1, 2})
        assert not coarse.is_measurable({0})

    def test_atom_lookup(self, coarse):
        assert coarse.atom_containing(2) == frozenset({1, 2, 3})
        assert coarse.atom_probability(frozenset({1, 2, 3})) == Fraction(1, 2)

    def test_atom_lookup_failures(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.atom_containing(9)
        with pytest.raises(NotMeasurableError):
            coarse.atom_probability(frozenset({1, 2}))


class TestInnerOuter:
    def test_measurable_event_inner_equals_outer(self, coarse):
        event = {1, 2, 3}
        assert coarse.inner_measure(event) == coarse.outer_measure(event)

    def test_nonmeasurable_bounds(self, coarse):
        event = {2, 4, 6}  # splits both atoms
        assert coarse.inner_measure(event) == 0
        assert coarse.outer_measure(event) == 1

    def test_partial_split(self, coarse):
        event = {1, 2, 3, 4}  # contains one atom, splits the other
        assert coarse.inner_measure(event) == Fraction(1, 2)
        assert coarse.outer_measure(event) == 1

    def test_duality(self, coarse):
        # mu_*(E) = 1 - mu^*(complement) -- the identity Section 5 states.
        for event in ({2, 4, 6}, {1, 2, 3, 4}, {1}, set()):
            complement = coarse.outcomes - frozenset(event)
            assert coarse.inner_measure(event) == 1 - coarse.outer_measure(complement)

    def test_interval_pair(self, coarse):
        inner, outer = coarse.measure_interval({1, 2, 3, 4})
        assert (inner, outer) == (Fraction(1, 2), Fraction(1))

    def test_monotonicity(self, coarse):
        small, large = {2}, {2, 4, 1}
        assert coarse.inner_measure(small) <= coarse.inner_measure(large)
        assert coarse.outer_measure(small) <= coarse.outer_measure(large)


class TestConditioning:
    def test_conditional_distribution(self, die):
        conditioned = die.condition({2, 4, 6})
        assert conditioned.measure({2}) == Fraction(1, 3)
        assert conditioned.outcomes == frozenset({2, 4, 6})

    def test_zero_measure_rejected(self):
        space = FiniteProbabilitySpace.from_point_masses(
            {"h": Fraction(1), "t": Fraction(0)}
        )
        with pytest.raises(ZeroMeasureConditioningError):
            space.condition({"t"})

    def test_nonmeasurable_condition_rejected(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.condition({1, 2})

    def test_conditional_probability_value(self, die):
        assert die.conditional_probability({2}, {2, 4, 6}) == Fraction(1, 3)

    def test_chain_rule(self, die):
        # mu(A & B) = mu(B) * mu(A | B)
        a, b = frozenset({1, 2}), frozenset({2, 3, 4})
        assert die.measure(a & b) == die.measure(b) * die.conditional_probability(a, b)


class TestExpectation:
    def test_expectation_uniform_die(self, die):
        assert die.expectation(lambda face: Fraction(face)) == Fraction(7, 2)

    def test_expectation_requires_measurability(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.expectation(lambda outcome: Fraction(outcome))

    def test_is_measurable_variable(self, coarse):
        assert coarse.is_measurable_variable(lambda outcome: Fraction(outcome <= 3))
        assert not coarse.is_measurable_variable(lambda outcome: Fraction(outcome))

    def test_inner_outer_expectation_two_valued(self, coarse):
        # X = 1 on {2,4,6}, 0 elsewhere: non-measurable.
        variable = scaled_indicator({2, 4, 6}, 1, 0)
        assert coarse.inner_expectation(variable) == 0
        assert coarse.outer_expectation(variable) == 1

    def test_inner_expectation_matches_formula(self, coarse):
        # X = 3 on {1,2,3,4}, -1 elsewhere: E_* = 3 mu_*(X=3) - 1 mu^*(X=-1)
        variable = scaled_indicator({1, 2, 3, 4}, 3, -1)
        expected = 3 * coarse.inner_measure({1, 2, 3, 4}) + (-1) * coarse.outer_measure(
            {5, 6}
        )
        assert coarse.inner_expectation(variable) == expected

    def test_constant_variable(self, coarse):
        assert coarse.inner_expectation(lambda _: Fraction(5)) == 5
        assert coarse.outer_expectation(lambda _: Fraction(5)) == 5

    def test_three_valued_rejected_by_b2_form(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.inner_expectation(lambda outcome: Fraction(outcome % 3))

    def test_lower_expectation_generalises(self, coarse):
        # For two-valued variables lower == inner (Appendix B.2 agreement).
        variable = scaled_indicator({2, 4, 6}, 2, -1)
        assert coarse.lower_expectation(variable) == coarse.inner_expectation(variable)
        assert coarse.upper_expectation(variable) == coarse.outer_expectation(variable)

    def test_lower_expectation_measurable_agrees_exact(self, die):
        variable = lambda face: Fraction(face)
        assert die.lower_expectation(variable) == die.expectation(variable)
        assert die.upper_expectation(variable) == die.expectation(variable)

    def test_lower_expectation_three_valued(self, coarse):
        # X = outcome mod 3 on atoms {1,2,3}, {4,5,6}: mins are 0 and 0.
        variable = lambda outcome: Fraction(outcome % 3)
        assert coarse.lower_expectation(variable) == 0
        assert coarse.upper_expectation(variable) == 2


class TestDerivedSpaces:
    def test_coarsen(self, die):
        coarse = die.coarsen([{1, 2, 3}, {4, 5, 6}])
        assert coarse.atom_probability(frozenset({1, 2, 3})) == Fraction(1, 2)
        assert not coarse.is_measurable({1})

    def test_coarsen_requires_measurable_blocks(self, coarse):
        with pytest.raises(NotMeasurableError):
            coarse.coarsen([{1, 2}, {3, 4, 5, 6}])

    def test_product(self):
        coin = FiniteProbabilitySpace.from_point_masses(
            {"h": Fraction(1, 2), "t": Fraction(1, 2)}
        )
        pair = coin.product(coin)
        assert pair.measure({("h", "h")}) == Fraction(1, 4)
        assert len(pair) == 4

    def test_extends(self, die, coarse):
        assert die.extends(coarse)
        assert not coarse.extends(die)

    def test_extends_requires_same_outcomes(self, die):
        other = FiniteProbabilitySpace.uniform(range(5))
        assert not die.extends(other)


class TestEventCells:
    def test_cells_partition_the_space(self, coarse):
        from repro.probability import CellMeasure

        cells = coarse.event_cells({1, 2, 5})
        assert all(isinstance(cell, CellMeasure) for cell in cells)
        assert sum((cell.measure for cell in cells), Fraction(0)) == 1
        assert len(cells) == 2

    def test_contained_cells_sum_to_inner_measure(self, coarse):
        event = {1, 2, 3, 5}
        cells = coarse.event_cells(event)
        contained = sum(
            (cell.measure for cell in cells if cell.contained), Fraction(0)
        )
        overlapping = sum(
            (cell.measure for cell in cells if cell.overlapping), Fraction(0)
        )
        inner, outer = coarse.measure_interval(event)
        assert contained == inner == Fraction(1, 2)
        assert overlapping == outer == 1

    def test_inner_witness_is_measurable_and_attains_the_bound(self, coarse):
        event = {1, 2, 3, 5}
        witness = coarse.inner_witness(event)
        assert witness <= set(event)
        assert coarse.is_measurable(witness)
        assert coarse.measure(witness) == coarse.inner_measure(event)

    def test_empty_event_has_no_contained_cells(self, die):
        cells = die.event_cells(set())
        assert not any(cell.contained for cell in cells)
        assert not any(cell.overlapping for cell in cells)
        assert die.inner_witness(set()) == frozenset()

    def test_powerset_algebra_cells_are_singletons(self, die):
        event = {2, 4}
        cells = die.event_cells(event)
        contained = [cell for cell in cells if cell.contained]
        assert {outcome for cell in contained for outcome in cell.outcomes} == event
