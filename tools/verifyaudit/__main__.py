"""Module entry point: ``python -m tools.verifyaudit``."""

import sys

from .cli import main

sys.exit(main())
