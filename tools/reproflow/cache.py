"""sha256-keyed cache of per-module extraction summaries.

Extraction (one AST walk per file) dominates analyzer runtime on a
clean tree, and its output depends only on the file's bytes -- so it is
cached keyed by content hash.  The cross-module fixpoint is *always*
recomputed from the (possibly cached) summaries: it depends on the set
of files analyzed, which the cache key cannot see, and it is cheap.

The cache file is plain JSON, invalidated wholesale when the schema or
extractor version changes, and safe to delete at any time (``make
clean`` does).  A corrupt or unreadable cache degrades to a cold run,
never to an error.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from .extract import EXTRACT_SCHEMA

CACHE_SCHEMA = "reproflow-cache/1"

DEFAULT_CACHE_PATH = ".reproflow-cache.json"


class SummaryCache:
    """Load/store extraction summaries keyed by ``(path, sha256)``."""

    def __init__(self, cache_path: Optional[str]) -> None:
        self.cache_path = cache_path
        self._entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        if cache_path is None or not os.path.exists(cache_path):
            return
        try:
            with open(cache_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return  # cold run; the save below rewrites it
        if (
            isinstance(data, dict)
            and data.get("schema") == CACHE_SCHEMA
            and data.get("extractor") == EXTRACT_SCHEMA
            and isinstance(data.get("modules"), dict)
        ):
            self._entries = data["modules"]

    def get(self, path: str, sha256: str) -> Optional[Dict[str, object]]:
        entry = self._entries.get(path)
        if entry is not None and entry.get("sha256") == sha256:
            self.hits += 1
            return entry.get("summary")  # type: ignore[return-value]
        self.misses += 1
        return None

    def put(self, path: str, sha256: str, summary: Dict[str, object]) -> None:
        self._entries[path] = {"sha256": sha256, "summary": summary}

    def save(self) -> None:
        if self.cache_path is None:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "extractor": EXTRACT_SCHEMA,
            "modules": {path: self._entries[path] for path in sorted(self._entries)},
        }
        try:
            with open(self.cache_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
        except OSError:
            pass  # a read-only checkout still analyzes fine


__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_PATH", "SummaryCache"]
