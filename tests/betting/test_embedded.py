"""Appendix B.3: the embedded betting game and Theorem 11."""

from fractions import Fraction

import pytest

from repro.betting import (
    EmbeddedSystem,
    build_embedded_system,
    constant_strategy,
    targeted_strategy,
    theorem11_closure,
    verify_theorem11,
)
from repro.core import Fact
from repro.errors import BettingError
from repro.examples_lib import three_agent_coin_system
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def embedded(coin):
    seeds = [constant_strategy(2, 2)]
    return build_embedded_system(coin.psys, 0, 2, seeds)


class TestConstruction:
    def test_doubles_the_horizon(self, coin, embedded):
        base_horizon = coin.psys.system.max_horizon()
        assert embedded.psys.system.max_horizon() == 2 * base_horizon

    def test_one_tree_per_strategy_per_base_tree(self, coin, embedded):
        assert len(embedded.psys.trees) == len(embedded.strategies) * len(
            coin.psys.trees
        )

    def test_run_probabilities_preserved(self, coin, embedded):
        base_tree = coin.psys.trees[0]
        base_probabilities = sorted(
            base_tree.run_probability(run) for run in base_tree.runs
        )
        for tree in embedded.psys.trees:
            assert sorted(tree.run_probability(run) for run in tree.runs) == (
                base_probabilities
            )

    def test_agent_state_carries_phase(self, coin, embedded):
        for point in embedded.psys.system.points:
            mine = point.local_state(0)
            assert isinstance(mine, tuple) and len(mine) == 2
            if point.time % 2 == 0:
                assert mine[1] == "?"
            else:
                assert mine[1] != "?"

    def test_opponent_state_unchanged_between_phases(self, coin, embedded):
        # p_j cannot tell 2m from 2m+1: its local state is phase-blind.
        for run in embedded.psys.system.runs:
            for time in range(0, run.horizon, 2):
                assert run.local_state(2, time) == run.local_state(2, time + 1)

    def test_needs_synchronous_base(self):
        from repro.errors import SynchronyError

        async_psys = random_psys(seed=61, depth=1, observability=("blind", "clock"))
        with pytest.raises(SynchronyError):
            EmbeddedSystem(async_psys, 0, 1, [constant_strategy(1, 2)])

    def test_needs_a_strategy(self, coin):
        with pytest.raises(BettingError):
            EmbeddedSystem(coin.psys, 0, 2, [])


class TestFactEmbedding:
    def test_truth_preserved_across_phases(self, coin, embedded):
        fact = embedded.embed_fact(coin.heads)
        for run in embedded.psys.system.runs:
            for time in range(0, run.horizon, 2):
                from repro.core import Point

                assert fact.holds_at(Point(run, time)) == fact.holds_at(
                    Point(run, time + 1)
                )

    def test_non_state_fact_rejected(self, coin, embedded):
        lone_point = coin.psys.system.points_at_time(0)[0]
        pointwise = Fact.from_points([lone_point])
        with pytest.raises(BettingError):
            embedded.embed_fact(pointwise)

    def test_phase_point_lookup(self, coin, embedded):
        base_point = coin.psys.system.points_at_time(1)[0]
        ask = embedded.phase_point(base_point, 0, 0)
        offered = embedded.phase_point(base_point, 0, 1)
        assert ask.time == 2 * base_point.time
        assert offered.time == 2 * base_point.time + 1


class TestClosure:
    def test_closure_contains_seeds(self, coin):
        seeds = [constant_strategy(2, 2)]
        closed = theorem11_closure(coin.psys, 2, seeds)
        assert seeds[0] in closed
        assert len(closed) > len(seeds)

    def test_closure_pins_all_realized_payoffs_everywhere(self, coin):
        from repro.betting import opponent_states

        seeds = [constant_strategy(2, 2)]
        closed = theorem11_closure(coin.psys, 2, seeds)
        locals_ = opponent_states(coin.psys.system, 2, coin.psys.system.points)
        for local in locals_:
            assert any(
                strategy.payoff(local) == Fraction(2) for strategy in closed
            )


class TestTheorem11:
    def test_constant_strategy_family(self, coin, embedded):
        report = verify_theorem11(embedded, coin.heads)
        assert report.holds, report.details

    def test_revealing_strategy_family(self, coin):
        tails_local = next(
            point.local_state(2)
            for point in coin.psys.system.points_at_time(1)
            if point.local_state(2)[0] == "saw-tails"
        )
        seeds = [
            constant_strategy(2, 2),
            targeted_strategy(2, [tails_local], 2, 100),
        ]
        embedded = build_embedded_system(coin.psys, 0, 2, seeds)
        report = verify_theorem11(embedded, coin.heads)
        assert report.holds, report.details

    def test_against_ignorant_opponent(self, coin):
        embedded = build_embedded_system(coin.psys, 0, 1, [constant_strategy(1, 3)])
        report = verify_theorem11(embedded, coin.heads)
        assert report.holds, report.details

    def test_random_system(self):
        psys = random_psys(seed=62, depth=2, observability=("clock", "full"))
        embedded = build_embedded_system(psys, 0, 1, [constant_strategy(1, 2)])
        report = verify_theorem11(embedded, parity_fact())
        assert report.holds, report.details

    def test_unclosed_family_can_fail(self, coin):
        # Without the closure, (c) can hold while (a)/(b) fail -- the payoff
        # leaks the outcome and P_post "learns" too much.  This documents why
        # theorem11_closure exists.
        tails_local = next(
            point.local_state(2)
            for point in coin.psys.system.points_at_time(1)
            if point.local_state(2)[0] == "saw-tails"
        )
        seeds = [
            constant_strategy(2, 2),
            targeted_strategy(2, [tails_local], 2, 100),
        ]
        embedded = build_embedded_system(
            coin.psys, 0, 2, seeds, close_family=False
        )
        report = verify_theorem11(embedded, coin.heads)
        assert not report.holds
