"""Data model shared by the reprolint engine and its rules.

A rule sees one :class:`Module` at a time: the parsed AST, the raw source,
and enough package metadata to decide which invariants apply (layering
needs the subpackage, traceability needs the module path, ...).
Suppressions are parsed once per file by the engine and honoured
centrally, so rules never need to know about them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Comment syntax: ``# reprolint: disable=RL001`` or ``=RL001,RL004``.
#: On a standalone comment line the suppression applies to the whole file;
#: as a trailing comment it applies to violations reported on that line.
#: ``# reproflow: disable=...`` is the same mechanism spelled for the
#: whole-program tier (tools/reproflow); both tools honour both tags --
#: the rule ids live in one namespace.
SUPPRESSION_RE = re.compile(r"#\s*repro(?:lint|flow):\s*disable=([A-Z0-9,\s]+)")

#: Diagnostic id reserved for tool-level failures (a file the analyzer
#: could not parse).  Not a registry rule and not suppressible: a file
#: that does not parse cannot be vouched for by any comment inside it.
TOOL_ERROR_RULE_ID = "RL000"

#: Rule ids owned by the whole-program tier (``tools/reproflow``).  The
#: intra-file tier must treat suppressions naming them as known -- never
#: "unknown rule id", never stale -- because only the flow tier can see
#: the violations they suppress.
FLOW_RULE_IDS = frozenset({"RL009", "RL010", "RL011", "RL012"})


@dataclass(frozen=True)
class Violation:
    """One diagnostic, addressable as ``path:line:col``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class SuppressionDecl:
    """One parsed suppression declaration, addressable for audits.

    ``scope`` is ``"file"`` for a standalone comment line (file-wide) or
    ``"line"`` for a trailing comment; ``line`` is where the comment sits
    either way.
    """

    rule_id: str
    line: int
    scope: str

    def key(self) -> Tuple[str, Optional[int]]:
        """The usage-tracking key :meth:`Suppressions.suppresses` marks."""
        return (self.rule_id, None if self.scope == "file" else self.line)


@dataclass
class Suppressions:
    """Per-file and per-line rule suppressions parsed from comments.

    Besides answering :meth:`suppresses`, the object tracks which
    declarations actually matched a violation (``used``), so the engine
    can report the stale ones -- a suppression that matches nothing is a
    fixed violation whose waiver should have been deleted, or a typo
    that silently waives nothing.
    """

    file_wide: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    declarations: List[SuppressionDecl] = field(default_factory=list)
    used: Set[Tuple[str, Optional[int]]] = field(default_factory=set)

    def suppresses(self, violation: Violation) -> bool:
        # File-wide wins first, mirroring how reviewers read the file:
        # a line-scoped duplicate of a file-wide waiver never fires and
        # is therefore reported as stale.
        if violation.rule_id in self.file_wide:
            self.used.add((violation.rule_id, None))
            return True
        if violation.rule_id in self.by_line.get(violation.line, set()):
            self.used.add((violation.rule_id, violation.line))
            return True
        return False

    def stale_declarations(self) -> List[SuppressionDecl]:
        """Declarations that suppressed nothing, in source order."""
        return [decl for decl in self.declarations if decl.key() not in self.used]


def parse_suppressions(source_lines: Sequence[str]) -> Suppressions:
    suppressions = Suppressions()
    for lineno, line in enumerate(source_lines, start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        before_comment = line[: line.index("#")].strip()
        scope = "line" if before_comment else "file"
        for rule_id in sorted(rules):
            suppressions.declarations.append(
                SuppressionDecl(rule_id=rule_id, line=lineno, scope=scope)
            )
        if before_comment:
            suppressions.by_line.setdefault(lineno, set()).update(rules)
        else:
            suppressions.file_wide.update(rules)
    return suppressions


@dataclass
class Module:
    """A parsed source file plus the package metadata rules care about."""

    #: Path exactly as it should appear in diagnostics.
    path: str
    #: Dotted module name relative to the scanned package root, e.g.
    #: ``("core", "cuts")`` for ``src/repro/core/cuts.py`` and
    #: ``("core", "__init__")`` for the package initialiser.
    rel_parts: Tuple[str, ...]
    tree: ast.Module
    source_lines: List[str]
    suppressions: Suppressions
    #: Name of the scanned package root (``"repro"``), used to recognise
    #: absolute imports of project modules.
    root_package: str = "repro"

    @property
    def subpackage(self) -> str:
        """First component under the package root (``""`` for top level)."""
        return self.rel_parts[0] if len(self.rel_parts) > 1 else ""

    @property
    def is_package_init(self) -> bool:
        return self.rel_parts[-1] == "__init__"

    def violation(
        self, node: ast.AST, rule_id: str, message: str
    ) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )


__all__ = [
    "FLOW_RULE_IDS",
    "Module",
    "SUPPRESSION_RE",
    "SuppressionDecl",
    "Suppressions",
    "TOOL_ERROR_RULE_ID",
    "Violation",
    "parse_suppressions",
]
