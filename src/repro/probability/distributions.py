"""Convenience constructors for the distributions the paper's examples use.

All constructors return lists of ``(probability, value)`` pairs -- the
"distribution" shape consumed by the computation-tree builder and the
synchronous simulator -- or :class:`FiniteProbabilitySpace` instances.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Hashable, Iterable, List, Sequence, Tuple

from ..errors import InvalidMeasureError
from .fractionutil import ONE, ZERO, FractionLike, as_fraction
from .space import FiniteProbabilitySpace

Branch = Tuple[Fraction, Hashable]
Distribution = List[Branch]


def point_mass(value: Hashable) -> Distribution:
    """The deterministic distribution on ``value``."""
    return [(ONE, value)]


def bernoulli(
    probability: FractionLike,
    success: Hashable = True,
    failure: Hashable = False,
) -> Distribution:
    """A two-outcome distribution; degenerate probabilities collapse."""
    success_probability = as_fraction(probability)
    if not ZERO <= success_probability <= ONE:
        raise InvalidMeasureError(f"Bernoulli parameter {success_probability} outside [0,1]")
    if success_probability == ONE:
        return point_mass(success)
    if success_probability == ZERO:
        return point_mass(failure)
    return [(success_probability, success), (ONE - success_probability, failure)]


def fair_coin(heads: Hashable = "heads", tails: Hashable = "tails") -> Distribution:
    """The fair coin of the introduction's running example."""
    return bernoulli(Fraction(1, 2), heads, tails)


def biased_coin(
    heads_probability: FractionLike,
    heads: Hashable = "heads",
    tails: Hashable = "tails",
) -> Distribution:
    """The biased coin of the Vardi example (2/3) and Section 7 (0.99)."""
    return bernoulli(heads_probability, heads, tails)


def uniform_choice(values: Sequence[Hashable]) -> Distribution:
    """Uniform distribution on a finite set (the die, the random witness)."""
    values = list(values)
    if not values:
        raise InvalidMeasureError("uniform choice over an empty set")
    mass = Fraction(1, len(values))
    return [(mass, value) for value in values]


def weighted(pairs: Iterable[Tuple[FractionLike, Hashable]]) -> Distribution:
    """Validate an explicit weighted distribution."""
    branches: Distribution = []
    total = ZERO
    for probability, value in pairs:
        fraction = as_fraction(probability)
        if fraction < ZERO:
            raise InvalidMeasureError(f"negative branch probability {fraction}")
        if fraction == ZERO:
            continue
        branches.append((fraction, value))
        total += fraction
    if total != ONE:
        raise InvalidMeasureError(f"branch probabilities sum to {total}, not 1")
    return branches


def joint(*distributions: Distribution) -> Distribution:
    """Independent product: branches are tuples of component values."""
    result: Distribution = [(ONE, ())]
    for distribution in distributions:
        result = [
            (accumulated * probability, prefix + (value,))
            for accumulated, prefix in result
            for probability, value in distribution
        ]
    return result


def binomial_survivors(count: int, loss_probability: FractionLike) -> Distribution:
    """Distribution over how many of ``count`` independent messengers survive.

    Models the coordinated-attack channel where each messenger is captured
    independently with the given probability.  Outcomes are integers
    ``0..count``.
    """
    loss = as_fraction(loss_probability)
    survive = ONE - loss
    branches: Distribution = []
    for survivors in range(count + 1):
        ways = _binomial(count, survivors)
        probability = ways * survive**survivors * loss ** (count - survivors)
        if probability > ZERO:
            branches.append((probability, survivors))
    return branches


def at_least_one_survives(count: int, loss_probability: FractionLike) -> Distribution:
    """Aggregate channel outcome: did *any* of ``count`` messengers arrive?

    The coordinated-attack analysis only depends on whether B learned the
    outcome, i.e. whether at least one of A's messengers got through; using
    this two-branch coarsening keeps the system small while preserving every
    agent's knowledge (documented substitution in DESIGN.md).
    """
    loss = as_fraction(loss_probability)
    return bernoulli(ONE - loss**count, True, False)


def space_of(distribution: Distribution) -> FiniteProbabilitySpace:
    """Lift a distribution to a probability space with the powerset algebra."""
    masses: dict = {}
    for probability, value in distribution:
        masses[value] = masses.get(value, ZERO) + probability
    return FiniteProbabilitySpace.from_point_masses(masses)


def sequences(distribution: Distribution, length: int) -> Distribution:
    """IID sequences of the given length (e.g. ten fair-coin tosses)."""
    return joint(*([distribution] * length))


def _binomial(n: int, k: int) -> int:
    result = 1
    for index in range(k):
        result = result * (n - index) // (index + 1)
    return result
