"""Ablation -- bitmask measure kernels versus the naive frozenset scans.

``FiniteProbabilitySpace`` precomputes atom masks and answers
``measure`` / ``inner_measure`` / ``outer_measure`` / ``measure_interval``
with integer bit algebra plus one exact Fraction normalisation, caching
interval results per event mask.  The ablation times that path against
the retained ``*_naive`` kernels on the same space and asserts exact
agreement on every queried event.
"""

import pytest

from repro.core import ProbabilityAssignment
from repro.examples_lib import repeated_coin_system
from repro.probability import use_backend
from repro.reporting import print_table


@pytest.fixture(scope="module")
def spaces():
    """Induced point spaces of the 6-toss system, one per post-toss class."""
    example = repeated_coin_system(6)
    assignment = ProbabilityAssignment(example.post_toss_assignment())
    built = []
    seen = set()
    for point in sorted(example.post_toss_points, key=lambda p: (p.time, repr(p.run.states))):
        sample = assignment.sample_space(0, point)
        if sample in seen:
            continue
        seen.add(sample)
        built.append((assignment.space(0, point), sample))
        if len(built) >= 4:
            break
    return built


def _events(space, sample):
    """A deterministic mix of measurable and atom-splitting events."""
    atoms = space.atoms
    half = frozenset(member for member in sample if member.time % 2 == 0)
    return [
        frozenset(),
        frozenset(sample),
        frozenset(atoms[0]),
        frozenset(atoms[0] | atoms[-1]),
        half,
        frozenset(list(sample)[:: 3]),
    ]


def bitmask_sweep(spaces):
    results = []
    for space, sample in spaces:
        for event in _events(space, sample):
            results.append(space.measure_interval(event))
    return results


def naive_sweep(spaces):
    results = []
    for space, sample in spaces:
        for event in _events(space, sample):
            results.append(space.measure_interval_naive(event))
    return results


def test_ablation_bitmask_kernels(benchmark, spaces):
    results = benchmark(bitmask_sweep, spaces)
    assert results == naive_sweep(spaces)
    print_table(
        "ABLATION  interval queries on 6-toss induced spaces",
        ["variant", "queries"],
        [
            ("bitmask (benchmarked)", len(results)),
            ("naive scan (cross-checked)", len(results)),
        ],
    )


def test_ablation_naive_kernels(benchmark, spaces):
    results = benchmark(naive_sweep, spaces)
    assert results == bitmask_sweep(spaces)


def test_ablation_naive_backend_construction(benchmark):
    """End-to-end: spaces built under the naive backend dispatch to the
    naive kernels, so the two engines are comparable on identical inputs."""

    def build_and_query():
        with use_backend("naive"):
            example = repeated_coin_system(4)
            assignment = ProbabilityAssignment(example.post_toss_assignment())
            anchor = next(iter(example.post_toss_points))
            space = assignment.space(0, anchor)
            sample = assignment.sample_space(0, anchor)
        return space.measure_interval(frozenset(list(sample)[:: 2]))

    interval = benchmark(build_and_query)
    assert interval[0] <= interval[1]
