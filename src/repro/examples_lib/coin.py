"""The paper's running coin-toss examples, ready-made.

* :func:`single_coin_system` -- Section 3's opener: one agent tosses a fair
  coin once and halts; two runs with probability 1/2 each.
* :func:`three_agent_coin_system` -- the introduction's example: ``p_3``
  tosses at time 0 and observes the outcome at time 1; ``p_1`` and ``p_2``
  never learn it.  The probability ``p_1`` should assign to heads at time 1
  is 1/2 against ``p_2`` and "0 or 1, I don't know which" against ``p_3``.
* :func:`repeated_coin_system` -- Section 7's asynchronous example: ``p_3``
  tosses once per tick for ``tosses`` ticks; ``p_1`` has no clock (its local
  state never changes), ``p_2`` has a clock.  The fact "the most recent coin
  toss landed heads" is non-measurable for ``p_1``, with inner measure
  ``2**-tosses`` and outer measure ``1 - 2**-tosses`` over the post-toss
  points.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import FrozenSet, Tuple

from ..core.assignments import FunctionAssignment, SampleSpaceAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..probability.fractionutil import FractionLike
from ..systems.agents import CoinTossingAgent, IdleAgent, RepeatedCoinTosser
from ..systems.synchronous import SyncProtocol, protocol_system
from ..trees.probabilistic_system import ProbabilisticSystem

P1, P2, P3 = 0, 1, 2


@dataclass
class CoinExample:
    """A coin system plus the facts its analysis needs."""

    psys: ProbabilisticSystem
    heads: Fact


def single_coin_system() -> CoinExample:
    """One agent, one fair coin, two runs of probability 1/2 each."""
    protocol = SyncProtocol(agents=[CoinTossingAgent(Fraction(1, 2))], horizon=1)
    psys = protocol_system(protocol, {"only": [None]})
    heads = Fact.about_local_state(
        0, lambda local: local[0] == "saw-heads", name="heads"
    )
    return CoinExample(psys, heads)


def three_agent_coin_system(
    heads_probability: FractionLike = Fraction(1, 2)
) -> CoinExample:
    """The introduction's betting scenario (synchronous, all clocked).

    ``p_3`` (agent 2) tosses at round 0 and sees the outcome from time 1 on;
    ``p_1`` (agent 0) and ``p_2`` (agent 1) are idle observers.
    """
    protocol = SyncProtocol(
        agents=[IdleAgent(), IdleAgent(), CoinTossingAgent(heads_probability)],
        horizon=1,
    )
    psys = protocol_system(protocol, {"only": [None, None, None]})
    heads = Fact.about_local_state(
        P3,
        lambda local: local[0] == "saw-heads",
        name="heads",
    )
    return CoinExample(psys, heads)


@dataclass
class RepeatedCoinExample:
    """Section 7's ten-toss system and its analysis ingredients."""

    psys: ProbabilisticSystem
    most_recent_heads: Fact
    post_toss_points: FrozenSet[Point]
    tosses: int

    def post_toss_assignment(self) -> SampleSpaceAssignment:
        """``Tree_ic`` restricted to post-toss points (times >= 1).

        The paper computes the inner measure ``2**-tosses`` treating every
        point of the system as a possible test point *after a toss has
        happened*; the time-0 root, where "the most recent toss landed
        heads" is vacuously false, is excluded.  This is an instance of the
        generalized type-3 adversary that "does not give p_i the chance to
        bet in certain runs" -- here, at the pre-toss instant.
        """
        def sample(agent: int, point: Point):
            # tree points are system points, so "post toss" is just time
            # >= 1; reading the state tuples directly keeps this linear
            # scan cheap on ten-toss systems
            tree = self.psys.tree_of(point)
            local = point.run.states[point.time].local_states[agent]
            return frozenset(
                candidate
                for candidate in tree.points
                if candidate.time >= 1
                and candidate.run.states[candidate.time].local_states[agent] == local
            )

        return FunctionAssignment(self.psys, sample, name="post-toss")


def repeated_coin_system(tosses: int = 10) -> RepeatedCoinExample:
    """Section 7's asynchronous coin system.

    Agent 0 (``p_1``) is idle and *unclocked* -- it cannot distinguish any
    two global states.  Agent 1 (``p_2``) is idle but clocked.  Agent 2
    (``p_3``) tosses a fair coin every tick, its local state recording the
    outcome sequence (so it is implicitly clocked).
    """
    protocol = SyncProtocol(
        agents=[IdleAgent(), IdleAgent(), RepeatedCoinTosser()],
        horizon=tosses,
        clocked=(False, True, True),
    )
    psys = protocol_system(protocol, {"only": [None, None, None]})

    def latest_heads(state) -> bool:
        outcomes = state.local_states[P3]
        if isinstance(outcomes, tuple) and outcomes and isinstance(outcomes[-1], int):
            outcomes = outcomes[0]
        return bool(outcomes) and outcomes[-1] == "H"

    fact = Fact.about_global_state(latest_heads, name="most_recent_heads")
    post_toss = frozenset(
        point for point in psys.system.points if point.time >= 1
    )
    return RepeatedCoinExample(psys, fact, post_toss, tosses)
