"""Parallel fan-out for sweeps and enumeration workloads.

The guarantee sweeps of Proposition 11 -- and the Theorem 7/8/9 style
enumerations generally -- are embarrassingly parallel: every
protocol/parameter combination builds its own system and queries it
independently, with exact :class:`fractions.Fraction` results that are
cheap to pickle.  This module fans such workloads across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the one
property the analyses rely on: **deterministic result ordering**.  Tasks
are enumerated up front in serial order (:func:`repro.attack.sweep.sweep_tasks`)
and ``Executor.map`` preserves input order, so the parallel sweep returns
exactly the same row list as the serial one -- only faster.

Exceptions raised *by a task* never travel through the pool as raised
exceptions: the worker wraps them in a :class:`_TaskFailure` envelope and
the parent re-raises them after the map completes.  Any exception that
does surface from the pool machinery is therefore infrastructure by
construction, and only those trigger the in-process fallback --
environments without working process pools (restricted sandboxes,
missing ``/dev/shm``, non-picklable custom builders) degrade gracefully
and still return the same rows, while a genuine task error is raised
exactly once, never re-executed serially first.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from fractions import Fraction
from functools import partial
from pickle import PicklingError
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from ..errors import WorkerTaskError
from ..obs.recorder import NULL_RECORDER, get_recorder
from ..obs.snapshot import ObsDeltaCapture, merge_worker_delta
from ..probability.bitset import get_default_backend
from ..probability.fractionutil import FractionLike
from .sweep import Builder, SweepRow, sweep_row_of, sweep_tasks

__all__ = ["parallel_map", "parallel_guarantee_sweep", "POOL_FALLBACK_ERRORS"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Errors that mean "a process pool cannot be used here" rather than "the
#: workload failed": pool creation being refused by the OS or the
#: platform, payloads that cannot cross a process boundary (CPython
#: raises AttributeError/TypeError, not just PicklingError, for closures
#: and unpicklable state), or the pool dying underneath us.  Because the
#: worker wraps task exceptions in a :class:`_TaskFailure` envelope, an
#: exception of one of these types raised *by the pool map* is provably
#: infrastructure, so falling back to in-process execution never
#: re-executes a task whose own code failed.
POOL_FALLBACK_ERRORS = (
    OSError,
    NotImplementedError,
    PicklingError,
    AttributeError,
    TypeError,
    BrokenProcessPool,
)


@dataclass(frozen=True)
class _TaskFailure:
    """Worker-side envelope carrying a task's exception back as a value.

    ``error`` is the original exception when it survives a pickle
    round-trip; otherwise it is ``None`` and ``summary`` alone describes
    the failure.  ``obs_delta``/``worker`` carry the attempt's shipped
    observations when the parent asked for telemetry.
    """

    summary: str
    error: Optional[BaseException] = None
    obs_delta: Optional[Dict] = None
    worker: Optional[int] = None

    def reraise(self):
        if self.error is not None:
            raise self.error
        raise WorkerTaskError(self.summary)


@dataclass(frozen=True)
class _TaskSuccess:
    """Worker-side envelope pairing a result with its observation delta.

    Only used when telemetry shipping is on: the plain (unwrapped)
    return value stays the envelope for uninstrumented runs, so the
    byte-identical fast path is untouched.
    """

    value: object
    obs_delta: Optional[Dict] = None
    worker: Optional[int] = None


def _enveloped_call(
    payload: Tuple[Callable, object, bool]
) -> Union[object, _TaskSuccess, _TaskFailure]:
    """Run one task in a worker, converting its exception into a value.

    The trailing ``ship_obs`` flag mirrors the sweep engine's: set by
    the parent exactly when it has a real recorder installed, it runs
    the task under an :class:`~repro.obs.snapshot.ObsDeltaCapture` and
    ships the delta home inside the envelope.
    """
    function, item, ship_obs = payload
    capture = ObsDeltaCapture() if ship_obs else None
    try:
        if capture is not None:
            with capture:
                value = function(item)
        else:
            return function(item)
    except Exception as error:
        summary = f"{type(error).__name__}: {error}"
        # Round-trip, not just dumps: an exception that pickles but fails
        # to *unpickle* would be misread by the parent as pool
        # infrastructure and trigger the serial fallback.
        try:
            pickle.loads(pickle.dumps(error))
        except Exception:
            error = None
        failure = _TaskFailure(summary=summary, error=error)
        if capture is not None:
            failure = _TaskFailure(
                summary=summary,
                error=error,
                obs_delta=capture.delta,
                worker=capture.worker,
            )
        return failure
    return _TaskSuccess(value=value, obs_delta=capture.delta, worker=capture.worker)


def parallel_map(
    function: Callable[[_Item], _Result],
    items: Sequence[_Item],
    max_workers: Optional[int] = None,
) -> List[_Result]:
    """Order-preserving ``map`` over worker processes.

    ``function`` must be picklable (a module-level function); results come
    back in the order of ``items`` regardless of which worker finished
    first.  ``max_workers=1`` -- or any condition in
    :data:`POOL_FALLBACK_ERRORS` raised by the pool machinery itself --
    runs the same map in-process, so callers never need to branch on
    platform capabilities.  A task's own exception is re-raised exactly
    once, without re-running any task.
    """
    work = list(items)
    if max_workers is not None and max_workers < 1:
        raise ValueError("parallel_map needs at least one worker")
    recorder = get_recorder()
    with recorder.span("parallel_map", tasks=len(work)):
        recorder.counter("parallel.tasks", len(work))
        if len(work) <= 1 or max_workers == 1:
            return [function(item) for item in work]
        # Ship worker observations only when someone is listening; the
        # identity check keeps uninstrumented payloads byte-identical.
        ship_obs = recorder is not NULL_RECORDER
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                outcomes = list(
                    pool.map(
                        _enveloped_call,
                        [(function, item, ship_obs) for item in work],
                    )
                )
        except POOL_FALLBACK_ERRORS as error:
            recorder.counter("parallel.pool_fallbacks")
            recorder.event(
                "pool_fallback", reason=f"{type(error).__name__}: {error}"
            )
            return [function(item) for item in work]
        # Merge every shipped delta before any reraise: the work behind a
        # failing map still happened, and its counters stay attributable.
        for outcome in outcomes:
            if (
                isinstance(outcome, (_TaskSuccess, _TaskFailure))
                and outcome.obs_delta is not None
            ):
                merge_worker_delta(recorder, outcome.obs_delta, worker=outcome.worker)
        results: List[_Result] = []
        for outcome in outcomes:
            if isinstance(outcome, _TaskFailure):
                outcome.reraise()
            if isinstance(outcome, _TaskSuccess):
                outcome = outcome.value
            results.append(outcome)
        return results


def parallel_guarantee_sweep(
    messenger_counts: Sequence[int],
    losses: Sequence[FractionLike],
    builders: Optional[Dict[str, Builder]] = None,
    epsilon: FractionLike = Fraction(99, 100),
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[SweepRow]:
    """:func:`~repro.attack.sweep.guarantee_sweep`, fanned across processes.

    Row-for-row identical to the serial sweep (same task enumeration, same
    ordering, same exact Fractions); custom ``builders`` must be
    module-level callables so they can be shipped to workers.

    The measure backend is resolved *here* (``backend`` if given, else
    the parent's process default) and shipped to the workers inside the
    task function: worker processes start with the module default
    ``"bitmask"``, so without this the parent's ``use_backend`` choice
    would silently not apply to them.
    """
    tasks = sweep_tasks(messenger_counts, losses, builders, epsilon)
    active = backend if backend is not None else get_default_backend()
    # functools.partial of a module-level function pickles by reference,
    # so the bound backend string crosses the process boundary intact.
    row_of = partial(sweep_row_of, backend=active)
    return parallel_map(row_of, tasks, max_workers=max_workers)
