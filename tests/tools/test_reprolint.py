"""Tests for the reprolint invariant checker itself.

Each rule gets at least one positive case (a fixture snippet that must
trigger it) and one negative case (a snippet that must not), plus
suppression tests and the smoke test asserting ``src/repro`` is
violation-free.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import all_rules, lint_paths  # noqa: E402
from tools.reprolint.cli import main as cli_main  # noqa: E402

ALL_RULE_IDS = {
    "RL001",
    "RL002",
    "RL003",
    "RL004",
    "RL005",
    "RL006",
    "RL007",
    "RL008",
}


def make_package(tmp_path, files):
    """Materialise ``{"repro/core/x.py": source}`` under ``tmp_path``.

    Intermediate directories get an empty ``__init__.py`` so the engine
    sees the same package structure as ``src/repro``.
    """
    root = tmp_path / "pkg"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        ancestor = target.parent
        while ancestor != root:
            init = ancestor / "__init__.py"
            if not init.exists():
                init.write_text('__all__ = []\n', encoding="utf-8")
            ancestor = ancestor.parent
    return root


def rule_ids(tmp_path, files):
    violations, errors = lint_paths([str(make_package(tmp_path, files))])
    assert not errors, errors
    return [v.rule_id for v in violations]


# ----------------------------------------------------------------------
# Registry / framework
# ----------------------------------------------------------------------


def test_all_eight_rules_registered():
    assert {rule.rule_id for rule in all_rules()} == ALL_RULE_IDS


def test_every_rule_has_title_and_rationale():
    for rule in all_rules():
        assert rule.title, rule.rule_id
        assert len(rule.rationale) > 100, rule.rule_id


# ----------------------------------------------------------------------
# RL001 exact arithmetic
# ----------------------------------------------------------------------


def test_rl001_float_literal_in_probability(tmp_path):
    ids = rule_ids(tmp_path, {"repro/probability/bad.py": "P = 0.5\n"})
    assert "RL001" in ids


def test_rl001_float_call_in_core(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/core/bad.py": "def f(x):\n    return float(x)\n"}
    )
    assert "RL001" in ids


def test_rl001_math_import_in_betting(tmp_path):
    ids = rule_ids(tmp_path, {"repro/betting/bad.py": "import math\n"})
    assert "RL001" in ids


def test_rl001_from_math_import_in_logic(tmp_path):
    ids = rule_ids(tmp_path, {"repro/logic/bad.py": "from math import isclose\n"})
    assert "RL001" in ids


def test_rl001_float_equality_comparison(tmp_path):
    violations, _ = lint_paths(
        [str(make_package(tmp_path, {"repro/core/bad.py": "ok = (x == 0.3)\n"}))]
    )
    rl001 = [v for v in violations if v.rule_id == "RL001"]
    assert len(rl001) == 1
    assert "equality comparison" in rl001[0].message


def test_rl001_diagnostic_has_line_and_col(tmp_path):
    violations, _ = lint_paths(
        [str(make_package(tmp_path, {"repro/core/bad.py": "x = 1\ny = 2.5\n"}))]
    )
    (violation,) = [v for v in violations if v.rule_id == "RL001"]
    assert violation.line == 2
    assert violation.col == 4
    assert ":2:4: RL001" in violation.render()


def test_rl001_negative_exact_fractions(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/probability/good.py": """\
            from fractions import Fraction

            HALF = Fraction(1, 2)

            def is_half(p):
                return p == HALF
            """
        },
    )
    assert "RL001" not in ids


def test_rl001_not_enforced_outside_exact_subpackages(tmp_path):
    # trees/ renders visualisations and may use floats.
    ids = rule_ids(tmp_path, {"repro/trees/viz.py": "SCALE = 0.5\n"})
    assert "RL001" not in ids


def test_rl001_allowlists_fractionutil(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/probability/fractionutil.py": """\
            def to_float(value):
                return float(value)
            """
        },
    )
    assert "RL001" not in ids


# ----------------------------------------------------------------------
# RL002 layering
# ----------------------------------------------------------------------


def test_rl002_back_edge_core_imports_betting(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/core/bad.py": "from repro.betting.game import BettingRule\n"}
    )
    assert "RL002" in ids


def test_rl002_back_edge_relative_import(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/probability/bad.py": "from ..core.model import Point\n"}
    )
    assert "RL002" in ids


def test_rl002_forward_edge_allowed(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/betting/good.py": "from ..core.model import Point\n",
            "repro/core/model.py": "class Point:\n    pass\n",
        },
    )
    assert "RL002" not in ids


def test_rl002_same_layer_allowed(tmp_path):
    # logic, systems and trees share a stratum.
    ids = rule_ids(
        tmp_path, {"repro/systems/good.py": "from ..trees.tree import ComputationTree\n"}
    )
    assert "RL002" not in ids


def test_rl002_type_checking_import_exempt(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/good.py": """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from ..trees.tree import ComputationTree
            """
        },
    )
    assert "RL002" not in ids


def test_rl002_top_level_helpers_unconstrained(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/testing.py": "from repro.attack.sweep import achieves\n"}
    )
    assert "RL002" not in ids


def test_rl002_intra_package_back_edge_semantics_imports_explain(tmp_path):
    # logic.semantics must not need logic.explain at import time
    ids = rule_ids(
        tmp_path,
        {"repro/logic/semantics.py": "from .explain import explain\n"},
    )
    assert "RL002" in ids


def test_rl002_intra_package_forward_edge_allowed(tmp_path):
    # logic.explain sits above logic.semantics and may import it
    ids = rule_ids(
        tmp_path,
        {
            "repro/logic/explain.py": "from .semantics import Model\n",
            "repro/logic/semantics.py": "class Model:\n    pass\n",
        },
    )
    assert "RL002" not in ids


def test_rl002_intra_package_function_local_import_sanctioned(tmp_path):
    # the deferral Model.explain uses: a lower module may reach a higher
    # one inside the function that needs it
    ids = rule_ids(
        tmp_path,
        {
            "repro/logic/semantics.py": """\
            def explain_entry(model, formula, point):
                from .explain import explain
                return explain(model, formula, point)
            """,
            "repro/logic/explain.py": "def explain(m, f, p):\n    return None\n",
        },
    )
    assert "RL002" not in ids


def test_rl002_intra_package_obs_recorder_must_not_import_provenance(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"repro/obs/recorder.py": "from .provenance import ProvenanceRecorder\n"},
    )
    assert "RL002" in ids


def test_rl002_intra_package_provenance_may_import_recorder(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/obs/provenance.py": "from .recorder import Recorder\n",
            "repro/obs/recorder.py": "class Recorder:\n    pass\n",
        },
    )
    assert "RL002" not in ids


def test_rl002_intra_package_relative_module_form(tmp_path):
    # ``from . import explain`` is the same back-edge in another spelling
    ids = rule_ids(
        tmp_path,
        {"repro/logic/syntax.py": "from . import explain\n"},
    )
    assert "RL002" in ids


def test_rl002_intra_package_init_exempt(tmp_path):
    root = make_package(tmp_path, {"repro/logic/explain.py": "X = 1\n"})
    (root / "repro" / "logic" / "__init__.py").write_text(
        'from .explain import X\n\n__all__ = ["X"]\n', encoding="utf-8"
    )
    violations, _ = lint_paths([str(root)])
    assert "RL002" not in [v.rule_id for v in violations]


# ----------------------------------------------------------------------
# RL003 paper traceability
# ----------------------------------------------------------------------


def test_rl003_uncited_public_function(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/betting/theorems.py": """\
            def verify_something(x):
                \"\"\"Checks a property exhaustively.\"\"\"
                return x
            """
        },
    )
    assert "RL003" in ids


def test_rl003_missing_docstring(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/core/assignments.py": "def check_thing(x):\n    return x\n"}
    )
    assert "RL003" in ids


def test_rl003_cited_function_passes(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/agreement.py": """\
            def verify_agreement(x):
                \"\"\"Check Aumann's theorem [Aum76], per Appendix B.3.\"\"\"
                return x

            def check_req(x):
                \"\"\"Verify REQ1 of Section 5.\"\"\"
                return x

            def verify_seven(x):
                \"\"\"Exhaustive check of Theorem 7.\"\"\"
                return x

            def _private_helper(x):
                return x
            """
        },
    )
    assert "RL003" not in ids


def test_rl003_only_applies_to_theorem_modules(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/core/model.py": "def helper(x):\n    return x\n"}
    )
    assert "RL003" not in ids


def test_rl003_covers_the_provenance_layer(tmp_path):
    # logic/explain.py and obs/provenance.py are traceable modules: an
    # uncited public function in either is a violation
    ids = rule_ids(
        tmp_path,
        {
            "repro/logic/explain.py": """\
            def explain(model, formula, point):
                \"\"\"Build a derivation tree.\"\"\"
                return None
            """,
            "repro/obs/provenance.py": """\
            def render_derivation(derivation):
                \"\"\"Pretty-print a derivation.\"\"\"
                return ""
            """,
        },
    )
    assert ids.count("RL003") == 2


def test_rl003_cited_provenance_functions_pass(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/logic/explain.py": """\
            def explain(model, formula, point):
                \"\"\"Derive the Section 5 evidence for a verdict.\"\"\"
                return None
            """,
            "repro/obs/provenance.py": """\
            def json_pure(value):
                \"\"\"Normalise per the exactness demands of Section 5.\"\"\"
                return value
            """,
        },
    )
    assert "RL003" not in ids


# ----------------------------------------------------------------------
# RL004 mutable defaults
# ----------------------------------------------------------------------


def test_rl004_list_literal_default(tmp_path):
    ids = rule_ids(
        tmp_path, {"repro/systems/bad.py": "def f(items=[]):\n    return items\n"}
    )
    assert "RL004" in ids


def test_rl004_dict_call_keyword_only_default(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"repro/attack/bad.py": "def f(*, cache=dict()):\n    return cache\n"},
    )
    assert "RL004" in ids


def test_rl004_none_and_tuple_defaults_pass(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/good.py": """\
            def f(items=None, extra=(), name="x"):
                return items, extra, name
            """
        },
    )
    assert "RL004" not in ids


# ----------------------------------------------------------------------
# RL005 bare except
# ----------------------------------------------------------------------


def test_rl005_bare_except(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/trees/bad.py": """\
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        },
    )
    assert "RL005" in ids


def test_rl005_typed_except_passes(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/trees/good.py": """\
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
            """
        },
    )
    assert "RL005" not in ids


# ----------------------------------------------------------------------
# RL006 public API exports
# ----------------------------------------------------------------------


def test_rl006_missing_all(tmp_path):
    root = make_package(tmp_path, {"repro/logic/mod.py": "X = 1\n"})
    (root / "repro" / "logic" / "__init__.py").write_text(
        "from .mod import X\n", encoding="utf-8"
    )
    violations, _ = lint_paths([str(root)])
    assert any(
        v.rule_id == "RL006" and "does not declare" in v.message for v in violations
    )


def test_rl006_phantom_export(tmp_path):
    root = make_package(tmp_path, {"repro/logic/mod.py": "X = 1\n"})
    (root / "repro" / "logic" / "__init__.py").write_text(
        'from .mod import X\n\n__all__ = ["X", "Ghost"]\n', encoding="utf-8"
    )
    violations, _ = lint_paths([str(root)])
    assert any(
        v.rule_id == "RL006" and "'Ghost'" in v.message for v in violations
    )


def test_rl006_duplicate_export(tmp_path):
    root = make_package(tmp_path, {"repro/logic/mod.py": "X = 1\n"})
    (root / "repro" / "logic" / "__init__.py").write_text(
        'from .mod import X\n\n__all__ = ["X", "X"]\n', encoding="utf-8"
    )
    violations, _ = lint_paths([str(root)])
    assert any(v.rule_id == "RL006" and "duplicate" in v.message for v in violations)


def test_rl006_matching_all_passes(tmp_path):
    root = make_package(tmp_path, {"repro/logic/mod.py": "X = 1\n"})
    (root / "repro" / "logic" / "__init__.py").write_text(
        'from .mod import X\n\n__version__ = "1.0"\n\n'
        '__all__ = ["X", "__version__"]\n',
        encoding="utf-8",
    )
    violations, _ = lint_paths([str(root)])
    assert "RL006" not in [v.rule_id for v in violations]


def test_rl006_ignores_non_init_modules(tmp_path):
    ids = rule_ids(tmp_path, {"repro/logic/mod.py": "X = 1\n"})
    assert "RL006" not in ids


# ----------------------------------------------------------------------
# RL007 error hierarchy
# ----------------------------------------------------------------------


def test_rl007_foreign_exception_class(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/bad.py": """\
            class RogueError(Exception):
                pass

            def f():
                raise RogueError("outside the hierarchy")
            """
        },
    )
    assert "RL007" in ids


def test_rl007_builtin_raise_passes(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/good.py": """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
                raise NotImplementedError
            """
        },
    )
    assert "RL007" not in ids


def test_rl007_imported_repro_error_passes(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/good.py": """\
            from ..errors import SimulationError

            def f():
                raise SimulationError("structured failure")
            """
        },
    )
    assert "RL007" not in ids


def test_rl007_local_subclass_of_imported_error_passes(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/good.py": """\
            from repro.errors import ReproError

            class LocalError(ReproError):
                pass

            class DeeperError(LocalError):
                pass

            def f():
                raise DeeperError("still inside the hierarchy")
            """
        },
    )
    assert "RL007" not in ids


def test_rl007_errors_module_may_root_at_exception(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/errors.py": """\
            class ReproError(Exception):
                pass

            def oops():
                raise ReproError("the root itself")
            """
        },
    )
    assert "RL007" not in ids


def test_rl007_reraise_variable_not_judged(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/good.py": """\
            def f(error):
                try:
                    g()
                except ValueError as caught:
                    raise
                raise error
            """
        },
    )
    assert "RL007" not in ids


def test_rl007_suppressible_per_line(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/mixed.py": """\
            class OutsideError(Exception):
                pass

            def f():
                raise OutsideError("waived")  # reprolint: disable=RL007
            """
        },
    )
    assert "RL007" not in ids


# ----------------------------------------------------------------------
# RL008 wall-clock quarantine
# ----------------------------------------------------------------------


def test_rl008_time_attribute_read_outside_obs(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/robustness/bad.py": """\
            import time

            def stamp():
                return time.monotonic()
            """
        },
    )
    assert "RL008" in ids


def test_rl008_from_time_import_clock(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"repro/core/bad.py": "from time import perf_counter\n"},
    )
    assert "RL008" in ids


def test_rl008_datetime_import_banned(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/attack/bad.py": "import datetime\n",
            "repro/logic/bad.py": "from datetime import datetime\n",
        },
    )
    assert ids.count("RL008") == 2


def test_rl008_obs_subpackage_exempt(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/obs/clock.py": """\
            import time

            perf_counter = time.perf_counter
            monotonic = time.monotonic
            """
        },
    )
    assert "RL008" not in ids


def test_rl008_time_sleep_allowed_everywhere(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/robustness/good.py": """\
            import time
            from time import sleep

            def wait(seconds):
                time.sleep(seconds)
                sleep(seconds)
            """
        },
    )
    assert "RL008" not in ids


def test_rl008_obs_clock_wrappers_allowed(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/robustness/good.py": """\
            from ..obs.clock import monotonic

            def stamp():
                return monotonic()
            """
        },
    )
    assert "RL008" not in ids


def test_rl008_suppressible_per_line(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/systems/mixed.py": """\
            import time

            def stamp():
                return time.time()  # reprolint: disable=RL008
            """
        },
    )
    assert "RL008" not in ids


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_line_suppression(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/mixed.py": """\
            GOOD = 0.5  # reprolint: disable=RL001
            BAD = 0.25
            """
        },
    )
    assert ids.count("RL001") == 1


def test_file_wide_suppression(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/legacy.py": """\
            # reprolint: disable=RL001
            A = 0.5
            B = 0.25
            """
        },
    )
    assert "RL001" not in ids


def test_suppression_only_silences_named_rule(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/mixed.py": """\
            # reprolint: disable=RL004
            A = 0.5
            """
        },
    )
    assert "RL001" in ids


def test_multi_rule_suppression(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/core/legacy.py": """\
            # reprolint: disable=RL001, RL004
            A = 0.5

            def f(items=[]):
                return items
            """
        },
    )
    assert "RL001" not in ids and "RL004" not in ids


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------


def test_cli_json_output(tmp_path, capsys):
    root = make_package(tmp_path, {"repro/core/bad.py": "P = 0.5\n"})
    exit_code = cli_main(["--json", str(root)])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload, "expected at least one violation"
    record = payload[0]
    assert set(record) == {"path", "line", "col", "rule", "message"}
    assert record["rule"] == "RL001"


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    root = make_package(tmp_path, {"repro/core/good.py": "X = 1\n"})
    assert cli_main([str(root)]) == 0
    assert capsys.readouterr().out == ""


def test_cli_explain_every_rule(capsys):
    for rule_id in sorted(ALL_RULE_IDS):
        assert cli_main(["--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        # The rationale must tie the rule back to the paper.
        assert any(
            marker in out
            for marker in ("Theorem", "Section", "Appendix", "paper")
        ), rule_id


def test_cli_explain_unknown_rule(capsys):
    assert cli_main(["--explain", "RL999"]) == 2


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_cli_syntax_error_is_rl000_not_crash(tmp_path, capsys):
    """A file that does not parse is an RL000 diagnostic (exit 1), never a
    traceback, and never aborts the scan of its siblings."""
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    fine_but_bad = tmp_path / "repro" / "betting" / "floaty.py"
    fine_but_bad.parent.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("__all__ = []\n")
    (tmp_path / "repro" / "betting" / "__init__.py").write_text("__all__ = []\n")
    fine_but_bad.write_text("ALPHA = 0.5\n", encoding="utf-8")
    assert cli_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "broken.py:1" in out
    assert "RL000" in out
    assert "does not parse" in out
    # The broken sibling did not stop RL001 from seeing the float.
    assert "RL001" in out


def test_rl000_reports_syntax_error_position(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("x = 1\ndef f(:\n", encoding="utf-8")
    violations, errors = lint_paths([str(bad)])
    assert errors == []
    assert [v.rule_id for v in violations] == ["RL000"]
    assert violations[0].line == 2


def test_rl000_is_not_suppressible(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("# reprolint: disable=RL000\ndef f(:\n", encoding="utf-8")
    violations, _ = lint_paths([str(bad)])
    assert [v.rule_id for v in violations] == ["RL000"]


def test_module_invocation_matches_issue_contract(tmp_path):
    """``python -m tools.reprolint`` exits 0 clean / 1 on a seeded violation."""
    root = make_package(tmp_path, {"repro/betting/bad.py": "ALPHA = 0.5\n"})
    seeded = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", str(root)],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert seeded.returncode == 1
    first_line = seeded.stdout.splitlines()[0]
    path, line, col, rest = first_line.split(":", 3)
    assert path.endswith("bad.py") and line.isdigit() and col.isdigit()
    assert rest.strip().startswith("RL001")


# ----------------------------------------------------------------------
# The tree itself stays clean
# ----------------------------------------------------------------------


def test_src_repro_is_violation_free():
    violations, errors = lint_paths([str(REPO_ROOT / "src" / "repro")])
    assert not errors, [e.render() for e in errors]
    assert not violations, "\n".join(v.render() for v in violations)


def test_tools_directory_is_clean_of_generic_rules():
    """The linter holds itself to the generic hygiene rules."""
    violations, errors = lint_paths([str(REPO_ROOT / "tools")])
    assert not errors
    generic = [v for v in violations if v.rule_id in {"RL004", "RL005"}]
    assert not generic, "\n".join(v.render() for v in generic)


def test_tools_directory_is_violation_free():
    """All rules -- including the tools-layering arm of RL002 -- pass."""
    violations, errors = lint_paths([str(REPO_ROOT / "tools")])
    assert not errors
    assert not violations, "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# RL002: the tools/ packages keep to repro's read-only surface
# ----------------------------------------------------------------------


def test_rl002_tools_may_use_readonly_surface(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "tools/mytool/cli.py": """\
                from repro.errors import TraceError
                from repro.obs import read_trace
                from repro.obs.provenance import read_derivation
                from repro.reporting import json_ready
                """
        },
    )
    assert "RL002" not in ids


def test_rl002_tools_must_not_import_repro_internals(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"tools/mytool/cli.py": "from repro.core.model import Point\n"},
    )
    assert ids.count("RL002") == 1


def test_rl002_tools_flags_plain_import_form(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"tools/mytool/cli.py": "import repro.logic.semantics\n"},
    )
    assert ids.count("RL002") == 1


def test_rl002_tools_flags_from_repro_import_subpackage(tmp_path):
    ids = rule_ids(
        tmp_path,
        {"tools/mytool/cli.py": "from repro import attack\n"},
    )
    assert ids.count("RL002") == 1


# ----------------------------------------------------------------------
# Suppression audit: unknown ids warn, stale ones are reportable
# ----------------------------------------------------------------------


def test_unknown_rule_suppression_warns_but_does_not_fail(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("# reprolint: disable=RL999\nVALUE = 1\n", encoding="utf-8")
    assert cli_main([str(target)]) == 0
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "RL999" in err


def test_flow_tier_suppression_is_neither_unknown_nor_stale(tmp_path, capsys):
    """RL009-RL012 belong to tools/reproflow; the intra-file tier must
    not second-guess their suppressions."""
    root = make_package(
        tmp_path,
        {"repro/core/x.py": "VALUE = 1  # reproflow: disable=RL010\n"},
    )
    assert cli_main([str(root), "--report-stale-suppressions"]) == 0
    captured = capsys.readouterr()
    assert "RL010" not in captured.out + captured.err


def test_stale_suppression_only_reported_with_flag(tmp_path, capsys):
    root = make_package(
        tmp_path,
        {"repro/betting/x.py": "VALUE = 1  # reprolint: disable=RL001\n"},
    )
    assert cli_main([str(root)]) == 0
    capsys.readouterr()
    assert cli_main([str(root), "--report-stale-suppressions"]) == 1
    out = capsys.readouterr().out
    assert "stale" in out
    assert "RL001" in out


def test_used_suppression_is_not_stale(tmp_path, capsys):
    root = make_package(
        tmp_path,
        {"repro/betting/x.py": "ALPHA = 0.5  # reprolint: disable=RL001\n"},
    )
    assert cli_main([str(root), "--report-stale-suppressions"]) == 0


def test_file_wide_suppression_makes_line_scoped_duplicate_stale(tmp_path, capsys):
    """File-wide wins, so a line-scoped duplicate never fires and must be
    reported as stale -- pinning the interaction order."""
    source = (
        "# reprolint: disable=RL001\n"
        "ALPHA = 0.5  # reprolint: disable=RL001\n"
    )
    root = make_package(tmp_path, {"repro/betting/x.py": source})
    assert cli_main([str(root), "--report-stale-suppressions"]) == 1
    out = capsys.readouterr().out
    assert out.count("stale") == 1
    assert ":2:" in out  # the trailing (line-scoped) declaration is the stale one


def test_stale_suppressions_in_json_mode(tmp_path, capsys):
    root = make_package(
        tmp_path,
        {"repro/betting/x.py": "VALUE = 1  # reprolint: disable=RL004\n"},
    )
    assert cli_main([str(root), "--json", "--report-stale-suppressions"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == []
    assert len(payload["stale_suppressions"]) == 1
    assert payload["stale_suppressions"][0]["rule"] == "RL004"


def test_rl008_raw_clock_read_in_tools_package(tmp_path):
    # The quarantine covers tools/ too: a monitor must route its clock
    # reads through repro.obs.clock, never the raw time module.
    ids = rule_ids(
        tmp_path,
        {
            "tools/sometool/cli.py": """\
            import time

            def refresh():
                return time.time()
            """
        },
    )
    assert "RL008" in ids


def test_rl008_reprotop_pattern_passes(tmp_path):
    # The sanctioned shape of a refresh loop: sleep via the raw time
    # module (exempt), staleness measured through repro.obs.clock.
    ids = rule_ids(
        tmp_path,
        {
            "tools/sometool/cli.py": """\
            import time

            from repro.obs.clock import monotonic

            def refresh(interval):
                started = monotonic()
                time.sleep(interval)
                return monotonic() - started
            """
        },
    )
    assert "RL008" not in ids


def test_rl002_obs_recorder_must_not_import_snapshot(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/obs/recorder.py": "from .snapshot import take_snapshot\n",
            "repro/obs/snapshot.py": "def take_snapshot():\n    return {}\n",
        },
    )
    assert "RL002" in ids


def test_rl002_obs_snapshot_may_import_recorder(tmp_path):
    ids = rule_ids(
        tmp_path,
        {
            "repro/obs/snapshot.py": "from .recorder import get_recorder\n",
            "repro/obs/recorder.py": "def get_recorder():\n    return None\n",
        },
    )
    assert "RL002" not in ids
