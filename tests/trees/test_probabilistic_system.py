"""Probabilistic systems: trees per adversary, T(c), run spaces."""

from fractions import Fraction

import pytest

from repro.errors import TechnicalAssumptionError, TreeError
from repro.trees import ProbabilisticSystem, single_tree_system
from repro.testing import random_tree, random_psys


@pytest.fixture(scope="module")
def psys():
    return random_psys(seed=2, num_trees=3, depth=2)


class TestConstruction:
    def test_single_tree(self):
        tree = random_tree(1)
        psys = single_tree_system(tree)
        assert psys.adversaries == (tree.adversary,)

    def test_duplicate_adversary_rejected(self):
        tree = random_tree(1)
        with pytest.raises(TreeError):
            ProbabilisticSystem([tree, tree])

    def test_shared_global_state_rejected(self):
        tree = random_tree(1)
        clone = tree.relabel(
            {edge: tree.edge_probability(*edge) for edge in tree.edges},
            adversary="clone",
        )
        with pytest.raises(TechnicalAssumptionError):
            ProbabilisticSystem([tree, clone])

    def test_empty_rejected(self):
        with pytest.raises(TreeError):
            ProbabilisticSystem([])


class TestStructure:
    def test_system_unions_runs(self, psys):
        total = sum(len(psys.tree(adversary).runs) for adversary in psys.adversaries)
        assert len(psys.system.runs) == total

    def test_tree_of_every_point(self, psys):
        for adversary in psys.adversaries:
            for point in psys.points_of_tree(adversary):
                assert psys.tree_of(point).adversary == adversary
                assert psys.adversary_of(point) == adversary

    def test_tree_of_foreign_point_rejected(self, psys):
        foreign = random_tree(99).points[0]
        with pytest.raises(TreeError):
            psys.tree_of(foreign)

    def test_tree_lookup_unknown_adversary(self, psys):
        with pytest.raises(TreeError):
            psys.tree("nope")


class TestRunSpaces:
    def test_run_space_is_cached(self, psys):
        adversary = psys.adversaries[0]
        assert psys.run_space(adversary) is psys.run_space(adversary)

    def test_run_space_total(self, psys):
        for adversary in psys.adversaries:
            space = psys.run_space(adversary)
            assert space.measure(space.outcomes) == 1

    def test_run_probability_dispatches(self, psys):
        for adversary in psys.adversaries:
            tree = psys.tree(adversary)
            for run in tree.runs:
                assert psys.run_probability(run) == tree.run_probability(run)

    def test_run_probability_foreign_run(self, psys):
        foreign = random_tree(99).runs[0]
        with pytest.raises(TreeError):
            psys.run_probability(foreign)


class TestKnowledgeAcrossTrees:
    def test_blind_agent_considers_all_trees_possible(self):
        psys = random_psys(seed=4, num_trees=2, depth=1, observability=("blind", "clock"))
        point = psys.system.points[0]
        knowledge = psys.system.knowledge_set(0, point)
        adversaries = {psys.adversary_of(candidate) for candidate in knowledge}
        assert len(adversaries) == 2  # knowledge spans trees; REQ1 is a real limit

    def test_full_observer_stays_in_tree(self):
        psys = random_psys(seed=4, num_trees=2, depth=1, observability=("full", "clock"))
        # a full observer at time >= 1 knows the history, hence... the history
        # alone does not identify the tree; the environment does.  Check that
        # its knowledge set is at least refined to matching histories.
        for point in psys.system.points:
            for candidate in psys.system.knowledge_set(0, point):
                assert candidate.local_state(0) == point.local_state(0)
