"""The synchronous round executor."""

from fractions import Fraction

import pytest

from repro.errors import SimulationError
from repro.systems import (
    Agent,
    CoinTossingAgent,
    FunctionAgent,
    IdleAgent,
    Message,
    PerfectChannel,
    LossyChannel,
    SyncProtocol,
    act,
    certainly,
    chance,
    protocol_system,
    run_protocol,
)


class EchoAgent(Agent):
    """Remembers every message content it has ever received."""

    def initial_state(self, input_value):
        return ()

    def step(self, state, inbox, round_number):
        heard = tuple(message.content for message in inbox)
        return certainly(state + heard)


class SenderAgent(Agent):
    """Sends one message to agent 1 in round 0."""

    def initial_state(self, input_value):
        return input_value

    def step(self, state, inbox, round_number):
        if round_number == 0:
            return certainly(state, Message(0, 1, f"hello-{state}"))
        return certainly(state)


class TestSyncProtocol:
    def test_defaults(self):
        protocol = SyncProtocol(agents=[IdleAgent()])
        assert protocol.clocked == (True,)

    def test_horizon_validation(self):
        with pytest.raises(SimulationError):
            SyncProtocol(agents=[IdleAgent()], horizon=0)

    def test_clocked_length_validation(self):
        with pytest.raises(SimulationError):
            SyncProtocol(agents=[IdleAgent()], clocked=(True, False))

    def test_wrap_local(self):
        protocol = SyncProtocol(agents=[IdleAgent(), IdleAgent()], clocked=(True, False))
        assert protocol.wrap_local(0, "s", 3) == ("s", 3)
        assert protocol.wrap_local(1, "s", 3) == "s"


class TestRunProtocol:
    def test_coin_two_runs(self):
        protocol = SyncProtocol(agents=[CoinTossingAgent(Fraction(1, 2))], horizon=1)
        tree = run_protocol(protocol, [None])
        assert len(tree.runs) == 2
        assert all(tree.run_probability(run) == Fraction(1, 2) for run in tree.runs)

    def test_inputs_length_checked(self):
        protocol = SyncProtocol(agents=[IdleAgent()])
        with pytest.raises(SimulationError):
            run_protocol(protocol, [None, None])

    def test_message_delivery_next_round(self):
        protocol = SyncProtocol(agents=[SenderAgent(), EchoAgent()], horizon=2)
        tree = run_protocol(protocol, ["x", None])
        (run,) = tree.runs
        # receiver state (unwrapped) at each time
        states = [run.local_state(1, time)[0] for time in range(run.horizon)]
        assert states[0] == ()
        assert states[1] == ()  # sent at round 0, delivered into round-1 step
        assert states[2] == ("hello-x",)

    def test_lossy_channel_branches(self):
        protocol = SyncProtocol(
            agents=[SenderAgent(), EchoAgent()],
            channel=LossyChannel(Fraction(1, 3)),
            horizon=2,
        )
        tree = run_protocol(protocol, ["x", None])
        assert len(tree.runs) == 2
        probabilities = sorted(tree.run_probability(run) for run in tree.runs)
        assert probabilities == [Fraction(1, 3), Fraction(2, 3)]

    def test_probabilities_must_sum(self):
        class BrokenAgent(Agent):
            def initial_state(self, input_value):
                return "s"

            def step(self, state, inbox, round_number):
                return [(Fraction(1, 3), act("s"))]

        protocol = SyncProtocol(agents=[BrokenAgent()], horizon=1)
        with pytest.raises(SimulationError):
            run_protocol(protocol, [None])

    def test_clocked_system_is_synchronous(self):
        protocol = SyncProtocol(
            agents=[IdleAgent(), CoinTossingAgent(Fraction(1, 2))], horizon=2
        )
        psys = protocol_system(protocol, {"A": [None, None]})
        assert psys.system.is_synchronous()

    def test_unclocked_idle_agent_breaks_synchrony(self):
        protocol = SyncProtocol(
            agents=[IdleAgent(), CoinTossingAgent(Fraction(1, 2))],
            horizon=2,
            clocked=(False, True),
        )
        psys = protocol_system(protocol, {"A": [None, None]})
        assert not psys.system.is_synchronous()

    def test_joint_coin_tosses_independent(self):
        protocol = SyncProtocol(
            agents=[CoinTossingAgent(Fraction(1, 2)), CoinTossingAgent(Fraction(1, 3))],
            horizon=1,
        )
        tree = run_protocol(protocol, [None, None])
        assert len(tree.runs) == 4
        probabilities = sorted(tree.run_probability(run) for run in tree.runs)
        assert probabilities == [
            Fraction(1, 6),
            Fraction(1, 6),
            Fraction(1, 3),
            Fraction(1, 3),
        ]


class TestProtocolSystem:
    def test_one_tree_per_adversary(self):
        protocol = SyncProtocol(agents=[SenderAgent(), EchoAgent()], horizon=2)
        psys = protocol_system(protocol, {"in-x": ["x", None], "in-y": ["y", None]})
        assert set(psys.adversaries) == {"in-x", "in-y"}

    def test_agents_helpers(self):
        assert certainly("s")[0][0] == 1
        branches = chance([(Fraction(1, 2), act("a")), (Fraction(1, 2), act("b"))])
        assert sum(probability for probability, _ in branches) == 1

    def test_function_agent(self):
        agent = FunctionAgent(
            initial=lambda value: ("init", value),
            step=lambda state, inbox, round_number: certainly(state),
        )
        assert agent.initial_state(3) == ("init", 3)
        assert agent.step(("init", 3), (), 0) == certainly(("init", 3))
