"""E08 -- Theorem 9: interval monotonicity along the lattice.

Part (a): moving up the lattice (weaker opponent) can only sharpen the
K^[a,b] interval.  Part (b): the sharpening can be strict -- the witness
fact is the proof's own construction.
"""

from repro.betting import theorem9_witness, verify_theorem9_part_a
from repro.core import standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import state_generated_valuation
from repro.probability import format_fraction
from repro.reporting import print_table


def run_experiment():
    coin = three_agent_coin_system()
    named = standard_assignments(coin.psys)
    facts = [coin.heads, ~coin.heads]
    facts.extend(state_generated_valuation(coin.psys.system).values())
    part_a = verify_theorem9_part_a(named["fut"], named["post"], facts)
    witness = theorem9_witness(named["fut"], named["post"])
    c = coin.psys.system.points_at_time(1)[0]
    intervals = {
        "fut": named["fut"].knowledge_interval(0, c, coin.heads),
        "post": named["post"].knowledge_interval(0, c, coin.heads),
    }
    return part_a, witness, intervals


def test_e08_theorem9(benchmark):
    part_a, witness, intervals = benchmark(run_experiment)
    print_table(
        "E08  Theorem 9(a): K^[a,b] intervals shrink up the lattice",
        ["triples checked", "paper", "measured"],
        [(part_a.checked, "monotone", "monotone" if part_a.holds else "FAILS")],
    )
    print_table(
        "E08  the coin's intervals (heads, p1, time 1)",
        ["assignment", "interval"],
        [("P_fut (opponent knows past)", intervals["fut"]), ("P_post", intervals["post"])],
    )
    print_table(
        "E08  Theorem 9(b): strictness witness",
        ["alpha under P_fut", "alpha under P_post"],
        [(format_fraction(witness.alpha_low), format_fraction(witness.alpha_high))],
    )
    assert part_a.holds
    assert witness.alpha_high > witness.alpha_low
    assert intervals["fut"] == (0, 1)
    from fractions import Fraction

    assert intervals["post"] == (Fraction(1, 2), Fraction(1, 2))
