"""Facts as point sets; run/state classification (Section 2)."""

import pytest

from repro.core import (
    Fact,
    is_fact_about_global_state,
    is_fact_about_run,
    state_generated_point_set,
)
from repro.testing import first_branch_fact, parity_fact, two_agent_coin_psys


@pytest.fixture(scope="module")
def psys():
    return two_agent_coin_psys()


@pytest.fixture(scope="module")
def heads(psys):
    return Fact.about_local_state(0, lambda local: local[0] == "tosser-heads", name="heads")


class TestEvaluation:
    def test_holds_at_and_call(self, psys, heads):
        point = next(p for p in psys.system.points if p.time == 1)
        assert heads.holds_at(point) == heads(point)

    def test_points_extension(self, psys, heads):
        extension = heads.points(psys.system)
        assert all(heads.holds_at(point) for point in extension)
        assert len(extension) == 1  # only the heads time-1 point

    def test_restricted_to(self, psys, heads):
        time1 = psys.system.points_at_time(1)
        assert heads.restricted_to(time1) == heads.points(psys.system)


class TestCombinators:
    def test_negation(self, psys, heads):
        assert (~heads).points(psys.system) == frozenset(psys.system.points) - heads.points(
            psys.system
        )

    def test_conjunction_disjunction(self, psys, heads):
        tails = ~heads
        assert (heads & tails).points(psys.system) == frozenset()
        assert (heads | tails).points(psys.system) == frozenset(psys.system.points)

    def test_implication(self, psys, heads):
        truth = heads >> heads
        assert truth.points(psys.system) == frozenset(psys.system.points)

    def test_iff(self, psys, heads):
        assert heads.iff(heads).points(psys.system) == frozenset(psys.system.points)
        assert heads.iff(~heads).points(psys.system) == frozenset()

    def test_names_compose(self, heads):
        assert "heads" in (~heads).name
        assert "&" in (heads & heads).name


class TestConstructors:
    def test_from_points_roundtrip(self, psys, heads):
        rebuilt = Fact.from_points(heads.points(psys.system))
        assert rebuilt.points(psys.system) == heads.points(psys.system)

    def test_at_global_state(self, psys):
        point = psys.system.points[0]
        fact = Fact.at_global_state(point.global_state)
        assert fact.points(psys.system) == frozenset(
            candidate
            for candidate in psys.system.points
            if candidate.global_state == point.global_state
        )

    def test_constants(self, psys):
        assert Fact.always_true().points(psys.system) == frozenset(psys.system.points)
        assert Fact.always_false().points(psys.system) == frozenset()

    def test_about_run(self, psys):
        fact = Fact.about_run(lambda run: len(run) == 2)
        assert fact.points(psys.system) == frozenset(psys.system.points)


class TestClassification:
    def test_state_fact_is_about_state(self, psys, heads):
        assert is_fact_about_global_state(psys.system, heads)

    def test_heads_is_not_about_run(self, psys, heads):
        # False at time 0, true at time 1 of the heads run.
        assert not is_fact_about_run(psys.system, heads)

    def test_run_fact_is_about_run(self, psys):
        from repro.testing import random_psys

        random = random_psys(5, depth=2)
        fact = first_branch_fact()
        # first_branch_fact changes value between time 0 and 1 -> not about run
        assert not is_fact_about_run(random.system, fact)
        settled = Fact.about_run(lambda run: "heads" in run.states[-1].environment.history)
        assert is_fact_about_run(psys.system, settled)

    def test_parity_fact_is_state_fact(self):
        from repro.testing import random_psys

        random = random_psys(5, depth=2)
        assert is_fact_about_global_state(random.system, parity_fact())

    def test_point_specific_fact_not_about_state(self, psys):
        # True at exactly one point; other points share no global state here,
        # so craft a fact distinguishing two points with the same state: use
        # a system where two runs share the root node.
        from repro.testing import random_psys

        shared_root = random_psys(3, num_trees=1, depth=1)
        system = shared_root.system
        root_points = [point for point in system.points if point.time == 0]
        assert len(root_points) >= 2  # several runs through one root state
        lone = Fact.from_points([root_points[0]])
        assert not is_fact_about_global_state(system, lone)


class TestStateGeneratedPointSet:
    def test_full_time_slice_is_state_generated(self, psys):
        time1 = frozenset(psys.system.points_at_time(1))
        assert state_generated_point_set(psys.system, time1)

    def test_half_of_shared_state_is_not(self):
        from repro.testing import random_psys

        shared_root = random_psys(3, num_trees=1, depth=1)
        system = shared_root.system
        root_points = [point for point in system.points if point.time == 0]
        assert not state_generated_point_set(system, {root_points[0]})
