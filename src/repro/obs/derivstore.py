"""Hash-consed derivation DAGs: schema ``repro-explain/2``.

Schema ``repro-explain/1`` (:mod:`repro.obs.provenance`) serialises a
derivation as a *tree*: every node is written in full where it occurs.
Large ``C_G^alpha`` explains (Section 8's greatest fixed point over a
group) repeat near-identical ``K_i^alpha`` subtrees -- the same agent's
knowledge class produces the same Section 5 evidence at every point of
the class -- so the tree encoding grows with the number of occurrences,
not the number of *distinct* derivation steps.

This module hash-conses: every :class:`~repro.obs.provenance.DerivationNode`
gets a content fingerprint (:func:`node_fingerprint`, the SHA-256 of its
fields with children replaced by *their* fingerprints -- a Merkle hash of
the subtree), and schema ``repro-explain/2`` stores each distinct
subtree once in a node table keyed by fingerprint, with the tree
structure recovered through fingerprint references.  The encoding is a
DAG of the derivation's distinct steps:

* :func:`encode_derivation` / :func:`decode_derivation` -- one
  derivation as a ``repro-explain/2`` document;
* :func:`upgrade` / :func:`downgrade` -- the lossless schema bridge:
  ``downgrade(upgrade(doc))`` reproduces the ``repro-explain/1``
  document byte for byte (canonical serialisation), and fingerprints are
  invariant under the round trip;
* :class:`DerivationStore` -- an accumulating node table shared by many
  derivations (the per-row derivations of a Section 8 guarantee sweep,
  or one ``C_G^alpha`` formula explained at every point), so subtrees
  repeated *across* derivations are also stored once
  (:meth:`DerivationStore.encode_many`).

The audit layer (:mod:`repro.obs.audit`) builds on exactly this: a
bundle streams each distinct node once and its Merkle leaves bind rows
to root fingerprints, which transitively bind every node below them.

Like :mod:`repro.obs.provenance`, everything here is pure JSON-ready
data: no floats (Section 5 semantics is exact), no clocks, no ids -- the
fingerprint of a node is a function of its content and nothing else.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ProvenanceError
from .provenance import (
    EXPLAIN_SCHEMA,
    Derivation,
    DerivationNode,
    derivation_from_json,
)

__all__ = [
    "EXPLAIN_SCHEMA_2",
    "DerivationStore",
    "decode_derivation",
    "downgrade",
    "encode_derivation",
    "encoded_size",
    "node_fingerprint",
    "node_from_table",
    "node_table",
    "upgrade",
]

#: Identifier written into (and demanded from) every DAG-encoded derivation.
EXPLAIN_SCHEMA_2 = "repro-explain/2"


def _canonical(payload) -> str:
    """The canonical serialisation every fingerprint is computed over.

    Deterministic. ``sort_keys`` plus the compact default separators --
    the same convention :meth:`repro.obs.provenance.Derivation.fingerprint`
    already uses, so the two fingerprint families share one byte-level
    definition of "same content".
    """
    return json.dumps(payload, sort_keys=True)


def node_payload(node: DerivationNode, child_refs: Sequence[str]) -> Dict:
    """The JSON-ready form of one node with children as fingerprint refs.

    This is the record stored in a ``repro-explain/2`` node table: every
    field of the ``repro-explain/1`` node (Section 5's rule, formula,
    point, verdict, citation, and evidence) except that ``children``
    holds the child subtrees' fingerprints instead of their bodies.
    """
    return {
        "rule": node.rule,
        "formula": node.formula,
        "point": node.point,
        "holds": node.holds,
        "definition": node.definition,
        "detail": node.detail,
        "children": list(child_refs),
    }


def node_fingerprint(node: DerivationNode) -> str:
    """The Merkle fingerprint of one derivation subtree.

    Deterministic. The SHA-256 of the node's canonical payload with
    children replaced by their own fingerprints, so the hash of a node
    commits transitively to every node below it -- equal fingerprints
    mean equal subtrees, field for field, all the way down (the
    hash-consing key, and what the Section 8 audit leaves bind to).
    Exact. Node content is pure JSON with exact ``"p/q"`` strings
    (enforced at node construction), so no rounding can ever make two
    different subtrees collide on a normalised form.
    """
    child_refs = [node_fingerprint(child) for child in node.children]
    return hashlib.sha256(
        _canonical(node_payload(node, child_refs)).encode("utf-8")
    ).hexdigest()


class DerivationStore:
    """A content-addressed, hash-consing store of derivation subtrees.

    ``add`` interns every distinct subtree of a
    :class:`~repro.obs.provenance.DerivationNode` tree exactly once,
    keyed by :func:`node_fingerprint`, and returns the root's
    fingerprint.  Repeated ``K_i^alpha`` subtrees -- within one large
    ``C_G^alpha`` explain (Section 8) or across the rows of a sweep --
    therefore cost one table entry no matter how often they occur.

    The store only ever grows; it never mutates an interned entry
    (content addressing makes overwriting meaningless: a different node
    has a different key).  ``new_refs`` from :meth:`add_new` is what the
    audit bundle writer streams incrementally, children always before
    parents, so a reader can verify each record against refs it has
    already seen.
    """

    __slots__ = ("_nodes", "nodes_added", "nodes_deduped")

    def __init__(self) -> None:
        self._nodes: Dict[str, Dict] = {}
        #: Distinct subtrees interned so far.
        self.nodes_added = 0
        #: Subtree occurrences answered from the table instead of stored.
        self.nodes_deduped = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, ref: str) -> bool:
        return ref in self._nodes

    def payload(self, ref: str) -> Dict:
        """The stored node payload for one fingerprint."""
        try:
            return self._nodes[ref]
        except KeyError:
            raise ProvenanceError(
                f"derivation store has no node {ref!r}"
            ) from None

    def add(self, node: DerivationNode) -> str:
        """Intern a subtree (children first); return the root fingerprint."""
        ref, _new = self._intern(node)
        return ref

    def add_new(self, node: DerivationNode) -> Tuple[str, List[Tuple[str, Dict]]]:
        """Intern a subtree and also report which entries are new.

        Returns ``(root_ref, new_entries)`` where ``new_entries`` lists
        the ``(ref, payload)`` pairs this call added, in dependency
        order (every child ref precedes any parent that references it) --
        the exact stream order the audit bundle writes node records in.
        """
        new_entries: List[Tuple[str, Dict]] = []
        ref = self._intern_collecting(node, new_entries)
        return ref, new_entries

    def _intern(self, node: DerivationNode) -> Tuple[str, bool]:
        sink: List[Tuple[str, Dict]] = []
        ref = self._intern_collecting(node, sink)
        return ref, bool(sink)

    def _intern_collecting(
        self, node: DerivationNode, new_entries: List[Tuple[str, Dict]]
    ) -> str:
        child_refs = [
            self._intern_collecting(child, new_entries) for child in node.children
        ]
        payload = node_payload(node, child_refs)
        ref = hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()
        if ref in self._nodes:
            self.nodes_deduped += 1
            return ref
        self._nodes[ref] = payload
        self.nodes_added += 1
        new_entries.append((ref, payload))
        return ref

    def node(self, ref: str) -> DerivationNode:
        """Rebuild the :class:`DerivationNode` tree rooted at ``ref``."""
        return node_from_table(self._nodes, ref)

    def table(self) -> Dict[str, Dict]:
        """A JSON-ready copy of the node table (fingerprint -> payload)."""
        return {ref: dict(payload) for ref, payload in self._nodes.items()}

    # -- whole-derivation encoding --------------------------------------

    def encode(self, derivation: Derivation) -> Dict:
        """One derivation as ``repro-explain/2``, against this store.

        The returned document's ``nodes`` table holds only the subtrees
        reachable from this derivation's root (a document must be
        self-contained), but interning happens in the shared store, so
        encoding many derivations through one store still deduplicates
        across them -- see :meth:`encode_many` for the combined form.
        """
        root_ref = self.add(derivation.root)
        return {
            "schema": EXPLAIN_SCHEMA_2,
            "assignment": derivation.assignment,
            "formula": derivation.formula,
            "point": derivation.point,
            "holds": derivation.holds,
            "root": root_ref,
            "nodes": self._reachable(root_ref),
        }

    def encode_many(self, derivations: Iterable[Derivation]) -> Dict:
        """Many derivations sharing one node table (``repro-explain/2``).

        This is the DAG form of a *sweep explain* -- one ``C_G^alpha``
        formula explained at every point, or every row derivation of a
        Section 8 guarantee sweep: subtrees repeated across derivations
        are stored once, which is where the encoding wins big over
        ``repro-explain/1``'s one-tree-per-derivation duplication.
        """
        roots: List[Dict] = []
        refs: List[str] = []
        for derivation in derivations:
            ref = self.add(derivation.root)
            refs.append(ref)
            roots.append(
                {
                    "assignment": derivation.assignment,
                    "formula": derivation.formula,
                    "point": derivation.point,
                    "holds": derivation.holds,
                    "root": ref,
                }
            )
        nodes: Dict[str, Dict] = {}
        for ref in refs:
            nodes.update(self._reachable(ref))
        return {"schema": EXPLAIN_SCHEMA_2, "roots": roots, "nodes": nodes}

    def _reachable(self, root_ref: str) -> Dict[str, Dict]:
        reachable: Dict[str, Dict] = {}
        stack = [root_ref]
        while stack:
            ref = stack.pop()
            if ref in reachable:
                continue
            payload = self.payload(ref)
            reachable[ref] = payload
            stack.extend(payload["children"])
        return reachable


def node_table(derivation: Derivation) -> Dict[str, Dict]:
    """The hash-consed node table of one derivation, standalone."""
    store = DerivationStore()
    store.add(derivation.root)
    return store.table()


def node_from_table(nodes: Mapping[str, Dict], ref: str, _path: str = "root") -> DerivationNode:
    """Rebuild a :class:`DerivationNode` tree from a ``repro-explain/2``
    node table.

    Raises :class:`~repro.errors.ProvenanceError` on a dangling
    fingerprint reference or a structurally malformed table entry -- a
    DAG document is only meaningful when every reference resolves.
    """
    payload = nodes.get(ref)
    if payload is None:
        raise ProvenanceError(
            f"derivation DAG reference {ref!r} at {_path} resolves to no node"
        )
    if not isinstance(payload, Mapping):
        raise ProvenanceError(f"derivation DAG node {ref!r} is not a JSON object")
    missing = {"rule", "formula", "holds", "definition", "children"} - set(payload)
    if missing:
        raise ProvenanceError(
            f"derivation DAG node {ref!r} is missing fields {sorted(missing)}"
        )
    child_refs = payload["children"]
    if not isinstance(child_refs, (list, tuple)) or not all(
        isinstance(child, str) for child in child_refs
    ):
        raise ProvenanceError(
            f"derivation DAG node {ref!r} has non-reference children"
        )
    children = tuple(
        node_from_table(nodes, child, f"{_path}.children[{index}]")
        for index, child in enumerate(child_refs)
    )
    return DerivationNode(
        rule=payload["rule"],
        formula=payload["formula"],
        point=payload.get("point"),
        holds=bool(payload["holds"]),
        definition=payload["definition"],
        detail=payload.get("detail", {}),
        children=children,
    )


def encode_derivation(derivation: Derivation) -> Dict:
    """One derivation as a self-contained ``repro-explain/2`` document."""
    return DerivationStore().encode(derivation)


def decode_derivation(payload) -> Derivation:
    """Decode ``repro-explain/2`` *or* ``repro-explain/1`` to a
    :class:`~repro.obs.provenance.Derivation`.

    The superset reader: consumers that only need the derivation (the
    diff and report tools, :func:`repro.logic.explain.audit_derivation`
    callers) accept either schema through this one entry point; the
    Section 5 content is identical, only the encoding differs.  Raises
    :class:`~repro.errors.ProvenanceError` on any other schema or a
    malformed DAG (dangling reference, missing field).
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as error:
            raise ProvenanceError(f"derivation payload is not JSON: {error}") from None
    if not isinstance(payload, Mapping):
        raise ProvenanceError("derivation payload is not a JSON object")
    schema = payload.get("schema")
    if schema == EXPLAIN_SCHEMA:
        return derivation_from_json(payload)
    if schema != EXPLAIN_SCHEMA_2:
        raise ProvenanceError(
            f"payload schema is {schema!r}, expected {EXPLAIN_SCHEMA!r} "
            f"or {EXPLAIN_SCHEMA_2!r}"
        )
    if "roots" in payload:
        raise ProvenanceError(
            "payload is a multi-root repro-explain/2 document; use "
            "decode_derivations for sweep explains"
        )
    for key in ("assignment", "formula", "point", "root", "nodes"):
        if key not in payload:
            raise ProvenanceError(f"derivation DAG payload is missing {key!r}")
    root = node_from_table(payload["nodes"], payload["root"])
    return Derivation(
        assignment=payload["assignment"],
        formula=payload["formula"],
        point=payload["point"],
        root=root,
    )


def decode_derivations(payload: Mapping) -> List[Derivation]:
    """Decode a multi-root ``repro-explain/2`` document (``encode_many``)."""
    if payload.get("schema") != EXPLAIN_SCHEMA_2 or "roots" not in payload:
        raise ProvenanceError(
            "payload is not a multi-root repro-explain/2 document"
        )
    nodes = payload.get("nodes")
    if not isinstance(nodes, Mapping):
        raise ProvenanceError("multi-root payload has no node table")
    derivations: List[Derivation] = []
    for entry in payload["roots"]:
        if not isinstance(entry, Mapping) or "root" not in entry:
            raise ProvenanceError("multi-root payload has a malformed root entry")
        derivations.append(
            Derivation(
                assignment=entry["assignment"],
                formula=entry["formula"],
                point=entry["point"],
                root=node_from_table(nodes, entry["root"]),
            )
        )
    return derivations


def upgrade(payload) -> Dict:
    """Losslessly re-encode a ``repro-explain/1`` document as ``/2``.

    ``downgrade(upgrade(doc))`` is the identity on canonical bytes, and
    :meth:`Derivation.fingerprint` is invariant: hash-consing changes
    how the tree is *stored*, never what it *says* (the Section 5
    evidence is untouched, shared subtrees decode back to equal nodes).
    A document already in ``/2`` passes through unchanged.
    """
    if isinstance(payload, Mapping) and payload.get("schema") == EXPLAIN_SCHEMA_2:
        return dict(payload)
    return encode_derivation(derivation_from_json(payload))


def downgrade(payload) -> Dict:
    """Losslessly re-encode a ``repro-explain/2`` document as ``/1``.

    The inverse of :func:`upgrade`: the DAG is unfolded back into the
    tree form, duplicating shared subtrees exactly where the original
    tree had them (children reference order is preserved verbatim).  A
    document already in ``/1`` passes through unchanged.
    """
    if isinstance(payload, Mapping) and payload.get("schema") == EXPLAIN_SCHEMA:
        return dict(payload)
    return decode_derivation(payload).json_ready()


def encoded_size(payload) -> int:
    """The canonical byte size of a JSON-ready document.

    The single yardstick the benchmarks and acceptance tests use to
    compare ``repro-explain/1`` against ``/2`` (Section 8's large
    ``C_G^alpha`` explains are where the DAG form wins): same
    serialisation convention as the fingerprints, so the comparison is
    about encoding, not formatting.
    """
    return len(_canonical(payload).encode("utf-8"))
