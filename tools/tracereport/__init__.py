"""tracereport: fold a ``repro-trace/1`` JSONL trace into summary tables.

The :class:`~repro.obs.trace.TraceRecorder` streams every counter,
event, and timing span of an instrumented run; this tool reads the
stream back (via :func:`repro.obs.read_trace`, so schema validation and
truncated-tail handling are shared with the library) and renders the
summaries operators actually ask of a sweep:

* **Top spans** -- count / total / mean / max seconds per span name,
  sorted by total time, so the expensive stage is the first row.
* **Counters** -- every monotonic counter, summed over the trace.
* **Cache hit rate** -- from the last ``cache_stats`` event, as an exact
  ``hits/(hits+misses)`` :class:`fractions.Fraction`.
* **gfp fixpoints** -- how many greatest-fixed-point computations ran
  and how many iterations they took (``gfp`` events).
* **Retry histogram** -- attempts-per-task and outcome counts from the
  sweep engine's ``task_attempt`` events.
* **Audit leaves** -- when the trace carries ``audit_leaf`` events (an
  audited sweep), how many rows were chained and the last chain value.

Usage::

    PYTHONPATH=src python -m tools.tracereport trace.jsonl
    PYTHONPATH=src python -m tools.tracereport --json trace.jsonl
    PYTHONPATH=src python -m tools.tracereport trace.jsonl --metrics m.jsonl
    PYTHONPATH=src python -m tools.tracereport trace.jsonl --audit s.audit

``--metrics`` folds a ``repro-metrics/1`` snapshot into the report as a
worker-merged counters section -- after a pool sweep the snapshot holds
the per-worker shipped totals (``worker.<pid>.*``) and the exact
whole-sweep kernel totals.  ``--audit`` folds a ``repro-audit/1``
bundle in as an audit section: leaf/node totals, the chain root, and
the exact hash-consing dedup ratio (``repro-explain/1`` tree nodes
over ``/2`` table entries).

Exit status: 0 on success, 2 when the trace is not a valid
``repro-trace/1`` artifact, the ``--metrics`` file is not a valid
``repro-metrics/1`` snapshot, or the ``--audit`` file is not a valid
``repro-audit/1`` bundle.
"""

from .report import (
    render_audit,
    render_metrics,
    render_report,
    summarize,
    summarize_audit,
    summarize_metrics,
)

__all__ = [
    "render_audit",
    "render_metrics",
    "render_report",
    "summarize",
    "summarize_audit",
    "summarize_metrics",
]
