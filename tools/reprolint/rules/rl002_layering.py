"""RL002 — enforce the import DAG between subpackages."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from ..model import Module, Violation
from ..registry import Rule, register

#: The architecture, lowest layer first.  A module may import its own
#: layer or any lower one; importing a *higher* layer is a back-edge.
#:
#:     errors < {obs, probability, reporting} < core
#:            < {logic, systems, trees} < betting < attack < robustness
#:
#: ``reporting`` is a single top-level module rather than a subpackage,
#: but it is an import *target* of layered code (robustness streams exact
#: rows through its JSON codecs), so it needs a position in the DAG; it
#: only imports probability's fraction utilities, hence layer 1.
#: ``obs`` is the observability leaf: every instrumented layer (the
#: probability kernels, the model checker, the sweep engine) imports it,
#: so it must sit at the bottom; it reads only ``errors``, ``reporting``
#: (same layer, for the exact-Fraction JSON codec) and the stdlib.
LAYERS = {
    "errors": 0,
    "obs": 1,
    "probability": 1,
    "reporting": 1,
    "core": 2,
    "logic": 3,
    "systems": 3,
    "trees": 3,
    "betting": 4,
    "attack": 5,
    "robustness": 6,
}

#: Top-level helpers (testing, examples_lib, the package initialiser)
#: sit above every layer and may import anything.
UNCONSTRAINED_LAYER = max(LAYERS.values()) + 1

#: The ``repro`` surface the repository tooling may consume.  The tools
#: (reprolint, reproflow, tracereport, tracediff) sit *outside* the
#: library: they audit its artifacts, so they may read the observe-only
#: layers -- ``errors`` (to catch), ``reporting`` (exact JSON codecs),
#: ``obs`` (trace/derivation schemas) -- but never the computational
#: internals (core, logic, probability, ...).  A tool that imported the
#: model checker could silently *recompute* instead of *audit*, and
#: every internal import couples the tools to refactors they should
#: survive.
TOOLS_ALLOWED_REPRO_SUBPACKAGES = frozenset({"errors", "obs", "reporting"})

#: The one sanctioned exception to the read-only surface, per tool.
#: ``verifyaudit``'s whole job is *replay*: it must rebuild the attack
#: system a ``repro-audit/1`` leaf names (``attack``), construct the
#: standard assignments and model (``core``), and re-run
#: ``audit_derivation`` over the recorded DAG (``logic``) -- independent
#: recomputation is the verification, not a shortcut around it.  Every
#: other tool stays artifact-only: an allowance here must name the tool,
#: the subpackages, and (in review) the reason replay is the tool's
#: contract rather than a convenience.
TOOLS_SANCTIONED_REPLAYERS = {
    "verifyaudit": frozenset({"attack", "core", "logic"}),
}

#: Root package of the repository tooling, checked against the repro
#: read-only surface above.
TOOLS_ROOT = "tools"

#: Intra-subpackage layering, for the subpackages whose modules have a
#: meaningful internal order.  Same reading as :data:`LAYERS`: a module
#: may import its own intra-layer or a lower one *at module scope*;
#: function-local imports are the sanctioned deferral for a lower
#: module that needs a higher one at call time (``logic.semantics``
#: building a ``logic.explain`` derivation inside ``Model.explain``).
#: Package initialisers are exempt -- re-exporting the whole subpackage
#: is their job.
INTRA_LAYERS = {
    "obs": {
        "clock": 0,
        "recorder": 0,
        "metrics": 1,
        "trace": 1,
        "provenance": 1,
        # snapshot aggregates recorder state (and, via call-time-deferred
        # imports only, the measure-kernel totals), so it sits above the
        # recorders it reads.
        "snapshot": 2,
        # derivstore hash-conses the trees provenance defines
        # (repro-explain/2 is an encoding of /1, never the other way
        # round); audit chains derivstore fingerprints into bundles.
        "derivstore": 2,
        "audit": 3,
    },
    "logic": {
        "syntax": 0,
        "language": 1,
        "parser": 1,
        "semantics": 1,
        "axioms": 2,
        "common_knowledge": 2,
        # explain re-derives what semantics decides, so it sits above
        # the checker: semantics may never need a derivation to answer.
        "explain": 3,
    },
}


@register
class LayeringRule(Rule):
    rule_id = "RL002"
    title = "import DAG: {obs, probability, reporting} -> core -> {logic, systems, trees} -> betting -> attack -> robustness"
    rationale = """\
The codebase mirrors the paper's construction order: Section 3 builds
probability spaces on runs (probability/, trees/), Section 4-5 define
probability assignments and knowledge at a point (core/), Section 5's
betting game (betting/) is *defined in terms of* those assignments, and
Section 8's coordinated-attack analysis (attack/) consumes everything.
A back-edge -- e.g. core importing betting -- would let the definition of
probabilistic knowledge depend on the game used to characterise it,
making the executable Theorems 7-9 circular instead of theorems.

Runtime imports must respect the layering; imports inside an
`if TYPE_CHECKING:` block are annotation-only and exempt, which is the
sanctioned way for a lower layer to name a higher layer's type in a
signature."""

    def check(self, module: Module) -> Iterator[Violation]:
        if module.root_package == TOOLS_ROOT:
            yield from self._check_tools(module)
            return
        importer_layer = LAYERS.get(module.subpackage, UNCONSTRAINED_LAYER)
        type_checking_nodes = _type_checking_only_nodes(module.tree)
        package_parts = module.rel_parts[:-1]
        for node in ast.walk(module.tree):
            if id(node) in type_checking_nodes:
                continue
            for target in _project_import_targets(node, module, package_parts):
                target_layer = LAYERS.get(target, UNCONSTRAINED_LAYER)
                if target_layer > importer_layer:
                    yield self.violation(
                        module, node,
                        f"back-edge: '{module.subpackage or module.root_package}' "
                        f"(layer {importer_layer}) imports "
                        f"'{target}' (layer {target_layer}); move the "
                        "dependency down or gate it behind TYPE_CHECKING",
                    )
        yield from self._check_intra(module, type_checking_nodes, package_parts)

    def _check_tools(self, module: Module) -> Iterator[Violation]:
        """Tooling may only touch repro's sanctioned read-only surface."""
        type_checking_nodes = _type_checking_only_nodes(module.tree)
        replay_allowance = TOOLS_SANCTIONED_REPLAYERS.get(
            module.subpackage, frozenset()
        )
        for node in ast.walk(module.tree):
            if id(node) in type_checking_nodes:
                continue
            for target in _repro_import_targets(node):
                if target in replay_allowance:
                    continue
                if target not in TOOLS_ALLOWED_REPRO_SUBPACKAGES:
                    allowed = ", ".join(sorted(TOOLS_ALLOWED_REPRO_SUBPACKAGES))
                    yield self.violation(
                        module, node,
                        f"tools/ imports repro internals ('repro.{target}'); "
                        f"the tooling's sanctioned read-only surface is "
                        f"{{{allowed}}} -- audit artifacts, don't recompute "
                        "them (replay allowances are per-tool: "
                        "TOOLS_SANCTIONED_REPLAYERS)",
                    )

    def _check_intra(
        self,
        module: Module,
        type_checking_nodes: Set[int],
        package_parts: Tuple[str, ...],
    ) -> Iterator[Violation]:
        intra = INTRA_LAYERS.get(module.subpackage)
        if intra is None or module.is_package_init or len(module.rel_parts) != 2:
            return
        importer_name = module.rel_parts[-1]
        importer_layer = intra.get(importer_name)
        if importer_layer is None:
            return
        # Module scope only: anything under a def is a sanctioned
        # call-time deferral, so walk top-level statements without
        # descending into function bodies.
        for node in _module_scope_nodes(module.tree):
            if id(node) in type_checking_nodes:
                continue
            for target in _intra_import_targets(node, module, package_parts):
                target_layer = intra.get(target)
                if target_layer is not None and target_layer > importer_layer:
                    yield self.violation(
                        module, node,
                        f"intra-package back-edge: '{module.subpackage}."
                        f"{importer_name}' (layer {importer_layer}) imports "
                        f"'{module.subpackage}.{target}' (layer "
                        f"{target_layer}) at module scope; defer the import "
                        "into the function that needs it or gate it behind "
                        "TYPE_CHECKING",
                    )


def _repro_import_targets(node: ast.AST) -> Iterator[str]:
    """Yield the ``repro`` subpackage (or top-level module) name for each
    absolute import of the library in ``node`` -- the view a ``tools/``
    module has, where ``repro`` is an external package."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                # ``import repro`` alone exposes every subpackage.
                yield parts[1] if len(parts) > 1 else "repro"
    elif isinstance(node, ast.ImportFrom):
        if node.level != 0 or node.module is None:
            return
        parts = node.module.split(".")
        if parts[0] != "repro":
            return
        if len(parts) > 1:
            yield parts[1]
        else:
            for alias in node.names:
                yield alias.name.split(".")[0]


def _project_import_targets(
    node: ast.AST, module: Module, package_parts: Tuple[str, ...]
) -> Iterator[str]:
    """Yield the subpackage name for each project-internal import in ``node``."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == module.root_package and len(parts) > 1:
                yield parts[1]
    elif isinstance(node, ast.ImportFrom):
        resolved = _resolve(node, module, package_parts)
        if resolved is None:
            return
        if len(resolved) > 0:
            yield resolved[0]
        else:
            # ``from . import x`` at the package root: each alias is a
            # subpackage of the root.
            for alias in node.names:
                yield alias.name.split(".")[0]


def _module_scope_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """All nodes reachable from module scope without entering a def."""
    pending = list(tree.body)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        pending.extend(ast.iter_child_nodes(node))


def _intra_import_targets(
    node: ast.AST, module: Module, package_parts: Tuple[str, ...]
) -> Iterator[str]:
    """Yield sibling-module names for imports inside ``module.subpackage``."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if (
                parts[0] == module.root_package
                and len(parts) > 2
                and parts[1] == module.subpackage
            ):
                yield parts[2]
    elif isinstance(node, ast.ImportFrom):
        resolved = _resolve(node, module, package_parts)
        if resolved is None or not resolved or resolved[0] != module.subpackage:
            return
        if len(resolved) > 1:
            yield resolved[1]
        else:
            # ``from . import semantics`` inside the subpackage
            for alias in node.names:
                yield alias.name.split(".")[0]


def _resolve(
    node: ast.ImportFrom, module: Module, package_parts: Tuple[str, ...]
) -> Optional[Tuple[str, ...]]:
    """Resolve an ImportFrom to package-root-relative parts, or None if external."""
    if node.level == 0:
        assert node.module is not None
        parts = tuple(node.module.split("."))
        if parts[0] != module.root_package:
            return None
        return parts[1:]
    if node.level - 1 > len(package_parts):
        return None  # escapes the scanned package; not ours to judge
    base = package_parts[: len(package_parts) - (node.level - 1)]
    suffix = tuple(node.module.split(".")) if node.module else ()
    return tuple(base) + suffix


def _type_checking_only_nodes(tree: ast.Module) -> Set[int]:
    """ids of all nodes nested under an ``if TYPE_CHECKING:`` body."""
    ids: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                for sub in ast.walk(child):
                    ids.add(id(sub))
    return ids


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
