"""Deterministic and randomized system generators for tests and benchmarks.

The theorem verifiers quantify over systems; this module provides both the
hand-built small systems the unit tests pin down and parameterized random
system generation (driven by an explicit integer seed -> deterministic, or
by hypothesis strategies in the property tests).

The deterministic fault-injection harness of
:mod:`repro.robustness.faults` (:class:`Fault`, :class:`FaultPlan`,
:class:`FaultInjectingTask`, :class:`InjectedFault`) is re-exported here
so chaos tests can build seeded fault schedules alongside the system
generators.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .core.facts import Fact
from .core.model import GlobalState, Point
from .robustness.faults import Fault, FaultInjectingTask, FaultPlan, InjectedFault
from .trees.builder import Env, build_tree, chance_step
from .trees.probabilistic_system import ProbabilisticSystem, single_tree_system
from .trees.tree import ComputationTree


def two_agent_coin_psys(
    heads_probability=Fraction(1, 2), observer_sees: bool = False
) -> ProbabilisticSystem:
    """A minimal two-agent system: agent 0 tosses, agent 1 may observe."""

    def step(time, locals_, extra):
        if time == 0:
            watcher = "saw-heads" if observer_sees else "blind"
            watcher_t = "saw-tails" if observer_sees else "blind"
            return chance_step(
                [
                    (heads_probability, "heads", (("tosser-heads", 1), (watcher, 1))),
                    (
                        1 - heads_probability,
                        "tails",
                        (("tosser-tails", 1), (watcher_t, 1)),
                    ),
                ]
            )
        return ()

    tree = build_tree("coin", (("tosser-ready", 0), ("start", 0)), step)
    return single_tree_system(tree)


def _split_unit(parts: int, seed: int) -> List[Fraction]:
    """Deterministically split 1 into ``parts`` positive rationals."""
    weights = [((seed * 2654435761 + index * 40503) % 7) + 1 for index in range(parts)]
    total = sum(weights)
    return [Fraction(weight, total) for weight in weights]


def random_tree(
    seed: int,
    num_agents: int = 2,
    depth: int = 2,
    max_branching: int = 3,
    observability: Optional[Sequence[str]] = None,
    adversary: object = None,
) -> ComputationTree:
    """A deterministic pseudo-random computation tree.

    ``observability[i]`` controls agent ``i``'s local state:

    * ``"full"`` -- sees the entire history (and the clock);
    * ``"clock"`` -- sees only the time;
    * ``"blind"`` -- constant local state (asynchronous agent);
    * ``"parity"`` -- sees the parity of heads-like outcomes (partial info).

    The same seed always produces the same tree, so hypothesis can draw
    seeds and shrink meaningfully.
    """
    observability = tuple(observability or ("clock",) * num_agents)
    if len(observability) != num_agents:
        raise ValueError("observability must match agent count")

    def local_for(agent: int, history: Tuple[int, ...], time: int):
        mode = observability[agent]
        if mode == "full":
            return ("full", history)
        if mode == "clock":
            return ("clock", time)
        if mode == "blind":
            return "blind"
        if mode == "parity":
            return ("parity", sum(history) % 2)
        raise ValueError(f"unknown observability mode {mode!r}")

    def step(time, locals_, extra):
        history: Tuple[int, ...] = extra if extra is not None else ()
        if time >= depth:
            return ()
        state_seed = seed + 1000003 * time + 31 * sum(history) + len(history)
        branching = (state_seed % max_branching) + 1
        if branching == 1 and time == 0:
            branching = 2  # avoid fully deterministic trees at the root
        probabilities = _split_unit(branching, state_seed)
        branches = []
        for index in range(branching):
            new_history = history + (index,)
            new_locals = tuple(
                local_for(agent, new_history, time + 1) for agent in range(num_agents)
            )
            branches.append((probabilities[index], index, new_locals, new_history))
        return branches

    initial = tuple(local_for(agent, (), 0) for agent in range(num_agents))
    return build_tree(
        adversary if adversary is not None else ("random", seed),
        initial,
        step,
        max_depth=depth + 1,
        initial_extra=(),
    )


def random_psys(
    seed: int,
    num_trees: int = 1,
    num_agents: int = 2,
    depth: int = 2,
    max_branching: int = 3,
    observability: Optional[Sequence[str]] = None,
) -> ProbabilisticSystem:
    """A deterministic pseudo-random probabilistic system."""
    trees = [
        random_tree(
            seed + 7919 * index,
            num_agents=num_agents,
            depth=depth,
            max_branching=max_branching,
            observability=observability,
            adversary=("random", seed, index),
        )
        for index in range(num_trees)
    ]
    return ProbabilisticSystem(trees)


def history_fact(predicate, name: str = "history-fact") -> Fact:
    """A fact about the (builder-generated) history in the environment."""
    return Fact(
        lambda point: predicate(point.global_state.environment.history), name=name
    )


def parity_fact() -> Fact:
    """"The sum of outcome indices so far is even" -- a state fact that
    changes along runs, useful for exercising temporal operators."""
    return history_fact(lambda history: sum(history) % 2 == 0, name="even-parity")


def first_branch_fact() -> Fact:
    """"The first probabilistic choice was branch 0" -- a fact about the run
    (once time >= 1)."""
    return history_fact(
        lambda history: bool(history) and history[0] == 0, name="first-branch-0"
    )


def all_observability_profiles(num_agents: int) -> List[Tuple[str, ...]]:
    """Every combination of observability modes for the given agent count."""
    modes = ("full", "clock", "blind", "parity")
    return list(itertools.product(modes, repeat=num_agents))
