"""The verifyaudit CLI: certifying audit bundles without resweeping."""

import json
import sys
from fractions import Fraction
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.robustness import default_audit_path, robust_guarantee_sweep  # noqa: E402

from tools.verifyaudit import (  # noqa: E402
    REPORT_SCHEMA,
    default_checkpoint_path,
    render_report,
    select_leaves,
    verify_audit,
)
from tools.verifyaudit.cli import main as cli_main  # noqa: E402

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]


def make_audited_sweep(tmp_path):
    """One audited sweep; returns (checkpoint_path, audit_path)."""
    checkpoint = tmp_path / "sweep.jsonl"
    robust_guarantee_sweep(
        MESSENGERS, LOSSES, max_workers=1, checkpoint_path=checkpoint, audit=True
    )
    return checkpoint, Path(default_audit_path(checkpoint))


def tamper_first_leaf(audit_path):
    lines = audit_path.read_text().splitlines()
    out = []
    done = False
    for line in lines:
        record = json.loads(line)
        if record.get("type") == "leaf" and not done:
            record["row"]["post_threshold"] = "1/999"
            done = True
        out.append(json.dumps(record, sort_keys=True))
    assert done
    audit_path.write_text("\n".join(out) + "\n")


class TestVerifyAudit:
    def test_clean_bundle_all_tiers(self, tmp_path):
        checkpoint, audit_path = make_audited_sweep(tmp_path)
        report = verify_audit(str(audit_path))
        assert report["schema"] == REPORT_SCHEMA
        assert report["verdict"] == "clean"
        assert report["checkpoint"] == str(checkpoint)
        assert report["replayed"] == report["leaves"] == 6
        assert report["hash_defects"] == []
        assert report["checkpoint_defects"] == []
        assert report["replay_defects"] == []

    def test_tampered_bundle_is_divergent(self, tmp_path):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        tamper_first_leaf(audit_path)
        report = verify_audit(str(audit_path))
        assert report["verdict"] == "divergent"
        assert report["hash_defects"]

    def test_sample_replays_fewer_derivations(self, tmp_path):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        report = verify_audit(str(audit_path), sample=2)
        assert report["replayed"] == 2
        assert report["verdict"] == "clean"

    def test_skip_replay_runs_cheap_tiers_only(self, tmp_path):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        report = verify_audit(str(audit_path), replay=False)
        assert report["replayed"] == 0
        assert report["verdict"] == "clean"

    def test_explicit_checkpoint_overrides_convention(self, tmp_path):
        checkpoint, audit_path = make_audited_sweep(tmp_path)
        moved = tmp_path / "moved.jsonl"
        checkpoint.rename(moved)
        report = verify_audit(str(audit_path), checkpoint_path=str(moved))
        assert report["checkpoint"] == str(moved)
        assert report["verdict"] == "clean"

    def test_missing_checkpoint_skips_tier_2(self, tmp_path):
        checkpoint, audit_path = make_audited_sweep(tmp_path)
        checkpoint.unlink()
        report = verify_audit(str(audit_path))
        assert report["checkpoint"] is None
        assert report["checkpoint_defects"] == []
        assert report["verdict"] == "clean"

    def test_render_report_carries_the_verdict(self, tmp_path):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        text = render_report(verify_audit(str(audit_path), replay=False))
        assert "verdict:    CLEAN" in text
        assert str(audit_path) in text


class TestHelpers:
    def test_default_checkpoint_path_convention(self, tmp_path):
        checkpoint, audit_path = make_audited_sweep(tmp_path)
        assert default_checkpoint_path(str(audit_path)) == str(checkpoint)
        checkpoint.unlink()
        assert default_checkpoint_path(str(audit_path)) is None
        assert default_checkpoint_path("bundle.jsonl") is None

    def test_select_leaves_is_deterministic_and_even(self):
        leaves = [{"index": position} for position in range(10)]
        assert select_leaves(leaves, None) == leaves
        assert select_leaves(leaves, 99) == leaves
        first = select_leaves(leaves, 3)
        assert first == select_leaves(leaves, 3)
        assert len(first) == 3
        assert [leaf["index"] for leaf in first] == [0, 3, 6]


class TestCli:
    def test_clean_bundle_exits_0(self, tmp_path, capsys):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        assert cli_main([str(audit_path)]) == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_tampered_bundle_exits_1(self, tmp_path, capsys):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        tamper_first_leaf(audit_path)
        assert cli_main([str(audit_path)]) == 1
        assert "DEFECT" in capsys.readouterr().out

    def test_unreadable_bundle_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "no-such.audit"
        assert cli_main([str(missing)]) == 2
        assert "verifyaudit:" in capsys.readouterr().err

    def test_garbage_bundle_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.audit"
        path.write_text('{"type": "header", "schema": "repro-trace/1"}\n')
        assert cli_main([str(path)]) == 2
        assert "verifyaudit:" in capsys.readouterr().err

    def test_json_report_round_trips(self, tmp_path, capsys):
        _checkpoint, audit_path = make_audited_sweep(tmp_path)
        assert cli_main(["--json", "--skip-replay", str(audit_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["verdict"] == "clean"
