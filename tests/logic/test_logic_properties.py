"""Property-based semantic laws of L(Phi) over random formulas (hypothesis)."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import (
    And,
    Iff,
    Implies,
    Knows,
    Model,
    Next,
    Not,
    Or,
    PrAtLeast,
    Prop,
    Until,
    eventually,
    henceforth,
)
from repro.testing import parity_fact, random_psys

SLOW = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(scope="module")
def model():
    psys = random_psys(seed=77, depth=3, observability=("parity", "full"))
    post = standard_assignments(psys)["post"]
    return Model(post, {"even": parity_fact(), "first": _first_fact()})


def _first_fact():
    from repro.testing import history_fact

    return history_fact(lambda history: bool(history) and history[0] == 0, "first")


def formulas():
    leaves = st.sampled_from([Prop("even"), Prop("first")])
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            children.map(Not),
            children.map(Next),
            st.tuples(children, children).map(lambda pair: And(*pair)),
            st.tuples(children, children).map(lambda pair: Or(*pair)),
            st.tuples(children, children).map(lambda pair: Until(*pair)),
            children.map(lambda sub: Knows(0, sub)),
            children.map(lambda sub: Knows(1, sub)),
            children.map(lambda sub: PrAtLeast(0, sub, Fraction(1, 2))),
        ),
        max_leaves=6,
    )


@SLOW
@given(formulas())
def test_double_negation(model, formula):
    assert model.extension(Not(Not(formula))) == model.extension(formula)


@SLOW
@given(formulas(), formulas())
def test_de_morgan(model, left, right):
    assert model.extension(Not(And(left, right))) == model.extension(
        Or(Not(left), Not(right))
    )


@SLOW
@given(formulas(), formulas())
def test_knowledge_distributes_over_conjunction(model, left, right):
    assert model.extension(Knows(0, And(left, right))) == model.extension(
        And(Knows(0, left), Knows(0, right))
    )


@SLOW
@given(formulas())
def test_s5_theorems(model, formula):
    assert model.valid(Implies(Knows(0, formula), formula))
    assert model.valid(Implies(Knows(0, formula), Knows(0, Knows(0, formula))))
    assert model.valid(
        Implies(Not(Knows(0, formula)), Knows(0, Not(Knows(0, formula))))
    )


@SLOW
@given(formulas())
def test_eventually_globally_duality(model, formula):
    assert model.extension(eventually(formula)) == model.extension(
        Not(henceforth(Not(formula)))
    )


@SLOW
@given(formulas(), formulas())
def test_until_implies_eventually(model, left, right):
    until = model.extension(Until(left, right))
    finally_right = model.extension(eventually(right))
    assert until <= finally_right


@SLOW
@given(formulas())
def test_next_globally_commute(model, formula):
    # X G phi == G phi restricted appropriately: at least X G -> G X
    left = model.extension(Next(henceforth(formula)))
    right = model.extension(henceforth(Next(formula)))
    assert left == right


@SLOW
@given(formulas())
def test_probability_monotone_in_threshold(model, formula):
    higher = model.extension(PrAtLeast(0, formula, Fraction(2, 3)))
    lower = model.extension(PrAtLeast(0, formula, Fraction(1, 3)))
    assert higher <= lower


@SLOW
@given(formulas())
def test_knowledge_implies_certainty(model, formula):
    # consistency of the post assignment, over random formulas
    assert model.valid(
        Implies(Knows(0, formula), PrAtLeast(0, formula, Fraction(1)))
    )


@SLOW
@given(formulas(), formulas())
def test_iff_is_two_implications(model, left, right):
    assert model.extension(Iff(left, right)) == model.extension(
        And(Implies(left, right), Implies(right, left))
    )
