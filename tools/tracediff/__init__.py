"""tracediff: explain *why* two runs differ, not just that they do.

Compares two observability artifacts -- ``repro-trace/1`` JSONL traces,
``repro-explain/1`` or hash-consed ``repro-explain/2`` derivation files,
``repro-audit/1`` Merkle audit bundles, ``repro-bench/2`` benchmark
reports, or ``repro-metrics/1`` snapshot streams (auto-detected) -- and
reports:

* **counter deltas** -- every monotonic counter whose folded total
  changed between the runs;
* **hit-rate shift** -- the exact measure-kernel cache hit rate of each
  run (a :class:`fractions.Fraction`) and their exact difference;
* **timing ratios** -- per-span-name total-seconds ratio B/A (reported,
  never failed on: timing drifts, content must not);
* **first divergence** -- the first position where the two normalised
  record streams disagree, and, when the diverging records carry
  ``repro-explain/1`` derivations, the first diverging *derivation node*
  by tree path (aligned by derivation fingerprint).

For metrics streams the final snapshots are compared: counter and
kernel-total deltas are content (worker pids masked -- the telemetry
layer ships deterministic per-attempt deltas, only their pid labels
vary), span seconds are timing.  Two runs with the same seeds and fault
plan must produce zero divergence; two chaos runs with different fault plans diverge, and the
first diverging record localises where.  ``--bisect`` skips the
aggregate summaries and binary-searches straight to the first diverging
record (rolling hash chains over normalised records, the bundle's own
Merkle chain for ``repro-audit/1``) or derivation node
(fingerprint-guided descent that never enters a shared subtree),
printing a minimal reproduction pointer.  Usage::

    PYTHONPATH=src python -m tools.tracediff A.jsonl B.jsonl
    PYTHONPATH=src python -m tools.tracediff --json A B
    PYTHONPATH=src python -m tools.tracediff --bisect A.audit B.audit
    make trace-diff A=a.jsonl B=b.jsonl

Exit status: 0 on success (divergence or not), 1 with
``--fail-on-divergence`` when content diverged, 2 when either file is
unreadable or fails schema validation -- the only condition CI fails on.
"""

from .bisect import bisect_artifacts, render_bisect
from .diff import (
    diff_artifacts,
    diff_audit,
    diff_bench,
    diff_derivations,
    diff_explain_dag,
    diff_metrics,
    diff_traces,
    load_artifact,
    render_diff,
)

__all__ = [
    "bisect_artifacts",
    "diff_artifacts",
    "diff_audit",
    "diff_bench",
    "diff_derivations",
    "diff_explain_dag",
    "diff_metrics",
    "diff_traces",
    "load_artifact",
    "render_bisect",
    "render_diff",
]
