"""Visualization helpers for computation trees.

Besides the ASCII rendering on :class:`ComputationTree` itself (Figure 1),
this module emits Graphviz DOT text and tabular run summaries -- useful for
inspecting the systems the simulator generates and for documentation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.model import GlobalState
from ..probability.fractionutil import format_fraction
from .probabilistic_system import ProbabilisticSystem
from .tree import ComputationTree

Describe = Callable[[GlobalState], str]


def _default_describe(state: GlobalState) -> str:
    return ", ".join(repr(local) for local in state.local_states)


def tree_to_dot(
    tree: ComputationTree,
    describe: Optional[Describe] = None,
    graph_name: str = "computation_tree",
) -> str:
    """Graphviz DOT text for a labeled computation tree.

    Node labels come from ``describe`` (default: the local-state tuple);
    edge labels are the exact transition probabilities.
    """
    describe = describe or _default_describe
    nodes = sorted(tree.nodes, key=repr)
    index_of = {node: index for index, node in enumerate(nodes)}
    lines: List[str] = [f"digraph {graph_name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for node in nodes:
        label = describe(node).replace('"', "'")
        lines.append(f'  n{index_of[node]} [label="{label}"];')
    for parent, child in tree.edges:
        probability = format_fraction(tree.edge_probability(parent, child))
        lines.append(
            f'  n{index_of[parent]} -> n{index_of[child]} [label="{probability}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def run_table(
    tree: ComputationTree, describe: Optional[Describe] = None
) -> str:
    """A plain-text table: one row per run with its probability and states."""
    describe = describe or _default_describe
    lines = ["run  probability  trajectory"]
    for index, run in enumerate(tree.runs):
        probability = format_fraction(tree.run_probability(run))
        trajectory = " -> ".join(describe(state) for state in run.states)
        lines.append(f"{index:<4} {probability:<12} {trajectory}")
    return "\n".join(lines)


def system_summary(psys: ProbabilisticSystem) -> str:
    """A one-line-per-tree overview of a probabilistic system."""
    lines = ["adversary  runs  points  depth"]
    for adversary in psys.adversaries:
        tree = psys.tree(adversary)
        lines.append(
            f"{adversary!r:<10} {len(tree.runs):>4}  {len(tree.points):>6}  "
            f"{tree.depth():>5}"
        )
    return "\n".join(lines)
