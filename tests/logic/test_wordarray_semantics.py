"""Word-array knowledge folds agree with the bitmask folds, bit for bit.

A model built under the ``wordarray`` backend routes ``K_i``, ``E_G``
and the ``C_G`` greatest fixed point through the batched
:class:`~repro.probability.wordmask.PartitionKernel`; the same formulas
checked under ``bitmask`` must yield identical extension masks on a real
system (the three-agent coin example, whose masks straddle nothing, and
a 70-plus-point repeated-coin system whose masks span word boundaries).
"""

import pytest

from repro.core import standard_assignments
from repro.examples_lib import repeated_coin_system, three_agent_coin_system
from repro.logic import Model, parse
from repro.obs import Recorder, use_recorder
from repro.probability import use_backend, wordmask

pytestmark = pytest.mark.skipif(
    not wordmask.available(), reason="numpy not installed"
)

FORMULAS = [
    "K0 heads",
    "K2 heads",
    "!K1 heads",
    "E{0,1} (heads | !heads)",
    "E{0,1,2} heads",
    "C{0,1} (heads | !heads)",
    "C{0,1,2} heads",
    "K0 (K1 heads | !heads)",
    "C{0,1} !K2 !heads",
]


def build_models(example_factory, prop_of):
    example = example_factory()
    post = standard_assignments(example.psys)["post"]
    with use_backend("bitmask"):
        bitmask_model = Model(post, {"heads": prop_of(example)})
    with use_backend("wordarray"):
        wordarray_model = Model(post, {"heads": prop_of(example)})
    assert not bitmask_model._words
    assert wordarray_model._words
    return bitmask_model, wordarray_model


@pytest.fixture(scope="module")
def coin_models():
    return build_models(three_agent_coin_system, lambda example: example.heads)


@pytest.fixture(scope="module")
def wide_models():
    """Masks over >64 points: word arrays carry a partial tail word."""
    return build_models(
        lambda: repeated_coin_system(4),
        lambda example: example.most_recent_heads,
    )


@pytest.mark.parametrize("text", FORMULAS)
def test_extension_masks_identical(coin_models, text):
    bitmask_model, wordarray_model = coin_models
    formula = parse(text)
    assert wordarray_model.extension_mask(formula) == bitmask_model.extension_mask(
        formula
    )
    assert wordarray_model.extension(formula) == bitmask_model.extension(formula)


@pytest.mark.parametrize("text", FORMULAS)
def test_extension_masks_identical_past_one_word(wide_models, text):
    bitmask_model, wordarray_model = wide_models
    assert len(wordarray_model._index) > 64
    assert wordarray_model._n_words >= 2
    formula = parse(text)
    assert wordarray_model.extension_mask(formula) == bitmask_model.extension_mask(
        formula
    )


def test_empty_group_everyone_is_the_full_space(coin_models):
    bitmask_model, wordarray_model = coin_models
    full = wordarray_model._full_mask
    assert wordarray_model._everyone_mask((), full) == full
    assert wordarray_model._everyone_mask((), 0) == full
    assert bitmask_model._everyone_mask((), 0) == full


def test_backend_latches_at_model_construction(coin_models):
    _, wordarray_model = coin_models
    # built under wordarray, still word-routed after the backend reverts
    assert wordarray_model._words
    formula = parse("C{0,1,2} heads")
    with use_backend("bitmask"):
        mask = wordarray_model.extension_mask(formula)
    with use_backend("wordarray"):
        fresh = Model(
            wordarray_model.assignment, dict(wordarray_model.valuation)
        )
        assert fresh.extension_mask(formula) == mask


class _EventRecorder(Recorder):
    def __init__(self):
        self.events = []

    def event(self, kind, **fields):
        self.events.append((kind, fields))


def test_gfp_events_report_wordarray_representation():
    example = three_agent_coin_system()
    post = standard_assignments(example.psys)["post"]
    formula = parse("C{0,1} heads")
    recorder = _EventRecorder()
    with use_backend("wordarray"):
        model = Model(post, {"heads": example.heads})
        with use_recorder(recorder):
            word_mask = model.extension_mask(formula)
    gfp_events = [fields for kind, fields in recorder.events if kind == "gfp"]
    assert gfp_events and all(
        fields["representation"] == "wordarray" for fields in gfp_events
    )
    iteration_events = [
        fields for kind, fields in recorder.events if kind == "gfp_iteration"
    ]
    assert iteration_events
    # the per-iteration snapshots expose plain int masks, like the int path
    assert all(
        isinstance(fields["updated_mask"], int) for fields in iteration_events
    )
    with use_backend("bitmask"):
        int_model = Model(post, {"heads": example.heads})
    assert word_mask == int_model.extension_mask(formula)
