"""The four named sample-space assignments and the lattice (Section 6).

* ``S_post`` -- ``Tree_ic``: the points of ``T(c)`` the agent considers
  possible.  Betting against a copy of yourself; the decision theorist's
  posterior; the assignment advocated by [FZ88a] in the synchronous case.
* ``S_fut`` -- ``Pref_ic``: the points with the global state ``r(k)``.
  Betting against an opponent with complete knowledge of the past
  ([HMT88], [LS82]); past events have probability 0 or 1.
* ``S^j`` (``S_opp``) -- ``Tree^j_ic = Tree_ic intersect Tree_jc``: betting
  against agent ``p_j``; the joint knowledge of bettor and opponent.
* ``S_prior`` -- ``All_ic``: all time-``k`` points of ``T(c)``; simulates
  the a-priori probability on runs; *inconsistent* (ignores everything the
  agent has learned).

The module also provides executable forms of Proposition 4 (refinement
partitions along the lattice) and Proposition 5 (lower assignments are
conditionings of higher ones).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from ..errors import AssignmentError
from .assignments import PointSet, ProbabilityAssignment, SampleSpaceAssignment
from .model import Point

if TYPE_CHECKING:
    # Annotation-only: core sits below trees in the import DAG (RL002).
    from ..trees.probabilistic_system import ProbabilisticSystem
    from ..trees.tree import ComputationTree


class _TreeIndexed(SampleSpaceAssignment):
    """Shared machinery: per-tree, per-agent index from local state to points."""

    def __init__(self, psys: ProbabilisticSystem, name: Optional[str] = None) -> None:
        super().__init__(psys, name)
        self._local_index: Dict[tuple, PointSet] = {}
        self._time_index: Dict[tuple, PointSet] = {}
        self._state_index: Dict[tuple, PointSet] = {}
        for tree in psys.trees:
            by_time: Dict[int, List[Point]] = {}
            by_state: Dict[object, List[Point]] = {}
            agent_locals: List[Dict[object, List[Point]]] = []
            # read each run's state tuple directly instead of dispatching
            # through point.local_state: this loop touches every
            # (point, agent) pair of every tree.  Plain lists suffice --
            # tree.points enumerates each point exactly once.
            for point in tree.points:
                state = point.run.states[point.time]
                by_time.setdefault(point.time, []).append(point)
                by_state.setdefault(state, []).append(point)
                locals_ = state.local_states
                if len(agent_locals) < len(locals_):
                    agent_locals.extend(
                        {} for _ in range(len(locals_) - len(agent_locals))
                    )
                for agent, local in enumerate(locals_):
                    agent_locals[agent].setdefault(local, []).append(point)
            adversary = tree.adversary
            for time, points in by_time.items():
                self._time_index[(adversary, time)] = frozenset(points)
            for state, points in by_state.items():
                self._state_index[(adversary, state)] = frozenset(points)
            for agent, mapping in enumerate(agent_locals):
                for local, points in mapping.items():
                    self._local_index[(adversary, agent, local)] = frozenset(points)

    def tree_points_with_local(self, tree: ComputationTree, agent: int, local) -> PointSet:
        """``Tree_ic`` ingredients: points of the tree with a given local state."""
        return self._local_index.get((tree.adversary, agent, local), frozenset())

    def tree_points_at_time(self, tree: ComputationTree, time: int) -> PointSet:
        """All time-``k`` points of the tree (``All_ic``)."""
        return self._time_index.get((tree.adversary, time), frozenset())

    def tree_points_with_state(self, tree: ComputationTree, state) -> PointSet:
        """All points of the tree with a given global state (``Pref_ic``)."""
        return self._state_index.get((tree.adversary, state), frozenset())


class PostAssignment(_TreeIndexed):
    """``S_post``: ``S(i, c) = Tree_ic = { d in T(c) : c ~_i d }``."""

    def __init__(self, psys: ProbabilisticSystem) -> None:
        super().__init__(psys, name="post")

    def sample_space(self, agent: int, point: Point) -> PointSet:
        tree = self.psys.tree_of(point)
        return self.tree_points_with_local(tree, agent, point.local_state(agent))


class FutureAssignment(_TreeIndexed):
    """``S_fut``: ``S(i, c) = Pref_ic`` -- all points with global state ``r(k)``.

    Independent of the agent; by the technical assumption these are exactly
    the points ``(r', k)`` whose runs extend ``c``'s node, so events decided
    before ``c`` get probability 0 or 1 (hence "future").
    """

    def __init__(self, psys: ProbabilisticSystem) -> None:
        super().__init__(psys, name="fut")

    def sample_space(self, agent: int, point: Point) -> PointSet:
        tree = self.psys.tree_of(point)
        return self.tree_points_with_state(tree, point.global_state)


class OpponentAssignment(_TreeIndexed):
    """``S^j``: ``S(i, c) = Tree^j_ic = Tree_ic intersect Tree_jc``.

    The joint knowledge of the agent and its betting opponent ``p_j``.
    Note ``Tree^i_ic = Tree_ic``, so ``OpponentAssignment(psys, i)`` for
    agent ``i`` itself coincides with ``S_post`` *for that agent* (the
    full assignments still differ, as the paper's footnote 12 observes).
    """

    def __init__(self, psys: ProbabilisticSystem, opponent: int) -> None:
        super().__init__(psys, name=f"opp({opponent})")
        self.opponent = opponent

    def sample_space(self, agent: int, point: Point) -> PointSet:
        tree = self.psys.tree_of(point)
        mine = self.tree_points_with_local(tree, agent, point.local_state(agent))
        theirs = self.tree_points_with_local(
            tree, self.opponent, point.local_state(self.opponent)
        )
        return mine & theirs


class PriorAssignment(_TreeIndexed):
    """``S_prior``: ``S(i, c) = All_ic`` -- every time-``k`` point of ``T(c)``.

    Simulates the a-priori probability on runs; inconsistent in general
    (``S_ic`` need not be contained in ``K_i(c)``), which Section 8 shows
    can make an agent "know with high probability" a fact it knows false.
    """

    def __init__(self, psys: ProbabilisticSystem) -> None:
        super().__init__(psys, name="prior")

    def sample_space(self, agent: int, point: Point) -> PointSet:
        tree = self.psys.tree_of(point)
        return self.tree_points_at_time(tree, point.time)


def standard_assignments(psys: ProbabilisticSystem) -> Dict[str, ProbabilityAssignment]:
    """The named probability assignments ``P_post``, ``P_fut``, ``P_prior``."""
    return {
        "post": ProbabilityAssignment(PostAssignment(psys)),
        "fut": ProbabilityAssignment(FutureAssignment(psys)),
        "prior": ProbabilityAssignment(PriorAssignment(psys)),
    }


def opponent_assignment(psys: ProbabilisticSystem, opponent: int) -> ProbabilityAssignment:
    """The probability assignment ``P^j`` for betting against ``p_j``."""
    return ProbabilityAssignment(OpponentAssignment(psys, opponent))


# ----------------------------------------------------------------------
# Proposition 4: refinement partitions along the lattice
# ----------------------------------------------------------------------


def refinement_partition(
    lower: SampleSpaceAssignment,
    higher: SampleSpaceAssignment,
    agent: int,
    point: Point,
) -> Tuple[PointSet, ...]:
    """Partition ``S'_ic`` (higher) into sets ``S_id`` (lower), ``d in S'_ic``.

    Proposition 4: possible whenever both assignments are standard and
    ``lower <= higher``.  Raises :class:`AssignmentError` if the claimed
    partition fails (which would falsify the proposition for this instance).
    """
    big = higher.sample_space(agent, point)
    blocks: List[PointSet] = []
    covered: set = set()
    for member in sorted(big, key=lambda p: (p.time, repr(p.global_state))):
        if member in covered:
            continue
        block = lower.sample_space(agent, member)
        if not block <= big:
            raise AssignmentError(
                f"S_id escapes S'_ic at {member!r}: refinement fails"
            )
        if covered & block:
            raise AssignmentError("refinement blocks overlap: S is not uniform")
        blocks.append(block)
        covered |= block
    if covered != set(big):
        raise AssignmentError("refinement blocks do not cover S'_ic")
    return tuple(blocks)


# ----------------------------------------------------------------------
# Proposition 5: conditioning along the lattice
# ----------------------------------------------------------------------


def conditioning_identity_holds(
    lower: ProbabilityAssignment,
    higher: ProbabilityAssignment,
    agent: int,
    point: Point,
) -> bool:
    """Check Proposition 5 at one (agent, point).

    With ``P <= P'`` consistent and standard in a synchronous system:
    (a) every measurable ``S in X_ic`` is measurable in ``X'_ic``;
    (b) ``mu'_ic(S_ic) > 0``;
    (c) ``mu_ic(S) = mu'_ic(S | S_ic)``.
    """
    small_sample = lower.sample_space(agent, point)
    small_space = lower.space(agent, point)
    big_space = higher.space(agent, point)
    if not big_space.is_measurable(small_sample):
        return False
    if big_space.measure(small_sample) == 0:
        return False
    conditioned = big_space.condition(small_sample)
    for atom in small_space.atoms:
        if not big_space.is_measurable(atom):
            return False
        if conditioned.measure(atom) != small_space.measure(atom):
            return False
    return True


def conditioning_identity_everywhere(
    lower: ProbabilityAssignment, higher: ProbabilityAssignment
) -> bool:
    """Proposition 5 checked at every agent and point of the system."""
    system = lower.psys.system
    return all(
        conditioning_identity_holds(lower, higher, agent, point)
        for agent in system.agents
        for point in system.points
    )
