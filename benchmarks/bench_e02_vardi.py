"""E02 -- Section 3: the Vardi input-coin example and footnote 5.

Paper claims: conditional P(heads | bit=0) = 1/2, P(heads | bit=1) = 2/3,
no unconditional probability of heads; and (footnote 5) the event "action a
is performed" is non-measurable in the unfactored system, while making it
measurable would force probabilities onto the nondeterministic input bit.
"""

from fractions import Fraction

from repro.core import standard_assignments
from repro.examples_lib import footnote5_demonstration, input_coin_system
from repro.reporting import print_table


def run_experiment():
    example = input_coin_system()
    post = standard_assignments(example.psys)["post"]
    per_tree = {
        example.psys.adversary_of(point): post.probability(1, point, example.heads)
        for point in example.psys.system.points_at_time(1)
    }
    footnote = footnote5_demonstration()
    return per_tree, footnote


def test_e02_vardi_input_coin(benchmark):
    per_tree, footnote = benchmark(run_experiment)
    print_table(
        "E02  Vardi input-coin: P(heads) per type-1 adversary",
        ["adversary", "paper", "measured"],
        [
            ("bit=0", Fraction(1, 2), per_tree["bit=0"]),
            ("bit=1", Fraction(2, 3), per_tree["bit=1"]),
        ],
    )
    print_table(
        "E02  footnote 5: measurability in the unfactored system",
        ["event", "paper", "measured"],
        [
            ("action a measurable", "no", "yes" if footnote.action_measurable_before else "no"),
            (
                "bit events measurable",
                "no",
                "yes" if footnote.bit_events_measurable_before else "no",
            ),
            (
                "bit events measurable after adding a",
                "yes",
                "yes" if footnote.bit_events_measurable_after else "no",
            ),
        ],
    )
    assert per_tree == {"bit=0": Fraction(1, 2), "bit=1": Fraction(2, 3)}
    assert not footnote.action_measurable_before
    assert not footnote.bit_events_measurable_before
    assert footnote.bit_events_measurable_after
