"""The deterministic fault-injection harness."""

import pytest

from repro.errors import ReproError
from repro.robustness import TaskContext
from repro.testing import Fault, FaultInjectingTask, FaultPlan, InjectedFault


def _identity(value):
    return value


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(kind="meltdown")

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Fault(kind="raise", delay=-1.0)


class TestFaultPlan:
    def test_lookup(self):
        plan = FaultPlan({(2, 0): Fault("raise")})
        assert plan.fault_for(2, 0) == Fault("raise")
        assert plan.fault_for(2, 1) is None
        assert plan.fault_for(0, 0) is None
        assert len(plan) == 1

    def test_from_seed_is_reproducible(self):
        one = FaultPlan.from_seed(seed=13, task_count=20)
        two = FaultPlan.from_seed(seed=13, task_count=20)
        assert one.schedule == two.schedule

    def test_different_seeds_differ(self):
        schedules = {
            frozenset(FaultPlan.from_seed(seed=seed, task_count=20).schedule)
            for seed in range(5)
        }
        assert len(schedules) > 1

    def test_from_seed_only_faults_early_attempts(self):
        plan = FaultPlan.from_seed(seed=3, task_count=50, rate=0.9, max_faulty_attempts=2)
        assert plan.schedule, "a 0.9 rate over 50 tasks must schedule something"
        assert all(attempt < 2 for (_index, attempt) in plan.schedule)


class TestFaultInjectingTask:
    def test_clean_attempts_pass_through(self):
        task = FaultInjectingTask(inner=_identity, plan=FaultPlan())
        assert task("payload", TaskContext(index=0, attempt=0)) == "payload"

    def test_scheduled_raise_fires_injected_fault(self):
        plan = FaultPlan({(0, 0): Fault("raise")})
        task = FaultInjectingTask(inner=_identity, plan=plan)
        with pytest.raises(InjectedFault):
            task("payload", TaskContext(index=0, attempt=0))
        # the next attempt is clean
        assert task("payload", TaskContext(index=0, attempt=1)) == "payload"

    def test_kill_outside_a_worker_raises_instead(self):
        # In the parent process there is no worker to kill; the injector
        # must degrade to a raise so in-process runs survive chaos plans.
        plan = FaultPlan({(1, 0): Fault("kill")})
        task = FaultInjectingTask(inner=_identity, plan=plan)
        with pytest.raises(InjectedFault):
            task("payload", TaskContext(index=1, attempt=0))

    def test_injected_fault_is_a_repro_error(self):
        assert issubclass(InjectedFault, ReproError)

    def test_wrapper_opts_into_the_context_protocol(self):
        task = FaultInjectingTask(inner=_identity, plan=FaultPlan())
        assert task.wants_context is True
