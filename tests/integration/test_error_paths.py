"""Failure injection: every guard in the stack fires with a precise error.

These tests feed deliberately malformed inputs through the public API and
check that the error hierarchy in :mod:`repro.errors` catches them at the
right layer -- probability first, then model, trees, assignments, logic,
betting, simulation.
"""

from fractions import Fraction

import pytest

from repro import errors
from repro.core import (
    ExplicitAssignment,
    Fact,
    GlobalState,
    Point,
    ProbabilityAssignment,
    Run,
    System,
    check_req1,
    check_req2,
    induced_point_space,
)
from repro.examples_lib import three_agent_coin_system
from repro.logic import Model, parse
from repro.probability import FiniteProbabilitySpace
from repro.testing import random_psys, two_agent_coin_psys
from repro.trees import ComputationTree, build_tree


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        roots = [
            errors.ProbabilityError,
            errors.ModelError,
            errors.TreeError,
            errors.AssignmentError,
            errors.LogicError,
            errors.BettingError,
            errors.SimulationError,
        ]
        for root in roots:
            assert issubclass(root, errors.ReproError)

    def test_specific_errors_parent_classes(self):
        assert issubclass(errors.NotMeasurableError, errors.ProbabilityError)
        assert issubclass(errors.TechnicalAssumptionError, errors.TreeError)
        assert issubclass(errors.Req1Error, errors.AssignmentError)
        assert issubclass(errors.Req2Error, errors.AssignmentError)
        assert issubclass(errors.ParseError, errors.LogicError)
        assert issubclass(errors.SynchronyError, errors.ModelError)


class TestProbabilityLayer:
    def test_broad_catch_works(self):
        with pytest.raises(errors.ReproError):
            FiniteProbabilitySpace.from_point_masses({"a": Fraction(1, 3)})

    def test_measure_of_split_atom(self):
        space = FiniteProbabilitySpace.from_atoms(
            [{1, 2}], [Fraction(1)]
        )
        with pytest.raises(errors.NotMeasurableError):
            space.measure({1})


class TestModelLayer:
    def test_point_on_mixed_system(self):
        first = two_agent_coin_psys()
        with pytest.raises(errors.ModelError):
            System(list(first.system.runs) + [Run((GlobalState("e", ("a",)),))])


class TestTreeLayer:
    def test_cross_tree_sample_rejected_at_req1(self):
        psys = random_psys(seed=1, num_trees=2, depth=1)
        first, second = psys.trees
        point = first.points[0]
        with pytest.raises(errors.Req1Error):
            check_req1(psys, point, {first.points[0], second.points[0]})

    def test_induced_space_propagates_req_errors(self):
        psys = two_agent_coin_psys()
        point = psys.system.points[0]
        with pytest.raises(errors.Req2Error):
            induced_point_space(psys, point, frozenset())

    def test_non_halting_step_function(self):
        def forever(time, locals_, extra):
            return ((Fraction(1), "tick", ("s",), None),)

        with pytest.raises(errors.TreeError):
            build_tree("A", ("s",), forever, max_depth=3)


class TestAssignmentLayer:
    def test_bad_explicit_assignment_fails_on_use(self):
        psys = two_agent_coin_psys()
        time0 = psys.system.points_at_time(0)[0]
        time1 = psys.system.points_at_time(1)[0]
        # a sample space mixing a foreign point: REQ1 violation surfaces
        # when the induced space is requested
        foreign_psys = random_psys(seed=2, depth=1)
        foreign = foreign_psys.system.points[0]
        bad = ExplicitAssignment(psys, {(0, time1): frozenset({time1, foreign})})
        pa = ProbabilityAssignment(bad)
        with pytest.raises(errors.Req1Error):
            pa.space(0, time1)

    def test_nonmeasurable_probability_guides_to_bounds(self):
        from repro.core import PostAssignment
        from repro.examples_lib import repeated_coin_system

        example = repeated_coin_system(2)
        post = ProbabilityAssignment(PostAssignment(example.psys))
        point = example.psys.system.points[0]
        with pytest.raises(errors.NotMeasurableError) as excinfo:
            post.probability(0, point, example.most_recent_heads)
        assert "inner_probability" in str(excinfo.value)


class TestLogicLayer:
    def test_parse_error_offsets(self):
        with pytest.raises(errors.ParseError):
            parse("K0 & heads")

    def test_unknown_proposition(self):
        example = three_agent_coin_system()
        from repro.core import standard_assignments

        model = Model(standard_assignments(example.psys)["post"], {})
        with pytest.raises(errors.LogicError):
            model.valid(parse("ghost"))


class TestBettingLayer:
    def test_rule_alpha_validation(self):
        from repro.betting import BettingRule

        example = three_agent_coin_system()
        with pytest.raises(errors.BettingError):
            BettingRule(example.heads, Fraction(2))

    def test_strategy_enumeration_limit(self):
        from repro.betting import enumerate_strategies

        with pytest.raises(errors.BettingError):
            list(enumerate_strategies(0, list(range(10)), [2, 3, 4], limit=10))


class TestSimulationLayer:
    def test_channel_blowup_guard(self):
        from repro.systems import LossyChannel, Message

        channel = LossyChannel(Fraction(1, 2), max_messages=2)
        sent = tuple(Message(0, 1, f"m{i}") for i in range(3))
        with pytest.raises(errors.SimulationError):
            channel.deliveries(sent, 0)

    def test_agent_probability_leak(self):
        from repro.systems import Agent, SyncProtocol, act, run_protocol

        class Leaky(Agent):
            def initial_state(self, input_value):
                return "s"

            def step(self, state, inbox, round_number):
                return [(Fraction(1, 2), act("s"))]

        with pytest.raises(errors.SimulationError):
            run_protocol(SyncProtocol(agents=[Leaky()], horizon=1), [None])
