"""The ``repro-flow/1`` report artifact.

Content-only and deterministic, per the tracediff conventions: every
list is sorted, file identity is (path, sha256), and there are no
timestamps, host names, or cache statistics -- two runs over identical
trees produce byte-identical reports, so the artifact is diffable and
CI can archive it per commit.
"""

from __future__ import annotations

from typing import Dict, List

from .engine import FlowReport
from .program import TRANSITIVE_EFFECTS
from .rules.base import payload_roots

REPORT_SCHEMA = "repro-flow/1"


def build_report(report: FlowReport) -> Dict[str, object]:
    program = report.program
    payload: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "files": [
            {"path": path, "sha256": report.file_hashes[path]}
            for path in sorted(report.file_hashes)
        ],
        "violations": [v.as_dict() for v in report.violations],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "stale_suppressions": [
            {
                "path": w.path,
                "line": w.line,
                "rule": w.rule_id,
                "message": w.message,
            }
            for w in report.stale_suppressions
        ],
    }
    if program is None:
        return payload
    effects: Dict[str, List[str]] = {}
    for (fqn, effect), _cause in program.effect_cause.items():
        effects.setdefault(fqn, []).append(effect)
    payload["callgraph"] = [
        {"caller": caller, "callee": callee, "line": line}
        for caller, callee, line in program.call_edges()
    ]
    payload["effects"] = {
        fqn: sorted(effects[fqn], key=TRANSITIVE_EFFECTS.index)
        for fqn in sorted(effects)
    }
    payload["returns_float"] = sorted(program.returns_float)
    roots = sorted({fqn for fqn, _origin in payload_roots(program)})
    payload["task_payload_roots"] = roots
    payload["task_payload_closure"] = program.transitive_closure(roots)
    return payload


__all__ = ["REPORT_SCHEMA", "build_report"]
