"""Formula AST: constructors, sugar, traversal."""

from fractions import Fraction

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    EveryoneKnowsProb,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    Until,
    certainty,
    eventually,
    formula_depth,
    henceforth,
    knows_prob_at_least,
    knows_prob_interval,
    subformulas,
)


class TestConstruction:
    def test_operators_build_ast(self):
        p, q = Prop("p"), Prop("q")
        assert isinstance(p & q, And)
        assert isinstance(p | q, Or)
        assert isinstance(~p, Not)
        assert isinstance(p >> q, Implies)

    def test_formulas_hashable_and_equal(self):
        assert Prop("p") == Prop("p")
        assert hash(Knows(0, Prop("p"))) == hash(Knows(0, Prop("p")))
        assert Knows(0, Prop("p")) != Knows(1, Prop("p"))

    def test_pr_at_least_coerces_alpha(self):
        formula = PrAtLeast(0, Prop("p"), "2/3")
        assert formula.alpha == Fraction(2, 3)

    def test_group_operators_normalise_group(self):
        formula = EveryoneKnowsProb([0, 1], "1/2", Prop("p"))
        assert formula.group == (0, 1)
        assert formula.alpha == Fraction(1, 2)

    def test_str_round_trippable_tokens(self):
        formula = Knows(0, PrAtLeast(1, Prop("heads"), Fraction(1, 2)))
        text = str(formula)
        assert "K0" in text and "Pr1" in text and "1/2" in text


class TestSugar:
    def test_eventually_is_until(self):
        formula = eventually(Prop("p"))
        assert isinstance(formula, Until)
        assert formula.left == TRUE

    def test_henceforth_is_negated_eventually(self):
        formula = henceforth(Prop("p"))
        assert isinstance(formula, Not)

    def test_knows_prob_at_least_shape(self):
        formula = knows_prob_at_least(2, "1/2", Prop("p"))
        assert isinstance(formula, Knows)
        assert isinstance(formula.sub, PrAtLeast)
        assert formula.sub.agent == 2

    def test_knows_prob_interval_shape(self):
        formula = knows_prob_interval(1, "1/3", "2/3", Prop("p"))
        assert isinstance(formula.sub, And)
        assert isinstance(formula.sub.left, PrAtLeast)
        assert isinstance(formula.sub.right, PrAtMost)
        assert formula.sub.right.beta == Fraction(2, 3)

    def test_certainty(self):
        formula = certainty(0, Prop("p"))
        assert formula.alpha == 1


class TestTraversal:
    def test_subformulas_preorder(self):
        formula = And(Prop("p"), Not(Prop("q")))
        nodes = list(subformulas(formula))
        assert nodes[0] is formula
        assert Prop("p") in nodes and Prop("q") in nodes
        assert len(nodes) == 4

    def test_depth(self):
        assert formula_depth(Prop("p")) == 0
        assert formula_depth(Not(Prop("p"))) == 1
        assert formula_depth(And(Not(Prop("p")), Prop("q"))) == 2
        assert formula_depth(Knows(0, Next(Prop("p")))) == 2
