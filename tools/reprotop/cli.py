"""Command-line interface: ``python -m tools.reprotop TRACE``.

Two input modes:

* **Trace mode** (positional ``TRACE``): tail a live ``repro-trace/1``
  JSONL, folding new records into a :class:`~tools.reprotop.monitor.SweepMonitor`
  every ``--interval`` seconds until the sweep reports itself finished.
* **Checkpoint mode** (``--checkpoint``): count completed rows in a
  sweep checkpoint, optionally enriched by a ``repro-metrics/1``
  snapshot (``--metrics``) for worker/cache detail and ``--total`` for
  percent/ETA.

``--once`` renders a single status and exits (the CI shape); ``--json``
swaps the tables for the status dict.  Per RL008 this module reads the
clock only through :mod:`repro.obs.clock` -- the raw ``time`` module is
used solely for ``sleep``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.errors import MetricsError, TraceError
from repro.obs import read_snapshot, read_trace
from repro.obs.clock import monotonic
from repro.obs.trace import TRACE_SCHEMA
from repro.reporting import json_ready

from .monitor import SweepMonitor, checkpoint_status, render_status, snapshot_status

#: ANSI clear-screen + home, prefixed to each refresh in live table mode.
_CLEAR = "\x1b[2J\x1b[H"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprotop",
        description=(
            "Live monitor for guarantee sweeps: tails a repro-trace/1 "
            "JSONL (or reads a checkpoint plus a repro-metrics/1 "
            "snapshot) and renders done/total, ETA, the retry "
            "histogram, per-worker kernel throughput and the cache hit "
            "rate."
        ),
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="path to a repro-trace/1 JSONL file to tail",
    )
    parser.add_argument(
        "--checkpoint",
        help="monitor a sweep checkpoint JSONL instead of a trace",
    )
    parser.add_argument(
        "--metrics",
        help="repro-metrics/1 snapshot to enrich --checkpoint status with",
    )
    parser.add_argument(
        "--total",
        type=int,
        help="expected row count (enables percent/ETA in --checkpoint mode)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh cadence in seconds (default: 2.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one status and exit instead of refreshing",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the status dict as JSON instead of tables",
    )
    return parser


class _TraceTail:
    """Incrementally read complete JSONL records from a growing trace.

    Keeps a byte offset and a partial-line buffer between polls, so a
    half-written final line (the writer mid-``write``, or a killed run's
    torn tail) is simply held back until it completes -- the same
    tolerance :func:`repro.obs.read_trace` applies at rest.  A *complete*
    line that fails to parse, or a bad header, is a schema violation.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._partial = ""
        self._header_checked = False

    def poll(self) -> List[Dict]:
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        data = self._partial + chunk
        lines = data.split("\n")
        self._partial = lines.pop()
        records: List[Dict] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                raise TraceError(
                    f"trace {self.path}: malformed complete record: {line[:80]!r}"
                )
            if not self._header_checked:
                if record.get("type") != "header" or record.get("schema") != TRACE_SCHEMA:
                    raise TraceError(
                        f"trace does not start with a {TRACE_SCHEMA!r} header: {record!r}"
                    )
                self._header_checked = True
            records.append(record)
        return records


def _emit(status: Dict, as_json: bool, clear: bool) -> None:
    try:
        if as_json:
            print(json.dumps(json_ready(status), indent=2, sort_keys=True))
        else:
            text = render_status(status)
            if clear:
                text = _CLEAR + text
            print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; treat as a clean stop.
        sys.stderr.close()
        raise SystemExit(0)


def _checkpoint_once(args: argparse.Namespace) -> Dict:
    done = checkpoint_status(args.checkpoint)
    if args.metrics:
        snapshot = read_snapshot(args.metrics)
        return snapshot_status(snapshot, done=done, total=args.total)
    monitor = SweepMonitor()
    status = monitor.status()
    status.update(done=done, total=args.total)
    if args.total:
        status["percent"] = round(100.0 * done / args.total, 1)
        status["finished"] = bool(done >= args.total and args.total > 0)
    return status


def _run_checkpoint(args: argparse.Namespace) -> int:
    while True:
        status = _checkpoint_once(args)
        _emit(status, args.json, clear=not args.once and not args.json)
        if args.once or status.get("finished"):
            return 0
        time.sleep(args.interval)


def _run_trace(args: argparse.Namespace) -> int:
    if args.once:
        monitor = SweepMonitor()
        monitor.feed_all(read_trace(args.trace))
        _emit(monitor.status(), args.json, clear=False)
        return 0
    monitor = SweepMonitor()
    tail = _TraceTail(args.trace)
    last_change = monotonic()
    while True:
        records = tail.poll()
        if records:
            monitor.feed_all(records)
            last_change = monotonic()
        status = monitor.status()
        status["stale_seconds"] = round(monotonic() - last_change, 1)
        _emit(status, args.json, clear=not args.json)
        if status.get("finished"):
            return 0
        time.sleep(args.interval)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.trace is None) == (args.checkpoint is None):
        parser.error("exactly one of TRACE or --checkpoint is required")
    if args.metrics and not args.checkpoint:
        parser.error("--metrics only applies in --checkpoint mode")
    if args.interval <= 0:
        parser.error("--interval must be positive")
    try:
        if args.checkpoint is not None:
            return _run_checkpoint(args)
        return _run_trace(args)
    except KeyboardInterrupt:
        # Ctrl-C is how an open-ended tail is *meant* to end.
        print()
        return 0
    except (TraceError, MetricsError) as error:
        print(f"reprotop: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"reprotop: cannot read input: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
