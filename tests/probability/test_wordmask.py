"""Unit tests for the word-array mask kernels (``probability.wordmask``).

Every kernel is checked against the Python-int reference semantics on
widths straddling the 64-bit word boundary (the tail-word masking is the
classic off-by-one), plus the no-numpy degradation contract: kernels
raise :class:`BackendError`, ``available()`` goes False, and
``set_default_backend("wordarray")`` falls back to ``"bitmask"`` with a
``backend_fallback`` event.
"""

from fractions import Fraction

import pytest

from repro.errors import BackendError
from repro.obs import Recorder, use_recorder
from repro.probability import (
    get_default_backend,
    kernel_totals,
    reset_kernel_totals,
    set_default_backend,
    use_backend,
    wordmask,
)

requires_numpy = pytest.mark.skipif(
    not wordmask.available(), reason="numpy not installed"
)

#: Widths straddling the word boundary; 70 and 130 exercise tail masking.
WIDTHS = (1, 63, 64, 65, 70, 128, 130)


def sample_mask(n_bits: int, salt: int = 0) -> int:
    """A deterministic, irregular mask with bits spread over the width."""
    mask = 0
    for bit in range(n_bits):
        if (bit * 2654435761 + salt) % 3 != 0:
            mask |= 1 << bit
    return mask


@requires_numpy
class TestConversions:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_round_trip(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        for salt in (0, 1, 2):
            mask = sample_mask(n_bits, salt)
            words = wordmask.mask_to_words(mask, n_words)
            assert len(words) == n_words
            assert wordmask.words_to_mask(words) == mask

    def test_word_count(self):
        assert [wordmask.word_count(n) for n in (0, 1, 64, 65, 128, 129)] == [
            0, 1, 1, 2, 2, 3,
        ]

    def test_oversized_mask_is_rejected(self):
        with pytest.raises(OverflowError):
            wordmask.mask_to_words(1 << 64, 1)

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_stack_masks(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        masks = [sample_mask(n_bits, salt) for salt in range(4)]
        matrix = wordmask.stack_masks(masks, n_words)
        assert matrix.shape == (4, n_words)
        for row, mask in zip(matrix, masks):
            assert wordmask.words_to_mask(row) == mask

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_bit_vector_round_trip(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        mask = sample_mask(n_bits)
        words = wordmask.mask_to_words(mask, n_words)
        bits = wordmask.bits_of_words(words, n_bits)
        assert len(bits) == n_bits
        assert [int(b) for b in bits] == [(mask >> i) & 1 for i in range(n_bits)]
        rebuilt = wordmask.words_from_bits(bits, n_words)
        assert wordmask.words_to_mask(rebuilt) == mask


@requires_numpy
class TestElementwiseKernels:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_full_and_zero(self, n_bits):
        full = wordmask.full_words(n_bits)
        assert wordmask.words_to_mask(full) == (1 << n_bits) - 1
        assert wordmask.popcount_words(full) == n_bits
        assert wordmask.words_to_mask(wordmask.zero_words(wordmask.word_count(n_bits))) == 0

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_union_intersect_complement(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        a, b = sample_mask(n_bits, 0), sample_mask(n_bits, 1)
        wa = wordmask.mask_to_words(a, n_words)
        wb = wordmask.mask_to_words(b, n_words)
        assert wordmask.words_to_mask(wordmask.union_words(wa, wb)) == a | b
        assert wordmask.words_to_mask(wordmask.intersect_words(wa, wb)) == a & b
        universe = (1 << n_bits) - 1
        complement = wordmask.complement_words(wa, n_bits)
        # tail bits past n_bits must stay clear
        assert wordmask.words_to_mask(complement) == universe & ~a

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_subset_and_equal(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        a = sample_mask(n_bits, 0)
        sub = a & sample_mask(n_bits, 1)
        wa = wordmask.mask_to_words(a, n_words)
        wsub = wordmask.mask_to_words(sub, n_words)
        assert wordmask.subset_words(wsub, wa)
        assert wordmask.subset_words(wa, wa)
        assert wordmask.equal_words(wa, wa)
        if sub != a:
            assert not wordmask.subset_words(wa, wsub)
            assert not wordmask.equal_words(wa, wsub)

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_popcount_matches_bit_count(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        for salt in range(3):
            mask = sample_mask(n_bits, salt)
            words = wordmask.mask_to_words(mask, n_words)
            assert wordmask.popcount_words(words) == mask.bit_count()


@requires_numpy
class TestBatchedKernels:
    @pytest.mark.parametrize("n_bits", (65, 70, 130))
    def test_fold_contained_rows_matches_int_fold(self, n_bits):
        n_words = wordmask.word_count(n_bits)
        rows = [sample_mask(n_bits, salt) for salt in range(6)]
        target = sample_mask(n_bits, 7)
        matrix = wordmask.stack_masks(rows, n_words)
        target_words = wordmask.mask_to_words(target, n_words)
        expected = 0
        for row in rows:
            if row & ~target == 0:
                expected |= row
        folded = wordmask.fold_contained_rows(matrix, target_words)
        assert wordmask.words_to_mask(folded) == expected

    @pytest.mark.parametrize("n_bits", (70, 130))
    def test_partition_kernel_matches_int_reference(self, n_bits):
        block_of = [bit % 7 for bit in range(n_bits)]
        blocks = [
            [bit for bit in range(n_bits) if block_of[bit] == label]
            for label in range(7)
        ]
        kernel = wordmask.PartitionKernel.from_blocks(
            blocks, lambda bit: bit, n_bits
        )
        assert kernel.n_blocks == 7
        block_masks = [
            sum(1 << bit for bit in block) for block in blocks
        ]
        for salt in range(4):
            # union of whole blocks plus a straddling remainder
            target = block_masks[salt] | block_masks[(salt + 2) % 7]
            target |= sample_mask(n_bits, salt) & block_masks[(salt + 4) % 7]
            expected = 0
            for block_mask in block_masks:
                if block_mask & ~target == 0:
                    expected |= block_mask
            n_words = wordmask.word_count(n_bits)
            words = wordmask.mask_to_words(target, n_words)
            hits = kernel.hit_counts(words)
            assert [int(h) for h in hits] == [
                (target & block_mask).bit_count() for block_mask in block_masks
            ]
            result = kernel.knowledge_words(words)
            assert wordmask.words_to_mask(result) == expected


@requires_numpy
class TestSpaceKernel:
    def build(self, denominator_shift: int = 0):
        """A 70-outcome, 10-atom kernel; shifting inflates the denominator
        past ``INT64_SAFE_DENOMINATOR`` to force the Python-int sum path."""
        n_bits = 70
        atoms = [
            [outcome for outcome in range(n_bits) if outcome % 10 == label]
            for label in range(10)
        ]
        weights = [(label + 1) << denominator_shift for label in range(10)]
        denominator = sum(weights)
        kernel = wordmask.SpaceKernel(
            atoms, lambda outcome: outcome, n_bits, weights, denominator, False
        )
        atom_masks = [sum(1 << o for o in atom) for atom in atoms]
        return kernel, atom_masks, weights, n_bits

    def reference(self, mask, atom_masks, weights):
        inner = outer = 0
        contained = 0
        for atom_mask, weight in zip(atom_masks, weights):
            if atom_mask & mask:
                outer += weight
            if atom_mask & ~mask == 0:
                inner += weight
                contained |= atom_mask
        return inner, outer, contained

    @pytest.mark.parametrize("shift", (0, 64))
    def test_interval_matches_reference(self, shift):
        kernel, atom_masks, weights, n_bits = self.build(shift)
        if shift:
            assert sum(weights) >= wordmask.SpaceKernel.INT64_SAFE_DENOMINATOR
        for salt in range(4):
            mask = sample_mask(n_bits, salt) | atom_masks[salt]
            assert kernel.interval_mask(mask) == self.reference(
                mask, atom_masks, weights
            )

    def test_stray_bits_are_clamped(self):
        kernel, atom_masks, weights, n_bits = self.build()
        mask = atom_masks[3] | (1 << (n_bits + 5))
        inner, outer, contained = kernel.interval_mask(mask)
        assert (inner, outer, contained) == self.reference(
            atom_masks[3], atom_masks, weights
        )
        # contained == clamped mask still characterises measurability
        assert contained == atom_masks[3]

    def test_powerset_short_circuit(self):
        n_bits = 70
        weights = list(range(1, n_bits + 1))
        kernel = wordmask.SpaceKernel(
            [[outcome] for outcome in range(n_bits)],
            lambda outcome: outcome,
            n_bits,
            weights,
            sum(weights),
            True,
        )
        mask = sample_mask(n_bits)
        weight = sum(
            weight
            for outcome, weight in enumerate(weights)
            if mask & (1 << outcome)
        )
        assert kernel.interval_mask(mask) == (weight, weight, mask)


@requires_numpy
class TestKernelCounters:
    def test_conversions_and_queries_are_counted(self):
        reset_kernel_totals()
        n_words = wordmask.word_count(70)
        words = wordmask.mask_to_words(sample_mask(70), n_words)
        wordmask.words_to_mask(words)
        wordmask.stack_masks([1, 2, 3], n_words)
        totals = kernel_totals()
        assert totals["mask_conversions"] == 5
        assert totals["wordarray_queries"] == 0
        matrix = wordmask.stack_masks([1, 2], n_words)
        wordmask.fold_contained_rows(matrix, words)
        kernel = wordmask.PartitionKernel.from_blocks(
            [range(70)], lambda bit: bit, 70
        )
        kernel.knowledge_words(words)
        assert kernel_totals()["wordarray_queries"] == 2
        reset_kernel_totals()
        assert kernel_totals()["mask_conversions"] == 0


class _EventRecorder(Recorder):
    def __init__(self):
        self.events = []

    def event(self, kind, **fields):
        self.events.append((kind, fields))


class TestNumpyAbsent:
    """The degradation contract, simulated by monkeypatching numpy away."""

    def test_available_and_kernels_raise(self, monkeypatch):
        monkeypatch.setattr(wordmask, "numpy", None)
        assert not wordmask.available()
        with pytest.raises(BackendError):
            wordmask.mask_to_words(1, 1)
        with pytest.raises(BackendError):
            wordmask.full_words(64)
        with pytest.raises(BackendError):
            wordmask.zero_words(1)

    def test_set_default_backend_falls_back_with_event(self, monkeypatch):
        monkeypatch.setattr(wordmask, "numpy", None)
        recorder = _EventRecorder()
        previous = get_default_backend()
        try:
            with use_recorder(recorder):
                set_default_backend("wordarray")
            assert get_default_backend() == "bitmask"
        finally:
            set_default_backend(previous)
        fallbacks = [f for kind, f in recorder.events if kind == "backend_fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0]["requested"] == "wordarray"
        assert fallbacks[0]["backend"] == "bitmask"
        assert "numpy" in fallbacks[0]["reason"]

    def test_use_backend_yields_effective_backend(self, monkeypatch):
        monkeypatch.setattr(wordmask, "numpy", None)
        with use_backend("wordarray") as active:
            assert active == "bitmask"
            assert get_default_backend() == "bitmask"

    @requires_numpy
    def test_space_degrades_to_bitmask_exactly(self, monkeypatch):
        from repro.probability import FiniteProbabilitySpace

        atoms = [frozenset({0, 1}), frozenset({2})]
        probabilities = {
            atoms[0]: Fraction(2, 3),
            atoms[1]: Fraction(1, 3),
        }
        queries = (frozenset({0, 1}), frozenset({0}), frozenset({0, 2}))
        with use_backend("wordarray"):
            reference = FiniteProbabilitySpace(atoms, probabilities)
        # query before numpy disappears: the word kernel builds lazily
        expected = [reference.measure_interval(event) for event in queries]
        monkeypatch.setattr(wordmask, "numpy", None)
        with use_backend("wordarray") as active:
            assert active == "bitmask"
            degraded = FiniteProbabilitySpace(atoms, probabilities)
        assert degraded.backend == "bitmask"
        for event, interval in zip(queries, expected):
            assert degraded.measure_interval(event) == interval
