"""Expectation helpers: conditioning, total expectation, B.2 attainability."""

from fractions import Fraction

import pytest

from repro.errors import NotMeasurableError
from repro.probability import (
    FiniteProbabilitySpace,
    attainability_witnesses,
    conditional_expectation,
    indicator,
    law_of_total_expectation_check,
    scaled_indicator,
)


@pytest.fixture
def die():
    return FiniteProbabilitySpace.uniform(range(1, 7))


@pytest.fixture
def coarse():
    return FiniteProbabilitySpace.from_atoms(
        [{1, 2, 3}, {4, 5, 6}], [Fraction(1, 2), Fraction(1, 2)]
    )


class TestIndicator:
    def test_indicator_values(self):
        variable = indicator({1, 2})
        assert variable(1) == 1
        assert variable(3) == 0

    def test_scaled_indicator(self):
        variable = scaled_indicator({1}, "3/2", -1)
        assert variable(1) == Fraction(3, 2)
        assert variable(2) == Fraction(-1)

    def test_expectation_of_indicator_is_measure(self, die):
        event = {2, 4, 6}
        assert die.expectation(indicator(event)) == die.measure(event)


class TestConditionalExpectation:
    def test_value(self, die):
        value = conditional_expectation(die, lambda face: Fraction(face), {4, 5, 6})
        assert value == Fraction(5)

    def test_law_of_total_expectation(self, die):
        assert law_of_total_expectation_check(
            die, lambda face: Fraction(face), [{1, 2, 3}, {4, 5, 6}]
        )

    def test_law_with_zero_blocks(self):
        space = FiniteProbabilitySpace.from_point_masses(
            {"a": Fraction(1), "b": Fraction(0)}
        )
        assert law_of_total_expectation_check(
            space, lambda outcome: Fraction(outcome == "a"), [{"a"}, {"b"}]
        )


class TestAttainability:
    def test_witnesses_attain_bounds(self, coarse):
        variable = scaled_indicator({2, 4, 6}, 2, -1)
        inner_witness, outer_witness = attainability_witnesses(coarse, variable)
        assert inner_witness.expectation(variable) == coarse.inner_expectation(variable)
        assert outer_witness.expectation(variable) == coarse.outer_expectation(variable)

    def test_witnesses_extend_the_space(self, coarse):
        variable = scaled_indicator({2, 4, 6}, 2, -1)
        inner_witness, outer_witness = attainability_witnesses(coarse, variable)
        assert inner_witness.extends(coarse)
        assert outer_witness.extends(coarse)

    def test_constant_variable_returns_same_space(self, coarse):
        inner_witness, outer_witness = attainability_witnesses(
            coarse, lambda _: Fraction(1)
        )
        assert inner_witness is coarse
        assert outer_witness is coarse

    def test_three_valued_rejected(self, coarse):
        with pytest.raises(NotMeasurableError):
            attainability_witnesses(coarse, lambda outcome: Fraction(outcome % 3))

    def test_bounds_bracket_every_extension(self, coarse):
        # Any extension's exact expectation lies within [E_*, E^*].
        variable = scaled_indicator({2, 4, 6}, 2, -1)
        inner_witness, outer_witness = attainability_witnesses(coarse, variable)
        low = coarse.inner_expectation(variable)
        high = coarse.outer_expectation(variable)
        for witness in (inner_witness, outer_witness):
            assert low <= witness.expectation(variable) <= high
