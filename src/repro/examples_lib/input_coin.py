"""The Vardi input-bit example (Section 3) and footnote 5.

``p_1`` has an input bit and two coins.  If the bit is 0 it tosses the fair
coin; if the bit is 1 it tosses the coin biased 2/3 towards heads.  There
is no distribution on the input -- the bit is the type-1 adversary's
choice -- so the system is two computation trees, with P(heads) = 1/2 in
one and 2/3 in the other, and *no* unconditional probability of heads.

Footnote 5's subtlety is also made executable: even when the coin is fair
regardless of the input, the "natural" distribution on the unfactored
four-run space (assigning 1/2 to heads and 1/2 to tails) cannot measure the
event "the agent performs action a" (bit=1 & heads, or bit=0 & tails) --
and *adding* that event to the measurable sets forces the input-bit events
to become measurable, contradicting their nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Tuple

from ..core.facts import Fact
from ..probability.algebra import atoms_from_generators, explicit_closure
from ..probability.fractionutil import FractionLike
from ..probability.space import FiniteProbabilitySpace
from ..systems.agents import CoinTossingAgent, FunctionAgent, IdleAgent, certainly, chance
from ..systems.synchronous import SyncProtocol, protocol_system
from ..trees.probabilistic_system import ProbabilisticSystem


@dataclass
class InputCoinExample:
    """The two-tree Vardi system and its analysis facts."""

    psys: ProbabilisticSystem
    heads: Fact
    bit_is_one: Fact


class _InputCoinAgent(CoinTossingAgent):
    """Tosses the fair or the biased coin depending on its input bit."""

    def __init__(self, biased_heads: FractionLike = Fraction(2, 3)) -> None:
        super().__init__(Fraction(1, 2))
        self.biased_heads = Fraction(biased_heads) if not isinstance(
            biased_heads, Fraction
        ) else biased_heads

    def initial_state(self, input_value):
        return ("ready", input_value)

    def step(self, state, inbox, round_number: int):
        if round_number == 0 and state[0] == "ready":
            bit = state[1]
            probability = self.biased_heads if bit == 1 else Fraction(1, 2)
            return chance(
                [
                    (probability, (("saw-heads", bit), ())),
                    (1 - probability, (("saw-tails", bit), ())),
                ]
            )
        return certainly(state)


def input_coin_system(biased_heads: FractionLike = Fraction(2, 3)) -> InputCoinExample:
    """Two trees: adversary "bit=0" (fair coin) and "bit=1" (biased coin).

    Agent 0 is ``p_1`` (sees the bit and the outcome); agent 1 is ``p_2``
    (sees nothing, and so considers points of *both* trees possible --
    which is exactly why REQ1 forbids using all of ``K_2(c)`` as a sample
    space).
    """
    protocol = SyncProtocol(
        agents=[_InputCoinAgent(biased_heads), IdleAgent()], horizon=1
    )
    psys = protocol_system(
        protocol, {"bit=0": [0, None], "bit=1": [1, None]}
    )
    heads = Fact.about_local_state(
        0, lambda local: local[0][0] == "saw-heads", name="heads"
    )
    bit_is_one = Fact.about_local_state(
        0, lambda local: local[0][1] == 1, name="bit_is_one"
    )
    return InputCoinExample(psys, heads, bit_is_one)


@dataclass
class Footnote5Report:
    """The executable content of footnote 5."""

    space: FiniteProbabilitySpace
    action_event: FrozenSet[Tuple[int, str]]
    action_measurable_before: bool
    bit_events_measurable_before: bool
    bit_events_measurable_after: bool
    closure_size_after: int


def footnote5_demonstration() -> Footnote5Report:
    """The unfactored four-run space where "action a" is non-measurable.

    Outcomes are ``(bit, coin)`` pairs.  The coin is fair regardless of the
    bit, so the natural measurable events are "heads" = {(1,h),(0,h)} and
    "tails" = {(1,t),(0,t)}, each of probability 1/2.  The action event
    ``a`` = {(1,h),(0,t)} splits both atoms; and the sigma-algebra generated
    by adding it contains the bit events {(1,h),(1,t)} and {(0,h),(0,t)},
    which would force probabilities onto the nondeterministic input.
    """
    outcomes = [(1, "h"), (1, "t"), (0, "h"), (0, "t")]
    heads_event = frozenset({(1, "h"), (0, "h")})
    tails_event = frozenset({(1, "t"), (0, "t")})
    atoms = atoms_from_generators(outcomes, [heads_event, tails_event])
    space = FiniteProbabilitySpace(
        atoms, {atom: Fraction(1, 2) for atom in atoms}
    )
    action_event = frozenset({(1, "h"), (0, "t")})
    bit_one = frozenset({(1, "h"), (1, "t")})
    bit_zero = frozenset({(0, "h"), (0, "t")})
    closure = explicit_closure(outcomes, [heads_event, action_event])
    return Footnote5Report(
        space=space,
        action_event=action_event,
        action_measurable_before=space.is_measurable(action_event),
        bit_events_measurable_before=space.is_measurable(bit_one)
        or space.is_measurable(bit_zero),
        bit_events_measurable_after=bit_one in closure and bit_zero in closure,
        closure_size_after=len(closure),
    )
