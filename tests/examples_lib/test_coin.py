"""The coin examples: single, three-agent, repeated asynchronous."""

from fractions import Fraction

import pytest

from repro.core import (
    ProbabilityAssignment,
    PostAssignment,
    opponent_assignment,
    standard_assignments,
)
from repro.examples_lib import (
    repeated_coin_system,
    single_coin_system,
    three_agent_coin_system,
)


class TestSingleCoin:
    def test_two_runs_half_each(self):
        example = single_coin_system()
        (adversary,) = example.psys.adversaries
        tree = example.psys.tree(adversary)
        assert len(tree.runs) == 2
        assert all(tree.run_probability(run) == Fraction(1, 2) for run in tree.runs)

    def test_heads_fact(self):
        example = single_coin_system()
        time1 = example.psys.system.points_at_time(1)
        assert sum(example.heads.holds_at(point) for point in time1) == 1


class TestThreeAgentCoin:
    @pytest.fixture(scope="class")
    def example(self):
        return three_agent_coin_system()

    def test_synchronous(self, example):
        assert example.psys.system.is_synchronous()

    def test_paper_probabilities(self, example):
        from repro.core import Fact

        named = standard_assignments(example.psys)
        time1 = example.psys.system.points_at_time(1)
        c = time1[0]
        # before the toss everyone assigns 1/2 to "the coin will land heads"
        # (the run-level fact; the state fact "p3 saw heads" is false at 0)
        will_heads = Fact.about_run(
            lambda run: run.states[-1].local_states[2][0] == "saw-heads"
        )
        c0 = example.psys.system.points_at_time(0)[0]
        for name in ("post", "fut", "prior"):
            assert named[name].probability(0, c0, will_heads) == Fraction(1, 2)
        # after: post says 1/2; fut says 0-or-1
        assert named["post"].probability(0, c, example.heads) == Fraction(1, 2)
        assert sorted(
            named["fut"].probability(0, point, example.heads) for point in time1
        ) == [Fraction(0), Fraction(1)]

    def test_betting_readings(self, example):
        c = example.psys.system.points_at_time(1)[0]
        half = Fraction(1, 2)
        assert opponent_assignment(example.psys, 1).knows_probability_at_least(
            0, c, example.heads, half
        )
        assert not opponent_assignment(example.psys, 2).knows_probability_at_least(
            0, c, example.heads, half
        )

    def test_tosser_knows_from_time1(self, example):
        time1 = example.psys.system.points_at_time(1)
        for point in time1:
            expected = example.heads.holds_at(point)
            assert example.psys.system.knows(2, point, example.heads) == expected

    def test_biased_variant(self):
        example = three_agent_coin_system(Fraction(2, 3))
        post = standard_assignments(example.psys)["post"]
        c = example.psys.system.points_at_time(1)[0]
        assert post.probability(0, c, example.heads) == Fraction(2, 3)


class TestRepeatedCoin:
    @pytest.fixture(scope="class")
    def example(self):
        return repeated_coin_system(4)

    def test_shape(self, example):
        (adversary,) = example.psys.adversaries
        tree = example.psys.tree(adversary)
        assert len(tree.runs) == 16
        assert tree.depth() == 4

    def test_asynchronous(self, example):
        assert not example.psys.system.is_synchronous()

    def test_p1_considers_everything_possible(self, example):
        point = example.psys.system.points[0]
        assert example.psys.system.knowledge_set(0, point) == frozenset(
            example.psys.system.points
        )

    def test_paper_inner_outer(self, example):
        # over post-toss points: [2**-n, 1 - 2**-n]
        pa = ProbabilityAssignment(example.post_toss_assignment())
        anchor = next(iter(example.post_toss_points))
        interval = pa.probability_interval(0, anchor, example.most_recent_heads)
        assert interval == (Fraction(1, 16), Fraction(15, 16))

    def test_root_inclusive_inner_is_zero(self, example):
        # with the pre-toss root in the sample space the inner measure drops
        # to 0 (the paper glosses this point; see EXPERIMENTS.md)
        post = ProbabilityAssignment(PostAssignment(example.psys))
        anchor = example.psys.system.points[0]
        inner, outer = post.probability_interval(0, anchor, example.most_recent_heads)
        assert inner == Fraction(0)
        assert outer == Fraction(15, 16)

    def test_clocked_opponent_restores_half(self, example):
        # against p2 (who knows the time), every post-toss space gives 1/2
        against_p2 = opponent_assignment(example.psys, 1)
        values = {
            against_p2.probability(0, point, example.most_recent_heads)
            for point in example.post_toss_points
        }
        assert values == {Fraction(1, 2)}

    def test_fact_not_measurable_for_p1(self, example):
        post = ProbabilityAssignment(PostAssignment(example.psys))
        anchor = example.psys.system.points[0]
        assert not post.is_measurable_at(0, anchor, example.most_recent_heads)
