"""RL009 — task payloads must be transitively deterministic."""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ...reprolint.model import Violation
from ..program import Program
from .base import FlowRule, payload_roots, register

#: Effects that break replayability.  ``io`` is deliberately excluded:
#: it is collected for the report but a payload writing a checkpoint
#: file is legitimate -- only value-affecting nondeterminism is banned.
BANNED_EFFECTS = ("reads_clock", "unseeded_random", "mutates_global")

_EFFECT_LABEL = {
    "reads_clock": "reads the wall clock",
    "unseeded_random": "draws unseeded randomness",
    "mutates_global": "mutates module-global state",
}


@register
class DeterminismRule(FlowRule):
    rule_id = "RL009"
    title = "task payloads must be transitively deterministic"
    rationale = """\
The paper's probability spaces (Section 4) assign measures to *runs*,
and every guarantee the sweep engine reports -- CA1/CA2 rows, chi
thresholds, betting certificates -- is a pure function of the task
tuple.  The robustness layer (retries, resume-from-checkpoint) and the
process pool both *re-execute* payloads and assume bit-identical
results: a retry that returns a different row corrupts the checkpoint's
dedup key, and a resumed sweep silently diverges from the fresh one.

This rule takes the transitive closure of every function shipped as a
task payload (to run_tasks, parallel_map, or via the sweep builder
registry) and reports any reachable wall-clock read, unseeded
randomness, or module-global mutation -- at the offending primitive,
with the call chain from the payload root, because the leak is usually
two or more hops below the function someone actually registered.

Seeded generators (``random.Random(seed)``) and ``time.sleep`` are
fine: they do not make results depend on when or how often a task runs.
Fix by threading explicit seeds/clock values through the task tuple, or
quarantine the read behind ``repro/obs/`` and keep it out of payload
closures.  False positives (e.g. a deliberately jittered but
result-irrelevant path) may be waived per line with
``# reproflow: disable=RL009``."""

    def check_program(self, program: Program) -> Iterator[Violation]:
        reported: Set[Tuple[str, int, str]] = set()
        roots = sorted(set(payload_roots(program)))
        for root, origin in roots:
            for effect in BANNED_EFFECTS:
                if (root, effect) not in program.effect_cause:
                    continue
                chain = program.effect_chain(root, effect)
                if not chain:
                    continue
                offender_fqn, offender_line, _detail = chain[-1]
                offender = program.functions.get(offender_fqn)
                if offender is None:
                    continue
                key = (offender.path, offender_line, effect)
                if key in reported:
                    continue
                reported.add(key)
                yield self.flow_violation(
                    offender,
                    offender_line,
                    f"{_EFFECT_LABEL[effect]} inside the closure of task "
                    f"payload '{root}' ({origin}); "
                    f"chain: {program.render_chain(chain)}",
                )


__all__ = ["BANNED_EFFECTS", "DeterminismRule"]
