# Convenience targets for the reproduction.

PYTHON ?= python3
# Benchmark report for the current PR (see docs/performance.md).
BENCH ?= BENCH_10.json
# Trace file consumed by `make trace-report` / `make trace-top`
# (see docs/observability.md).
TRACE ?= trace.jsonl

.PHONY: install test test-chaos bench bench-json bench-json-smoke examples quicktest lint lint-json flow-lint flow-json flow-report trace-report trace-top trace-diff audit-verify audit-chaos clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly -k "not properties and not random_systems"

# Fault-tolerance suite: injected worker kills, raises, timeouts and
# checkpoint/resume.  Faulthandler prints stacks if anything hangs.
# See docs/robustness.md.
test-chaos:
	PYTHONPATH=src PYTHONFAULTHANDLER=1 $(PYTHON) -m pytest tests/robustness -q

# Both static-analysis tiers (see docs/static_analysis.md):
#   tier 1, reprolint  -- intra-file syntactic invariants, also run on tools/
#   tier 2, reproflow  -- whole-program dataflow (determinism, exactness
#                         taint, pool pickle-safety, effect contracts)
lint:
	$(PYTHON) -m tools.reprolint src/repro tools
	$(PYTHON) -m tools.reproflow src/repro

lint-json:
	$(PYTHON) -m tools.reprolint --json src/repro tools

flow-lint:
	$(PYTHON) -m tools.reproflow src/repro

flow-json:
	$(PYTHON) -m tools.reproflow --json src/repro

# Full repro-flow/1 artifact: callgraph, effect summaries, payload closure.
flow-report:
	$(PYTHON) -m tools.reproflow --report flow-report.json src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Machine-readable benchmark report (see docs/performance.md).
bench-json:
	$(PYTHON) benchmarks/collect.py --output $(BENCH)

bench-json-smoke:
	$(PYTHON) benchmarks/collect.py --smoke --output $(BENCH)

# Summarise a repro-trace/1 JSONL trace (see docs/observability.md).
trace-report:
	PYTHONPATH=src $(PYTHON) -m tools.tracereport $(TRACE)

# Live top-style sweep monitor over a repro-trace/1 JSONL being written
# by another process.  Pass --once/--json via TOP_ARGS for CI use.
trace-top:
	PYTHONPATH=src $(PYTHON) -m tools.reprotop $(TOP_ARGS) $(TRACE)

# Diff two traces / derivations / bench reports: counter deltas,
# hit-rate shift, timing ratios, first diverging record or derivation
# node.  Usage: make trace-diff A=run1.jsonl B=run2.jsonl
trace-diff:
	PYTHONPATH=src $(PYTHON) -m tools.tracediff $(A) $(B)

# Verify a repro-audit/1 Merkle bundle without recomputing its sweep:
# hash chain, checkpoint cross-check, derivation replay (see
# docs/observability.md).  Usage: make audit-verify AUDIT=sweep.jsonl.audit
audit-verify:
	PYTHONPATH=src $(PYTHON) -m tools.verifyaudit $(AUDIT)

# The CI acceptance scenario end to end: chaos-kill an audited sweep,
# resume it, verifyaudit the merged bundle (exit 0 iff clean).
audit-chaos:
	$(PYTHON) benchmarks/audit_chaos_sweep.py --artifact-dir audit-artifacts

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis .benchmarks build *.egg-info
	rm -f .reproflow-cache.json
