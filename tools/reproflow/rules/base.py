"""Flow-rule base class and the whole-program tier's registry.

Reuses reprolint's :class:`~tools.reprolint.registry.Registry` container
and :class:`~tools.reprolint.model.Violation` shape -- the two tiers
share one rule-id namespace, one suppression syntax, one ``--explain``
surface -- but a flow rule's ``check_program`` sees the resolved
:class:`~tools.reproflow.program.Program`, not a single module.
"""

from __future__ import annotations

from typing import Iterator, Type

from ...reprolint.model import Violation
from ...reprolint.registry import Registry, Rule
from ..program import FunctionInfo, Program

#: Task-distribution entry points: every payload handed to these runs in
#: a worker (possibly a separate process), so its whole call closure is
#: subject to the determinism and picklability rules.
POOL_ENTRY_POINTS = frozenset(
    {
        "repro.robustness.engine.run_tasks",
        "repro.attack.parallel.parallel_map",
        "repro.attack.sweep.sweep_tasks",
    }
)

#: The sweep builder registry whose values become task payloads.
BUILDER_REGISTRIES = (("repro.attack.sweep", "DEFAULT_BUILDERS"),)

#: Subpackages whose arithmetic must stay exact (Fractions); mirrors
#: reprolint RL001's scope.
EXACT_SUBPACKAGE_PREFIXES = (
    "repro.probability",
    "repro.core",
    "repro.betting",
    "repro.logic",
)


class FlowRule(Rule):
    """Base class for whole-program rules (RL009-RL012)."""

    def check_program(self, program: Program) -> Iterator[Violation]:
        raise NotImplementedError

    def check(self, module) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError(
            f"{self.rule_id} is a whole-program rule; use check_program"
        )

    def flow_violation(
        self, info: FunctionInfo, line: int, message: str
    ) -> Violation:
        return Violation(
            path=info.path, line=line, col=0, rule_id=self.rule_id, message=message
        )


FLOW_REGISTRY: Registry[FlowRule] = Registry()


def register(rule_class: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator adding a rule to the flow-tier registry."""
    return FLOW_REGISTRY.register(rule_class)


def payload_roots(program: Program) -> Iterator[tuple]:
    """Every function that becomes a task payload, with provenance.

    Yields ``(root_fqn, origin)`` where ``origin`` is a human string
    naming the entry point or registry the payload was shipped through.
    """
    for site in program.payload_sites():
        if not any(fqn in POOL_ENTRY_POINTS for fqn in site.callee_fqns):
            continue
        entry = next(fqn for fqn in site.callee_fqns if fqn in POOL_ENTRY_POINTS)
        for fqn in program.resolve_payload_targets(site.caller, site.payload):
            yield fqn, (
                f"shipped to {entry} at {site.caller.path}:{site.line}"
            )
    for module_name, const_name in BUILDER_REGISTRIES:
        for kind, value in program.registry_payloads(module_name, const_name):
            if kind == "function":
                yield str(value), f"registered in {module_name}.{const_name}"


def in_exact_scope(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in EXACT_SUBPACKAGE_PREFIXES
    )


__all__ = [
    "BUILDER_REGISTRIES",
    "EXACT_SUBPACKAGE_PREFIXES",
    "FLOW_REGISTRY",
    "FlowRule",
    "POOL_ENTRY_POINTS",
    "in_exact_scope",
    "payload_roots",
    "register",
]
