"""Theorem 8: S^j is the maximum assignment determining safe bets."""

from fractions import Fraction

import pytest

from repro.betting import (
    boost_path_labeling,
    determines_safe_bets,
    theorem8_witness,
    verify_theorem8_part_a,
)
from repro.core import (
    Fact,
    FutureAssignment,
    OpponentAssignment,
    PostAssignment,
    ProbabilityAssignment,
    opponent_assignment,
)
from repro.examples_lib import three_agent_coin_system
from repro.trees import ProbabilisticSystem
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


def relabelings(psys, divisors=(2, 3, 5)):
    """A few deterministic relabelings of the same tree structures."""
    variants = [psys]
    for divisor in divisors:
        trees = []
        for tree in psys.trees:
            def labeling(parent, child, tree=tree, divisor=divisor):
                kids = tree.children(parent)
                index = kids.index(child)
                weights = [(divisor + k) for k in range(len(kids))]
                total = sum(weights)
                return Fraction(weights[index], total)

            trees.append(tree.relabel(labeling))
        variants.append(ProbabilisticSystem(trees))
    return variants


class TestBoostPathLabeling:
    def test_concentrates_mass(self, coin):
        tree = coin.psys.trees[0]
        leaf_node = next(node for node in tree.nodes if tree.is_leaf(node))
        labels = boost_path_labeling(tree, leaf_node)
        boosted = tree.relabel(labels)
        runs = boosted.runs_through_node(leaf_node)
        mass = sum(boosted.run_probability(run) for run in runs)
        assert mass > Fraction(1, 2)

    def test_valid_relabeling(self, coin):
        tree = coin.psys.trees[0]
        leaf_node = next(node for node in tree.nodes if tree.is_leaf(node))
        boosted = tree.relabel(boost_path_labeling(tree, leaf_node))
        assert sum(boosted.run_probability(run) for run in boosted.runs) == 1

    def test_root_target_is_noop(self, coin):
        tree = coin.psys.trees[0]
        labels = boost_path_labeling(tree, tree.root)
        assert labels == {edge: tree.edge_probability(*edge) for edge in tree.edges}


class TestPartA:
    def test_fut_below_opp_determines_safe_bets(self, coin):
        report = verify_theorem8_part_a(
            relabelings(coin.psys),
            lambda psys: FutureAssignment(psys),
            agent=0,
            opponent=2,
            facts_factory=lambda psys: [
                Fact.about_local_state(2, lambda local: local[0] == "saw-heads"),
            ],
        )
        assert report.holds, report.details
        assert report.checked == 4

    def test_opp_itself_determines_safe_bets(self, coin):
        report = verify_theorem8_part_a(
            relabelings(coin.psys),
            lambda psys: OpponentAssignment(psys, 2),
            agent=0,
            opponent=2,
            facts_factory=lambda psys: [
                Fact.about_local_state(2, lambda local: local[0] == "saw-heads"),
            ],
        )
        assert report.holds, report.details

    def test_random_system(self):
        base = random_psys(seed=41, depth=2, observability=("clock", "full"))
        report = verify_theorem8_part_a(
            relabelings(base, divisors=(2, 7)),
            lambda psys: FutureAssignment(psys),
            agent=0,
            opponent=1,
            facts_factory=lambda psys: [parity_fact()],
        )
        assert report.holds, report.details

    def test_hypothesis_violation_reported(self, coin):
        # post is NOT below opp(p3): the verifier flags the bad hypothesis.
        report = verify_theorem8_part_a(
            [coin.psys],
            lambda psys: PostAssignment(psys),
            agent=0,
            opponent=2,
            facts_factory=lambda psys: [],
        )
        assert not report.holds


class TestDeterminesSafeBets:
    def test_post_fails_against_informed_opponent(self, coin):
        post = ProbabilityAssignment(PostAssignment(coin.psys))
        against_p3 = opponent_assignment(coin.psys, 2)
        assert not determines_safe_bets(post, against_p3, 0, [coin.heads])

    def test_post_safe_against_equally_ignorant(self, coin):
        post = ProbabilityAssignment(PostAssignment(coin.psys))
        against_p2 = opponent_assignment(coin.psys, 1)
        assert determines_safe_bets(post, against_p2, 0, [coin.heads])


class TestPartB:
    def test_witness_for_post_vs_informed_opponent(self, coin):
        witness = theorem8_witness(
            coin.psys, lambda psys: PostAssignment(psys), agent=0, opponent=2
        )
        assert witness is not None
        # the witness's bet is accepted under the too-big assignment...
        assert witness.alpha > witness.alpha_opponent
        # ...and loses money in expectation against the constructed strategy
        assert witness.expected_loss < 0

    def test_no_witness_when_hypothesis_holds(self, coin):
        witness = theorem8_witness(
            coin.psys, lambda psys: OpponentAssignment(psys, 2), agent=0, opponent=2
        )
        assert witness is None

    def test_witness_random_system(self):
        base = random_psys(seed=43, depth=2, observability=("clock", "full"))
        witness = theorem8_witness(
            base, lambda psys: PostAssignment(psys), agent=0, opponent=1
        )
        assert witness is not None
        assert witness.expected_loss < 0

    def test_witness_relabeled_system_is_valid(self, coin):
        witness = theorem8_witness(
            coin.psys, lambda psys: PostAssignment(psys), agent=0, opponent=2
        )
        for adversary in witness.relabeled.adversaries:
            space = witness.relabeled.run_space(adversary)
            assert space.measure(space.outcomes) == 1
