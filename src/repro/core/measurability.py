"""Measurability of facts with respect to probability assignments.

Section 5 defines ``phi`` to be *measurable with respect to* ``S`` if
``S_ic(phi)`` is measurable in every induced space ``P_ic``.  Proposition 3
shows that in a synchronous system, with a consistent standard assignment
and a state-generated language, *every* fact of ``L(Phi)`` is measurable --
and Section 7 shows this fails in asynchronous systems (the "most recent
coin toss landed heads" example).  This module provides the checkers; the
logic package feeds them formula extensions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .assignments import ProbabilityAssignment
from .facts import Fact
from .model import Point, System


def non_measurable_sites(
    assignment: ProbabilityAssignment, fact: Fact
) -> Tuple[Tuple[int, Point], ...]:
    """Every (agent, point) at which ``S_ic(phi)`` fails to be measurable."""
    system = assignment.psys.system
    failures: List[Tuple[int, Point]] = []
    for agent in system.agents:
        for point in system.points:
            if not assignment.is_measurable_at(agent, point, fact):
                failures.append((agent, point))
    return tuple(failures)


def measurability_report(
    assignment: ProbabilityAssignment, facts: Mapping[str, Fact]
) -> Dict[str, bool]:
    """Map each named fact to whether it is measurable w.r.t. the assignment."""
    return {name: assignment.is_measurable(fact) for name, fact in facts.items()}


def proposition3_instance(
    assignment: ProbabilityAssignment, facts: Iterable[Fact]
) -> bool:
    """Check Proposition 3's conclusion for the given facts.

    The caller is responsible for the hypotheses (synchronous system,
    consistent standard assignment, state-generated language); this function
    verifies the conclusion -- every supplied fact is measurable.  The logic
    package's :func:`~repro.logic.language.generate_language` produces the
    fact set from primitive propositions, closing under the paper's
    connectives.
    """
    return all(assignment.is_measurable(fact) for fact in facts)


def sufficient_richness_propositions(system: System) -> Dict[str, Fact]:
    """The primitive propositions making ``L(Phi)`` *sufficiently rich*.

    Section 5: for every global state ``g`` there is a primitive proposition
    true at precisely the points with global state ``g``.  Returns one
    ``Fact`` per global state, keyed by a stable name.
    """
    propositions: Dict[str, Fact] = {}
    seen: set = set()
    for index, point in enumerate(system.points):
        state = point.global_state
        if state in seen:
            continue
        seen.add(state)
        name = f"at_state_{len(propositions)}"
        propositions[name] = Fact.at_global_state(state, name=name)
    return propositions
