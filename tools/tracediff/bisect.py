"""``tracediff --bisect``: jump to the first divergence, don't scan to it.

The plain diff walks two artifacts linearly and summarises everything it
passes.  Bisection is the complementary query for *large* artifacts: it
answers only "where, exactly, did these two runs part?" -- and answers
it logarithmically, returning a **minimal reproduction pointer** (the
record index or node path, the field that differs, both sides' values)
small enough to paste into a regression report.

Two hash structures make the binary search sound:

* **Record streams** (``repro-trace/1``, ``repro-metrics/1``): each
  normalised record is hashed, the hashes are folded into a rolling
  chain, and equal chain values at a position prove the whole prefixes
  equal -- so the first diverging record is found by binary search over
  chain positions, O(log n) probes.
* **Merkle artifacts** (``repro-explain/2``, ``repro-audit/1``): the
  hashes are already in the artifact.  An audit bundle's ``chain``
  column is binary-searched the same way, and a derivation DAG is
  descended fingerprint-first -- equal child refs prove subtrees equal
  without visiting them, so the walk touches one root-to-divergence
  path and skips every shared subtree
  (:func:`tools.tracediff.diff.dag_divergence`).

``repro-explain/1`` trees and single-root ``/2`` documents are
hash-consed on the fly before descending, so ``--bisect`` accepts the
same artifact kinds as the plain diff -- except ``repro-bench/2``
reports, which are keyed by benchmark name, not sequenced, and have
nothing to bisect.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.obs.audit import AuditBundle
from repro.obs.derivstore import DerivationStore
from repro.obs.provenance import Derivation

from .diff import (
    _record_summary,
    dag_divergence,
    diff_explain_dag,
    leaf_divergence,
    load_artifact,
    normalize_record,
)

__all__ = [
    "bisect_artifacts",
    "first_chain_divergence",
    "record_chain",
    "render_bisect",
]


def record_chain(records: Sequence[Mapping[str, Any]]) -> List[str]:
    """A rolling hash chain over normalised records.

    ``chain[i]`` commits to records ``0..i`` inclusive, so two streams
    whose chains agree at a position agree on the entire prefix -- the
    invariant binary search needs.  Records are canonicalised the same
    way as every other fingerprint in the repo (``sort_keys`` JSON).
    """
    chain: List[str] = []
    rolling = hashlib.sha256(b"tracediff-bisect/1").hexdigest()
    for record in records:
        digest = hashlib.sha256(
            json.dumps(record, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()
        rolling = hashlib.sha256((rolling + digest).encode("utf-8")).hexdigest()
        chain.append(rolling)
    return chain


def first_chain_divergence(
    chain_a: Sequence[str], chain_b: Sequence[str]
) -> Tuple[Optional[int], int]:
    """Binary search for the first position where two hash chains part.

    Returns ``(position, probes)``: ``position`` is ``None`` when the
    shared prefix is identical and the chains are the same length, the
    shorter length when one chain is a strict prefix of the other, and
    otherwise the first index whose values differ.  ``probes`` counts
    the comparisons the search spent -- O(log n), the point of the
    exercise.
    """
    limit = min(len(chain_a), len(chain_b))
    if limit == 0 or chain_a[limit - 1] == chain_b[limit - 1]:
        # Shared prefix identical: divergence is purely a length matter.
        probes = 1 if limit else 0
        return (None if len(chain_a) == len(chain_b) else limit), probes
    low, high = 0, limit - 1  # invariant: chains differ at ``high``
    probes = 1
    while low < high:
        mid = (low + high) // 2
        probes += 1
        if chain_a[mid] == chain_b[mid]:
            low = mid + 1
        else:
            high = mid
    return low, probes


def _bisect_records(
    kind: str,
    records_a: Sequence[Mapping[str, Any]],
    records_b: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    normalized_a = [normalize_record(record) for record in records_a]
    normalized_b = [normalize_record(record) for record in records_b]
    position, probes = first_chain_divergence(
        record_chain(normalized_a), record_chain(normalized_b)
    )
    summary: Dict[str, Any] = {
        "kind": kind,
        "mode": "bisect",
        "records_a": len(records_a),
        "records_b": len(records_b),
        "probes": probes,
        "diverged": position is not None,
        "pointer": None,
        "first_divergence": None,
    }
    if position is None:
        return summary
    summary["pointer"] = f"record[{position}]"
    summary["first_divergence"] = {
        "index": position,
        "a": _record_summary(normalized_a[position])
        if position < len(normalized_a)
        else None,
        "b": _record_summary(normalized_b[position])
        if position < len(normalized_b)
        else None,
    }
    return summary


def _bisect_derivations(a: Derivation, b: Derivation) -> Dict[str, Any]:
    # Hash-consing on the fly turns the two trees into node tables the
    # fingerprint descent can skip shared subtrees of.
    store_a = DerivationStore()
    store_b = DerivationStore()
    ref_a = store_a.add(a.root)
    ref_b = store_b.add(b.root)
    summary: Dict[str, Any] = {
        "kind": "explain",
        "mode": "bisect",
        "fingerprint_a": a.fingerprint(),
        "fingerprint_b": b.fingerprint(),
        "nodes_a": len(store_a),
        "nodes_b": len(store_b),
        "diverged": False,
        "pointer": None,
        "first_divergence": None,
        "shared_subtrees_skipped": 0,
    }
    for field_name in ("assignment", "formula", "point"):
        value_a = getattr(a, field_name)
        value_b = getattr(b, field_name)
        if value_a != value_b:
            summary["diverged"] = True
            summary["pointer"] = field_name
            summary["first_divergence"] = {
                "path": field_name,
                "field": field_name,
                "a": value_a,
                "b": value_b,
            }
            return summary
    divergence, skipped = dag_divergence(
        store_a.table(), store_b.table(), ref_a, ref_b
    )
    summary["shared_subtrees_skipped"] = skipped
    if divergence is not None:
        summary["diverged"] = True
        summary["pointer"] = f"{divergence['path']}.{divergence['field']}"
        summary["first_divergence"] = divergence
    return summary


def _bisect_explain_dag(
    doc_a: Mapping[str, Any], doc_b: Mapping[str, Any]
) -> Dict[str, Any]:
    summary = diff_explain_dag(doc_a, doc_b)
    summary["mode"] = "bisect"
    divergence = summary.get("first_divergence")
    if divergence is None:
        summary["pointer"] = None
    elif divergence.get("path"):
        summary["pointer"] = f"{divergence['path']}.{divergence['field']}"
    else:
        summary["pointer"] = "roots"
    return summary


def _bisect_audit(bundle_a: AuditBundle, bundle_b: AuditBundle) -> Dict[str, Any]:
    # The recorded chain column would serve as the prefix commitment --
    # but only for honest bundles (a tamperer edits a row and leaves the
    # chain stale), so the chains are recomputed from the full leaf
    # records, recorded hashes included, before binary-searching.
    summary: Dict[str, Any] = {
        "kind": "audit",
        "mode": "bisect",
        "leaves_a": len(bundle_a.leaves),
        "leaves_b": len(bundle_b.leaves),
        "root_a": bundle_a.root,
        "root_b": bundle_b.root,
        "probes": 0,
        "diverged": False,
        "pointer": None,
        "first_divergence": None,
        "derivation_divergence": None,
    }
    if bundle_a.header != bundle_b.header:
        summary["diverged"] = True
        summary["pointer"] = "header"
        summary["first_divergence"] = {
            "position": None,
            "field": "header",
            "a": bundle_a.header,
            "b": bundle_b.header,
        }
        return summary
    position, probes = first_chain_divergence(
        record_chain(bundle_a.leaves), record_chain(bundle_b.leaves)
    )
    summary["probes"] = probes
    if position is None:
        if bundle_a.nodes != bundle_b.nodes:
            differing = sorted(
                ref
                for ref in set(bundle_a.nodes) | set(bundle_b.nodes)
                if bundle_a.nodes.get(ref) != bundle_b.nodes.get(ref)
            )
            summary["diverged"] = True
            summary["pointer"] = f"nodes[{differing[0]}]"
            summary["first_divergence"] = {
                "position": None,
                "field": "nodes",
                "refs": differing[:8],
                "a": len(bundle_a.nodes),
                "b": len(bundle_b.nodes),
            }
        return summary
    summary["diverged"] = True
    if position >= min(len(bundle_a.leaves), len(bundle_b.leaves)):
        summary["pointer"] = f"leaf[{position}]"
        summary["first_divergence"] = {
            "position": position,
            "field": "leaves",
            "a": len(bundle_a.leaves),
            "b": len(bundle_b.leaves),
            "note": "one bundle is a strict prefix of the other",
        }
        return summary
    divergence, node_divergence = leaf_divergence(bundle_a, bundle_b, position)
    summary["first_divergence"] = divergence
    summary["derivation_divergence"] = node_divergence
    pointer = f"leaf[{position}].{divergence['field']}"
    if node_divergence is not None:
        pointer += f" -> {node_divergence['path']}.{node_divergence['field']}"
    summary["pointer"] = pointer
    return summary


def bisect_artifacts(path_a: str, path_b: str) -> Dict[str, Any]:
    """Load two artifacts and binary-search their first divergence.

    Accepts the same auto-detected artifact kinds as
    :func:`tools.tracediff.diff.diff_artifacts` except ``bench`` (keyed,
    not sequenced -- there is no order to bisect).  The summary always
    carries ``pointer``: the minimal reproduction pointer, ``None`` when
    the artifacts' content is identical.
    """
    kind_a, payload_a = load_artifact(path_a)
    kind_b, payload_b = load_artifact(path_b)
    if kind_a != kind_b:
        raise TraceError(
            f"cannot bisect a {kind_a} artifact against a {kind_b} artifact "
            f"({path_a!r} vs {path_b!r})"
        )
    if kind_a == "bench":
        raise TraceError(
            "bench reports are keyed by benchmark name, not sequenced; "
            "there is no order to bisect -- use the plain diff"
        )
    if kind_a in ("trace", "metrics"):
        summary = _bisect_records(kind_a, payload_a, payload_b)
    elif kind_a == "explain":
        summary = _bisect_derivations(payload_a, payload_b)
    elif kind_a == "explain-dag":
        summary = _bisect_explain_dag(payload_a, payload_b)
    else:
        summary = _bisect_audit(payload_a, payload_b)
    summary["a"] = path_a
    summary["b"] = path_b
    return summary


def render_bisect(summary: Mapping[str, Any]) -> str:
    """Plain-text rendering of a bisection result."""
    kind = summary.get("kind")
    verdict = "DIVERGED" if summary.get("diverged") else "identical content"
    lines = [
        f"tracediff --bisect [{kind}]: {verdict}",
        f"  A: {summary.get('a', '?')}",
        f"  B: {summary.get('b', '?')}",
    ]
    if "probes" in summary:
        lines.append(f"probes: {summary['probes']}")
    if "shared_subtrees_skipped" in summary:
        lines.append(
            f"shared subtrees skipped: {summary['shared_subtrees_skipped']}"
        )
    pointer = summary.get("pointer")
    if pointer is not None:
        lines.append(f"pointer: {pointer}")
    divergence = summary.get("first_divergence")
    if divergence is not None:
        lines.append(
            "first divergence: "
            f"{json.dumps(divergence, default=str, sort_keys=True)}"
        )
    else:
        lines.append("first divergence: none")
    node = summary.get("derivation_divergence")
    if node is not None:
        lines.append(
            "first diverging derivation node: "
            f"{node.get('path')} [{node.get('field')}]"
        )
    return "\n".join(lines)
