"""The synchronous round-based executor.

Rounds proceed in lockstep: every agent receives the messages delivered to
it, takes one (possibly probabilistic) step, and the channel decides which
of the sent messages arrive next round.  The executor unfolds this into a
labeled computation tree -- one tree per type-1 adversary, where the
adversary chooses the agents' inputs.

Clocks: in a synchronous system every agent can read the round number, so
by default each local state is stamped ``(protocol_state, round)``.
Clearing an agent's ``clocked`` flag removes the stamp and is exactly how
the asynchronous examples of Section 7 are produced (an agent whose
protocol state never changes then cannot tell any two times apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..probability.fractionutil import ONE, ZERO
from ..trees.builder import build_tree
from ..trees.probabilistic_system import ProbabilisticSystem
from ..trees.tree import ComputationTree
from .agents import Agent
from .channels import Channel, PerfectChannel
from .messages import Message, inbox_for, sort_messages


@dataclass
class SyncProtocol:
    """A synchronous protocol: agents, a channel, a horizon, clock flags.

    ``horizon`` is the number of rounds executed; runs pass through times
    ``0 .. horizon``.  ``clocked[i]`` controls whether agent ``i``'s local
    state carries the round number (default: all clocked).
    """

    agents: Sequence[Agent]
    channel: Channel = field(default_factory=PerfectChannel)
    horizon: int = 1
    clocked: Optional[Sequence[bool]] = None

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise SimulationError("a protocol needs at least one round")
        if self.clocked is None:
            self.clocked = tuple(True for _ in self.agents)
        if len(self.clocked) != len(self.agents):
            raise SimulationError("clocked flags must match the agent count")

    def wrap_local(self, agent: int, state: Hashable, round_number: int) -> Hashable:
        """Stamp a protocol state with the round if the agent has a clock."""
        if self.clocked[agent]:
            return (state, round_number)
        return state


def _joint_actions(
    protocol: SyncProtocol,
    states: Tuple[Hashable, ...],
    pending: Tuple[Message, ...],
    round_number: int,
):
    """The product distribution over all agents' simultaneous actions."""
    joint: List[Tuple[Fraction, Tuple[Tuple[Hashable, Tuple[Message, ...]], ...]]] = [
        (ONE, ())
    ]
    for index, agent in enumerate(protocol.agents):
        inbox = inbox_for(index, pending)
        branches = agent.step(states[index], inbox, round_number)
        if len(branches) == 1:
            # deterministic agents (the idle observers of every coin
            # example) multiply every joint branch by 1; skip the
            # Fraction work entirely after checking the lone probability
            probability, action = branches[0]
            if probability != ONE:
                raise SimulationError(
                    f"agent {index} step probabilities sum to {probability} "
                    f"at round {round_number}"
                )
            joint = [
                (accumulated, actions + (action,))
                for accumulated, actions in joint
            ]
            continue
        total = sum((probability for probability, _ in branches), ZERO)
        if total != ONE:
            raise SimulationError(
                f"agent {index} step probabilities sum to {total} at round {round_number}"
            )
        joint = [
            # `accumulated is ONE` holds until the first probabilistic
            # agent; skipping the 1 * p products saves a gcd per branch
            (
                probability if accumulated is ONE else accumulated * probability,
                actions + (action,),
            )
            for accumulated, actions in joint
            for probability, action in branches
        ]
    return joint


def run_protocol(
    protocol: SyncProtocol,
    inputs: Sequence[Hashable],
    adversary: Hashable = "default",
) -> ComputationTree:
    """Unfold one protocol execution into a computation tree ``T_A``.

    ``inputs`` are the agents' initial inputs -- the nondeterministic choice
    the type-1 adversary ``adversary`` resolves.
    """
    if len(inputs) != len(protocol.agents):
        raise SimulationError("inputs must match the agent count")
    raw_initials = tuple(
        agent.initial_state(input_value)
        for agent, input_value in zip(protocol.agents, inputs)
    )
    initial_locals = tuple(
        protocol.wrap_local(index, state, 0) for index, state in enumerate(raw_initials)
    )

    def unwrap(locals_: Tuple[Hashable, ...], round_number: int) -> Tuple[Hashable, ...]:
        return tuple(
            local[0] if protocol.clocked[index] else local
            for index, local in enumerate(locals_)
        )

    def step(time: int, locals_: Tuple[Hashable, ...], extra: Hashable):
        if time >= protocol.horizon:
            return ()
        pending: Tuple[Message, ...] = extra if extra is not None else ()
        states = unwrap(locals_, time)
        outcomes: Dict[tuple, Fraction] = {}
        for action_probability, actions in _joint_actions(protocol, states, pending, time):
            new_states = tuple(state for state, _ in actions)
            sent = sort_messages(
                message for _, outbox in actions for message in outbox
            )
            for delivery_probability, delivered in protocol.channel.deliveries(sent, time):
                key = (new_states, delivered)
                contribution = (
                    action_probability
                    if delivery_probability is ONE
                    else action_probability * delivery_probability
                )
                existing = outcomes.get(key)
                outcomes[key] = (
                    contribution if existing is None else existing + contribution
                )
        branches = []
        for (new_states, delivered), probability in sorted(
            outcomes.items(), key=lambda item: repr(item[0])
        ):
            new_locals = tuple(
                protocol.wrap_local(index, state, time + 1)
                for index, state in enumerate(new_states)
            )
            label = (new_states, delivered)
            branches.append((probability, label, new_locals, delivered))
        return branches

    return build_tree(
        adversary, initial_locals, step, max_depth=protocol.horizon + 1, initial_extra=()
    )


def protocol_system(
    protocol: SyncProtocol,
    inputs_by_adversary: Mapping[Hashable, Sequence[Hashable]],
) -> ProbabilisticSystem:
    """One computation tree per type-1 adversary (per input choice)."""
    trees = [
        run_protocol(protocol, inputs, adversary)
        for adversary, inputs in inputs_by_adversary.items()
    ]
    return ProbabilisticSystem(trees)
