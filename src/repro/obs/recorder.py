"""The pluggable, observe-only recorder protocol.

Observability in this reproduction is **one-way glass**: instrumented
code hands counters, gauges, events and timing spans to whatever
:class:`Recorder` is installed, and the recorder may *never* hand
anything back.  No recorder method returns a value the instrumented
code consumes (spans are context managers whose ``__enter__`` result is
only the span itself), so swapping recorders cannot change a single
probability, sweep row, or fixpoint -- the differential suite in
``tests/obs`` pins exactly that.

Three recorders ship with the library:

* :class:`NullRecorder` -- the default; every method is a no-op, so the
  instrumented hot paths cost a method call at most.
* :class:`~repro.obs.metrics.MetricsRecorder` -- in-memory monotonic
  counters, exact-``Fraction``-friendly gauges, and hierarchical timing
  spans.
* :class:`~repro.obs.trace.TraceRecorder` -- streams structured JSONL
  events (schema ``repro-trace/1``) for ``tools/tracereport``.

:class:`MultiRecorder` fans out to several recorders at once (the
benchmark collector records a trace *and* a metrics snapshot).

The active recorder is process-global state, installed with
:func:`set_recorder` or scoped with the :func:`use_recorder` context
manager, and read by instrumented code through :func:`get_recorder`.
Worker processes spawned by the parallel runners start with the default
:class:`NullRecorder`; when the *parent* has a real recorder installed,
the runners capture each attempt's observations worker-side
(:class:`repro.obs.snapshot.ObsDeltaCapture`) and ship the delta back
inside the task envelope, so parent-side counters cover the whole sweep
-- see ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "MultiRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]


class _NullSpan:
    """The reusable no-op span: entering and exiting does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Base class of the recorder protocol; every method is a no-op.

    Subclasses override any subset of :meth:`counter`, :meth:`gauge`,
    :meth:`event`, :meth:`span` and :meth:`close`.  The contract every
    override must keep: **observe only**.  Recorders must not raise on
    well-formed input, must not mutate their arguments, and must not
    return values that instrumented code could branch on.
    """

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""

    def gauge(self, name: str, value) -> None:
        """Set gauge ``name`` to ``value`` (exact ``Fraction`` welcome)."""

    def event(self, kind: str, **fields) -> None:
        """Record one structured event of ``kind`` with arbitrary fields."""

    def span(self, name: str, **fields):
        """A context manager timing the enclosed block as span ``name``."""
        return _NULL_SPAN

    def close(self) -> None:
        """Flush and release any resources the recorder holds."""

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False


class NullRecorder(Recorder):
    """The default recorder: records nothing, costs (almost) nothing."""

    __slots__ = ()


class _MultiSpan:
    """Enter/exit a span on every child recorder, in order."""

    __slots__ = ("_spans",)

    def __init__(self, spans: Sequence[object]) -> None:
        self._spans = spans

    def __enter__(self) -> "_MultiSpan":
        for span in self._spans:
            span.__enter__()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        for span in reversed(self._spans):
            span.__exit__(exc_type, exc_value, traceback)
        return False


class MultiRecorder(Recorder):
    """Fan every observation out to a sequence of child recorders."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[Recorder]) -> None:
        self.children: List[Recorder] = list(children)

    def counter(self, name: str, value: int = 1) -> None:
        for child in self.children:
            child.counter(name, value)

    def gauge(self, name: str, value) -> None:
        for child in self.children:
            child.gauge(name, value)

    def event(self, kind: str, **fields) -> None:
        for child in self.children:
            child.event(kind, **fields)

    def span(self, name: str, **fields):
        return _MultiSpan([child.span(name, **fields) for child in self.children])

    def close(self) -> None:
        for child in self.children:
            child.close()


#: The process-wide default recorder.  A singleton so identity checks
#: (``get_recorder() is NULL_RECORDER``) can tell "uninstrumented".
NULL_RECORDER = NullRecorder()

_current: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The recorder instrumented code should report to right now."""
    return _current


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install ``recorder`` process-wide; returns the previous one.

    ``None`` restores the default :data:`NULL_RECORDER`.
    """
    global _current
    previous = _current
    _current = NULL_RECORDER if recorder is None else recorder
    return previous


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of the ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
