"""tracereport: fold a ``repro-trace/1`` JSONL trace into summary tables.

The :class:`~repro.obs.trace.TraceRecorder` streams every counter,
event, and timing span of an instrumented run; this tool reads the
stream back (via :func:`repro.obs.read_trace`, so schema validation and
truncated-tail handling are shared with the library) and renders the
summaries operators actually ask of a sweep:

* **Top spans** -- count / total / mean / max seconds per span name,
  sorted by total time, so the expensive stage is the first row.
* **Counters** -- every monotonic counter, summed over the trace.
* **Cache hit rate** -- from the last ``cache_stats`` event, as an exact
  ``hits/(hits+misses)`` :class:`fractions.Fraction`.
* **gfp fixpoints** -- how many greatest-fixed-point computations ran
  and how many iterations they took (``gfp`` events).
* **Retry histogram** -- attempts-per-task and outcome counts from the
  sweep engine's ``task_attempt`` events.

Usage::

    PYTHONPATH=src python -m tools.tracereport trace.jsonl
    PYTHONPATH=src python -m tools.tracereport --json trace.jsonl

Exit status: 0 on success, 2 when the file is not a valid
``repro-trace/1`` trace.
"""

from .report import render_report, summarize

__all__ = ["render_report", "summarize"]
