"""The after-the-fact invariant validators against corrupted fixtures."""

from fractions import Fraction

import pytest

from repro.core.assignments import ExplicitAssignment
from repro.core.model import GlobalState
from repro.core.standard import standard_assignments
from repro.errors import ValidationError
from repro.probability.bitset import use_backend
from repro.probability.space import FiniteProbabilitySpace
from repro.robustness import (
    ValidationReport,
    validate_assignment,
    validate_space,
    validate_system,
    validate_tree,
)
from repro.testing import random_psys
from repro.trees.probabilistic_system import ProbabilisticSystem
from repro.trees.tree import ComputationTree


def _state(env, *locals_):
    return GlobalState(environment=env, local_states=tuple(locals_))


def _arc_sum_tree():
    """Arcs at two nodes sum to 3/4 and 5/4 -- yet the run measure is 1.

    Built with ``validate=False``: the construction-time checks would
    reject it, which is exactly why the validator must re-check.
    """
    root = _state("root", "idle")
    a = _state("a", "idle")
    b = _state("b", "idle")
    a1 = _state("a1", "idle")
    b1 = _state("b1", "idle")
    return ComputationTree(
        adversary="arc-sum",
        root=root,
        children={root: [a, b], a: [a1], b: [b1]},
        edge_probabilities={
            (root, a): Fraction(1, 2),
            (root, b): Fraction(1, 2),
            (a, a1): Fraction(3, 4),
            (b, b1): Fraction(5, 4),
        },
        validate=False,
    )


def _shared_child_tree():
    """Two branches converge on one global state: the technical
    assumption of Section 3 fails (the environment forgot the history)."""
    root = _state("root", "idle")
    left = _state("left", "idle")
    right = _state("right", "idle")
    shared = _state("shared", "idle")
    return ComputationTree(
        adversary="shared-child",
        root=root,
        children={root: [left, right], left: [shared], right: [shared]},
        edge_probabilities={
            (root, left): Fraction(1, 2),
            (root, right): Fraction(1, 2),
            (left, shared): Fraction(1),
            (right, shared): Fraction(1),
        },
        validate=False,
    )


class TestValidateSpace:
    def test_well_formed_space_passes(self):
        report = validate_space(FiniteProbabilitySpace.uniform(range(4)))
        assert report.ok
        assert "all invariants hold" in report.render()

    def test_naive_backend_space_passes(self):
        with use_backend("naive"):
            space = FiniteProbabilitySpace.uniform(range(4))
            assert space.backend == "naive"
            assert validate_space(space).ok

    def test_weights_not_summing_to_one_are_reported(self):
        space = FiniteProbabilitySpace._from_atom_weights(
            (frozenset({0}), frozenset({1})), (1, 2), 2
        )
        report = validate_space(space)
        assert not report.ok
        codes = [violation.code for violation in report.violations]
        # Both the integer-weight view and the Fraction view report it:
        # one corrupted measure, every violation in one report.
        assert codes.count("measure-sum") >= 2

    def test_negative_weight_is_reported(self):
        space = FiniteProbabilitySpace._from_atom_weights(
            (frozenset({0}), frozenset({1})), (3, -1), 2
        )
        report = validate_space(space)
        assert any(v.code == "measure-negative" for v in report.violations)

    def test_overlapping_atoms_are_reported(self):
        atoms = (frozenset({0, 1}), frozenset({1, 2}))
        space = FiniteProbabilitySpace._from_checked_partition(
            atoms,
            {atoms[0]: Fraction(1, 2), atoms[1]: Fraction(1, 2)},
            validate_measure=False,
        )
        report = validate_space(space)
        assert any(v.code == "partition" for v in report.violations)

    def test_raise_if_failed_carries_all_violations(self):
        space = FiniteProbabilitySpace._from_atom_weights(
            (frozenset({0}), frozenset({1})), (1, 2), 2
        )
        report = validate_space(space)
        with pytest.raises(ValidationError) as excinfo:
            report.raise_if_failed()
        assert excinfo.value.violations == tuple(report.violations)
        assert len(excinfo.value.violations) >= 2

    def test_raise_if_failed_is_identity_on_success(self):
        report = validate_space(FiniteProbabilitySpace.uniform([0, 1]))
        assert report.raise_if_failed() is report


class TestValidateTree:
    def test_well_formed_tree_passes(self, tiny_psys):
        for tree in tiny_psys.trees:
            assert validate_tree(tree).ok

    def test_arc_sums_are_reported_per_node(self):
        report = validate_tree(_arc_sum_tree())
        arc_sums = [v for v in report.violations if v.code == "arc-sum"]
        # BOTH mislabeled nodes are reported, not just the first.
        assert len(arc_sums) == 2

    def test_shared_child_breaks_the_technical_assumption(self):
        report = validate_tree(_shared_child_tree())
        assert any(v.code == "technical-assumption" for v in report.violations)

    def test_nonpositive_arc_is_reported(self):
        root = _state("root", "idle")
        a = _state("a", "idle")
        b = _state("b", "idle")
        tree = ComputationTree(
            adversary="zero-arc",
            root=root,
            children={root: [a, b]},
            edge_probabilities={(root, a): Fraction(0), (root, b): Fraction(1)},
            validate=False,
        )
        report = validate_tree(tree)
        assert any(v.code == "arc-positive" for v in report.violations)


class TestValidateAssignment:
    def test_standard_assignments_pass(self, tiny_psys):
        for assignment in standard_assignments(tiny_psys).values():
            assert validate_assignment(assignment).ok

    def test_cross_tree_sample_space_violates_req1(self):
        psys = random_psys(seed=5, num_trees=2)
        tree_a, tree_b = psys.trees
        point_a = tree_a.points[0]
        table = {(0, point_a): frozenset(tree_b.points)}
        assignment = ExplicitAssignment(psys, table, name="req1-breaker")
        report = validate_assignment(assignment)
        assert not report.ok
        assert all(v.code == "requirements" for v in report.violations)
        assert any("REQ1" in v.message for v in report.violations)
        assert any("REQ2" in v.message for v in report.violations)


class TestValidateSystem:
    def test_well_formed_system_passes(self, tiny_psys):
        assert validate_system(tiny_psys).ok

    def test_random_system_passes(self):
        assert validate_system(random_psys(seed=11, num_trees=2)).ok

    def test_corrupted_tree_surfaces_through_the_system_report(self):
        psys = ProbabilisticSystem([_shared_child_tree()])
        report = validate_system(psys)
        assert any(v.code == "technical-assumption" for v in report.violations)

    def test_report_render_counts_violations(self):
        report = validate_tree(_arc_sum_tree())
        rendered = report.render()
        assert f"{len(report.violations)} violation(s)" in rendered
        assert all(v.render() in rendered for v in report.violations)

    def test_validation_report_is_importable_and_starts_ok(self):
        assert ValidationReport(subject="fresh").ok
