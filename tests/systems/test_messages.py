"""Message normalisation."""

from repro.systems import Message, inbox_for, message_sort_key, sort_messages


class TestMessage:
    def test_frozen_and_hashable(self):
        message = Message(0, 1, "hello")
        assert hash(message) == hash(Message(0, 1, "hello"))
        assert message == Message(0, 1, "hello")

    def test_sort_key_total_order(self):
        messages = [Message(1, 0, "b"), Message(0, 1, "a"), Message(0, 0, "c")]
        ordered = sorted(messages, key=message_sort_key)
        assert ordered[0].sender == 0 and ordered[0].recipient == 0

    def test_sort_messages_deterministic(self):
        first = sort_messages([Message(1, 0, "x"), Message(0, 1, "y")])
        second = sort_messages([Message(0, 1, "y"), Message(1, 0, "x")])
        assert first == second

    def test_inbox_filters_by_recipient(self):
        messages = [Message(0, 1, "a"), Message(0, 2, "b"), Message(1, 1, "c")]
        inbox = inbox_for(1, messages)
        assert all(message.recipient == 1 for message in inbox)
        assert len(inbox) == 2
