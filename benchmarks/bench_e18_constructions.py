"""E18 -- Propositions 1, 2, 4, 5 at scale on randomized systems.

The construction sanity sweep: state-generated samples satisfy REQ2
(Prop. 1), induced spaces are genuine probability spaces (Prop. 2), lower
standard assignments partition higher ones (Prop. 4), and their measures
arise by conditioning (Prop. 5) -- across a family of pseudo-random
synchronous systems.
"""

from repro.core import (
    FutureAssignment,
    PostAssignment,
    ProbabilityAssignment,
    check_req2_state_generated,
    conditioning_identity_everywhere,
    refinement_partition,
)
from repro.reporting import print_table
from repro.testing import random_psys

SEEDS = range(8)


def run_experiment():
    checked = {"req2": 0, "spaces": 0, "refinements": 0, "conditioning": 0}
    for seed in SEEDS:
        psys = random_psys(seed, num_trees=2, depth=2, observability=("clock", "full"))
        fut = FutureAssignment(psys)
        post = PostAssignment(psys)
        fut_pa = ProbabilityAssignment(fut)
        post_pa = ProbabilityAssignment(post)
        for agent in psys.system.agents:
            for point in psys.system.points:
                assert check_req2_state_generated(
                    psys, point, post.sample_space(agent, point)
                )
                checked["req2"] += 1
                space = post_pa.space(agent, point)
                assert space.measure(space.outcomes) == 1
                checked["spaces"] += 1
                blocks = refinement_partition(fut, post, agent, point)
                assert frozenset().union(*blocks) == post.sample_space(agent, point)
                checked["refinements"] += 1
        assert conditioning_identity_everywhere(fut_pa, post_pa)
        checked["conditioning"] += 1
    return checked


def test_e18_constructions(benchmark):
    checked = benchmark(run_experiment)
    print_table(
        "E18  construction sanity sweep over random systems",
        ["check", "paper", "instances verified"],
        [
            ("Prop 1: state-generated => REQ2", "always", checked["req2"]),
            ("Prop 2: induced space sums to 1", "always", checked["spaces"]),
            ("Prop 4: refinement partitions", "always", checked["refinements"]),
            ("Prop 5: conditioning identity", "always", checked["conditioning"]),
        ],
    )
    assert all(count > 0 for count in checked.values())
