"""E16 -- Sections 1 and 3: probabilistic primality testing as a system.

Paper claims: for every composite input at least 3/4 of Miller-Rabin
candidates witness compositeness (1/2 for Solovay-Strassen), so for each
fixed input the algorithm is correct with high probability over its coin
tosses; while "n is prime" itself has probability 0 or 1 in every tree.
"""

from fractions import Fraction

from repro.examples_lib import (
    miller_rabin_witness,
    per_input_correctness,
    primality_probability_is_degenerate,
    primality_system,
    solovay_strassen_witness,
    witness_density,
)
from repro.reporting import print_table

INPUTS = [13, 15, 21, 25, 49]


def run_experiment():
    one_round = primality_system(INPUTS, rounds=1)
    two_rounds = primality_system([9, 15], rounds=2)
    return {
        "one": per_input_correctness(one_round),
        "two": per_input_correctness(two_rounds),
        "degenerate": primality_probability_is_degenerate(one_round),
        "mr_density": {n: witness_density(n, miller_rabin_witness) for n in INPUTS if n != 13},
        "ss_density": {
            n: witness_density(n, solovay_strassen_witness) for n in INPUTS if n != 13
        },
    }


def test_e16_primality(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E16  per-input correctness probability (one round of Miller-Rabin)",
        ["input", "prime?", "paper bound", "measured"],
        [
            (n, n == 13, ">= 3/4" if n != 13 else "= 1", probability)
            for n, probability in sorted(results["one"].items())
        ],
    )
    print_table(
        "E16  witness densities for composites",
        ["n", "Miller-Rabin (>= 3/4)", "Solovay-Strassen (>= 1/2)"],
        [
            (n, results["mr_density"][n], results["ss_density"][n])
            for n in sorted(results["mr_density"])
        ],
    )
    print_table(
        "E16  error squares with independent rounds",
        ["input", "1-round error", "2-round error"],
        [
            (n, 1 - results["one"].get(n, results["two"][n]), 1 - results["two"][n])
            for n in sorted(results["two"])
            if n in results["two"]
        ],
    )
    assert results["one"][13] == 1
    for n, probability in results["one"].items():
        assert probability >= Fraction(3, 4)
    for n, density in results["mr_density"].items():
        assert density >= Fraction(3, 4)
    for n, density in results["ss_density"].items():
        assert density >= Fraction(1, 2)
    assert results["degenerate"]
    assert 1 - results["two"][15] == (1 - witness_density(15, miller_rabin_witness)) ** 2
