"""Common knowledge and probabilistic common knowledge (Section 8).

Besides the AST constructors (in :mod:`repro.logic.syntax`) and their
fixed-point semantics (in :mod:`repro.logic.semantics`), this module gives
direct set-level computations and executable forms of the two laws the
paper states:

* the **fixed point axiom**: ``C_G phi  ==  E_G(phi & C_G phi)``;
* the **induction rule**: from ``psi => E_G(psi & phi)`` infer
  ``psi => C_G phi``.

Both hold verbatim for the probabilistic versions ``E_G^alpha`` /
``C_G^alpha`` (Fagin-Halpern), and the checkers below take the alpha
parameter optionally so one implementation covers both.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from ..core.facts import Fact
from ..core.model import Point
from .semantics import Model, PointSet
from .syntax import (
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    Formula,
    Iff,
    Implies,
)


def everyone_knows_points(
    model: Model, group: Sequence[int], target: PointSet, alpha=None
) -> PointSet:
    """``E_G`` (or ``E_G^alpha`` when ``alpha`` is given) on an extension."""
    if alpha is None:
        return model._everyone_extension(group, target)
    return model._everyone_prob_extension(group, alpha, target)


def common_knowledge_points(
    model: Model, group: Sequence[int], target: PointSet, alpha=None
) -> PointSet:
    """``C_G`` (or ``C_G^alpha``) of an extension, as a point set."""
    return model._gfp(
        target, lambda current: everyone_knows_points(model, group, current, alpha)
    )


def iterated_everyone_knows(
    model: Model, group: Sequence[int], target: PointSet, levels: int, alpha=None
) -> Tuple[PointSet, ...]:
    """``E_G phi, E_G^2 phi, ..., E_G^levels phi`` as extensions.

    For the probabilistic operator the paper notes ``C_G^alpha`` is *not*
    the infinite conjunction of the ``(E_G^alpha)^k``; comparing this chain
    with :func:`common_knowledge_points` exhibits the gap.
    """
    chain = []
    current = target
    for _ in range(levels):
        current = everyone_knows_points(model, group, current, alpha)
        chain.append(current)
    return tuple(chain)


def fixed_point_axiom_holds(
    model: Model, group: Sequence[int], formula: Formula, alpha=None
) -> bool:
    """Check ``C_G phi == E_G(phi & C_G phi)`` on the whole system."""
    if alpha is None:
        common: Formula = CommonKnows(tuple(group), formula)
        everyone: Formula = EveryoneKnows(tuple(group), And(formula, common))
    else:
        common = CommonKnowsProb(tuple(group), alpha, formula)
        everyone = EveryoneKnowsProb(tuple(group), alpha, And(formula, common))
    return model.valid(Iff(common, everyone))


def induction_rule_holds(
    model: Model,
    group: Sequence[int],
    premise: Formula,
    formula: Formula,
    alpha=None,
) -> bool:
    """Check the induction rule instance: if ``psi => E_G(psi & phi)`` is
    valid, then ``psi => C_G phi`` is valid.

    Returns True when the rule's conclusion follows (vacuously true if the
    premise implication is not valid in this model).
    """
    if alpha is None:
        everyone: Formula = EveryoneKnows(tuple(group), And(premise, formula))
        common: Formula = CommonKnows(tuple(group), formula)
    else:
        everyone = EveryoneKnowsProb(tuple(group), alpha, And(premise, formula))
        common = CommonKnowsProb(tuple(group), alpha, formula)
    if not model.valid(Implies(premise, everyone)):
        return True
    return model.valid(Implies(premise, common))


def greatest_fixed_point_is_greatest(
    model: Model, group: Sequence[int], formula: Formula, candidates: Iterable[PointSet], alpha=None
) -> bool:
    """Verify that ``C_G phi`` contains every fixed point of
    ``X == E_G(phi & X)`` among the supplied candidate point sets."""
    target = model.extension(formula)
    common = common_knowledge_points(model, group, target, alpha)
    for candidate in candidates:
        fixed = everyone_knows_points(model, group, target & candidate, alpha)
        if fixed == candidate and not candidate <= common:
            return False
    return True
