"""The die example closing Section 5.

``p_1`` tosses a fair die; ``p_2`` never learns the outcome.  At time 1
there are six points ``c_1 .. c_6``.  With the whole-space assignment
``S^1`` (which is ``S_post`` for ``p_2``), ``p_2`` knows the probability of
"the die landed even" is exactly 1/2.  With the assignment ``S^2`` that
splits the points into ``{c_1,c_2,c_3}`` and ``{c_4,c_5,c_6}``, all ``p_2``
can say is that the probability is 1/3 or 2/3 -- it does not know which.

The split corresponds to an opponent who knows whether the die landed low
or high; we realise it both ways: as an :class:`ExplicitAssignment` (the
paper's presentation) and as ``S^j`` for a third agent ``p_3`` who observes
exactly the low/high bit (the betting-game reading).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Tuple

from ..core.assignments import ExplicitAssignment, SampleSpaceAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..systems.agents import Agent, FunctionAgent, IdleAgent, certainly, chance, act
from ..systems.synchronous import SyncProtocol, protocol_system
from ..trees.probabilistic_system import ProbabilisticSystem

P1, P2, P3 = 0, 1, 2


class _DieTosser(Agent):
    """Tosses a fair die at round 0 and remembers the face."""

    def initial_state(self, input_value):
        return "ready"

    def step(self, state, inbox, round_number: int):
        if round_number == 0 and state == "ready":
            return chance(
                [(Fraction(1, 6), act(("face", face))) for face in range(1, 7)]
            )
        return certainly(state)


def die_system() -> Tuple[ProbabilisticSystem, Fact]:
    """Three agents: p_1 tosses and sees the face; p_2 sees nothing; p_3
    sees the low/high half (told by p_1 over a perfect channel).  Returns
    the system and the fact "the die landed even"."""
    from ..systems.messages import Message

    class Tosser(Agent):
        def initial_state(self, input_value):
            return "ready"

        def step(self, state, inbox, round_number: int):
            if round_number == 0 and state == "ready":
                branches = []
                for face in range(1, 7):
                    half = "low" if face <= 3 else "high"
                    branches.append(
                        (
                            Fraction(1, 6),
                            act(("face", face), Message(P1, P3, half)),
                        )
                    )
                return chance(branches)
            return certainly(state)

    class HalfListener(Agent):
        def initial_state(self, input_value):
            return "waiting"

        def step(self, state, inbox, round_number: int):
            for message in inbox:
                return certainly(("heard", message.content))
            return certainly(state)

    protocol = SyncProtocol(
        agents=[Tosser(), IdleAgent(), HalfListener()], horizon=2
    )
    psys = protocol_system(protocol, {"only": [None, None, None]})
    even = Fact.about_local_state(
        P1,
        lambda local: local[0] != "ready" and local[0][1] % 2 == 0,
        name="die_even",
    )
    return psys, even


@dataclass
class DieAssignments:
    """The two sample-space assignments of the example, over time-2 points
    (when both the face and p_3's observation are in place)."""

    whole: SampleSpaceAssignment
    split: SampleSpaceAssignment
    time2_points: Tuple[Point, ...]


def die_assignments(psys: ProbabilisticSystem) -> DieAssignments:
    """Build ``S^1`` (one space of all six points) and ``S^2`` (the
    low/high split) explicitly, as the paper presents them."""
    time2 = tuple(
        sorted(
            (point for point in psys.system.points if point.time == 2),
            key=lambda point: repr(point.global_state),
        )
    )

    def face_of(point: Point) -> int:
        return point.local_state(P1)[0][1]

    low = frozenset(point for point in time2 if face_of(point) <= 3)
    high = frozenset(point for point in time2 if face_of(point) > 3)
    whole_table: Dict[tuple, frozenset] = {}
    split_table: Dict[tuple, frozenset] = {}
    for point in time2:
        whole_table[(P2, point)] = frozenset(time2)
        split_table[(P2, point)] = low if point in low else high
    whole = ExplicitAssignment(psys, whole_table, name="S1-whole")
    split = ExplicitAssignment(psys, split_table, name="S2-split")
    return DieAssignments(whole, split, time2)
