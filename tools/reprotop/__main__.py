"""Entry point for ``python -m tools.reprotop``."""

import sys

from .cli import main

sys.exit(main())
