"""Module entry point: ``python -m tools.tracediff``."""

import sys

from .cli import main

sys.exit(main())
