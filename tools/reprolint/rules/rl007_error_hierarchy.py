"""RL007 — raised non-builtin exceptions must be ReproError subclasses."""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional, Set

from ..model import Module, Violation
from ..registry import Rule, register

#: Every exception type the Python builtins export.  Raising these is
#: allowed everywhere: ValueError for bad arguments, TypeError for bad
#: types, NotImplementedError for abstract methods are ordinary Python.
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
)


@register
class ErrorHierarchyRule(Rule):
    rule_id = "RL007"
    title = "raise only builtins or ReproError subclasses"
    rationale = """\
Callers of the library are promised one catchable root: every
domain-specific failure -- a REQ2 violation (Section 5), a broken
technical assumption (Section 3), an exhausted sweep retry -- derives
from repro.errors.ReproError, so `except ReproError` is a complete
handler for "the reproduction rejected this input".  A module inventing
its own exception class outside the hierarchy silently breaks that
contract: the new error sails past every existing handler and turns a
structured domain failure into an anonymous crash.  Raise a builtin for
ordinary Python misuse, or a class exported by (or locally derived from)
repro.errors for domain failures; genuinely external exception types can
be waived per line with `# reprolint: disable=RL007`."""

    def check(self, module: Module) -> Iterator[Violation]:
        allowed = _allowed_exception_names(module)
        local_classes = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = _raised_name(node.exc, local_classes)
            if name is None:
                # A re-raised variable, attribute access, or computed
                # expression: not statically resolvable, so not judged.
                continue
            if name in BUILTIN_EXCEPTIONS or name in allowed:
                continue
            yield self.violation(
                module, node,
                f"raises '{name}', which is neither a builtin exception "
                "nor a ReproError subclass imported from repro.errors "
                "(or locally derived from one); domain failures must stay "
                "inside the repro.errors hierarchy",
            )


def _raised_name(exc: ast.expr, local_classes: Set[str]) -> Optional[str]:
    """The exception class name of a ``raise`` operand, if resolvable.

    ``raise Name(...)`` names the class being raised; a bare ``raise
    name`` is only judged when ``name`` is statically known to be a
    class (a builtin exception or a module-level ``class``) -- otherwise
    it is a re-raised instance variable, which this rule cannot resolve.
    """
    if isinstance(exc, ast.Call):
        func = exc.func
        return func.id if isinstance(func, ast.Name) else None
    if isinstance(exc, ast.Name) and (
        exc.id in BUILTIN_EXCEPTIONS or exc.id in local_classes
    ):
        return exc.id
    return None


def _allowed_exception_names(module: Module) -> Set[str]:
    """Names this module may raise beyond the builtins.

    Seeds the set with every name imported from the project ``errors``
    module (``from ..errors import X`` / ``from repro.errors import X``),
    then closes over local ``class`` definitions whose bases chain back
    into the set -- so a module-local ``class MyError(ReproError)`` is
    itself raisable.  Inside ``errors.py`` every locally-defined class is
    allowed by the same fixpoint, rooted at the builtin ``Exception``.
    """
    allowed: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and _targets_errors_module(node, module):
            for alias in node.names:
                allowed.add(alias.asname or alias.name)
    # Only the errors module itself may root new classes at the builtin
    # Exception -- that is where ReproError is born.  Everywhere else a
    # local class must chain back to an imported repro.errors name, or
    # `class MyError(Exception)` would smuggle a parallel hierarchy in.
    roots = allowed | (BUILTIN_EXCEPTIONS if _is_errors_module(module) else set())
    class_defs = [
        node for node in ast.walk(module.tree) if isinstance(node, ast.ClassDef)
    ]
    changed = True
    while changed:
        changed = False
        for node in class_defs:
            if node.name in roots:
                continue
            for base in node.bases:
                base_name = base.id if isinstance(base, ast.Name) else None
                if base_name is not None and base_name in roots:
                    roots.add(node.name)
                    allowed.add(node.name)
                    changed = True
                    break
    return allowed


def _is_errors_module(module: Module) -> bool:
    return module.rel_parts[-1] == "errors" or (
        len(module.rel_parts) > 1 and module.rel_parts[0] == "errors"
    )


def _targets_errors_module(node: ast.ImportFrom, module: Module) -> bool:
    """True iff an ImportFrom pulls names from the project errors module.

    ``repro.errors`` is always recognised, whatever package the importer
    lives in: the repository tooling under ``tools/`` consumes the same
    hierarchy (it is part of the sanctioned read-only surface, RL002).
    """
    if node.level == 0:
        return node.module in (f"{module.root_package}.errors", "repro.errors")
    return node.module == "errors"
