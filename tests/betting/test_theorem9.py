"""Theorem 9: interval monotonicity along the lattice, with strictness."""

from fractions import Fraction

import pytest

from repro.betting import theorem9_witness, verify_theorem9_part_a
from repro.core import (
    Fact,
    FutureAssignment,
    OpponentAssignment,
    PostAssignment,
    ProbabilityAssignment,
    standard_assignments,
)
from repro.examples_lib import three_agent_coin_system
from repro.logic import state_generated_valuation
from repro.testing import parity_fact, random_psys


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def coin_facts(coin):
    base = [coin.heads, ~coin.heads]
    base.extend(state_generated_valuation(coin.psys.system).values())
    return base


class TestPartA:
    def test_fut_vs_post(self, coin, coin_facts):
        named = standard_assignments(coin.psys)
        report = verify_theorem9_part_a(named["fut"], named["post"], coin_facts)
        assert report.holds, report.details

    def test_fut_vs_opp(self, coin, coin_facts):
        lower = ProbabilityAssignment(FutureAssignment(coin.psys))
        higher = ProbabilityAssignment(OpponentAssignment(coin.psys, 1))
        report = verify_theorem9_part_a(lower, higher, coin_facts)
        assert report.holds, report.details

    def test_opp_vs_post(self, coin, coin_facts):
        lower = ProbabilityAssignment(OpponentAssignment(coin.psys, 2))
        higher = ProbabilityAssignment(PostAssignment(coin.psys))
        report = verify_theorem9_part_a(lower, higher, coin_facts)
        assert report.holds, report.details

    def test_random_system_chain(self):
        psys = random_psys(seed=51, depth=2, observability=("parity", "full"))
        lower = ProbabilityAssignment(FutureAssignment(psys))
        higher = ProbabilityAssignment(PostAssignment(psys))
        facts = [parity_fact(), ~parity_fact()]
        facts.extend(list(state_generated_valuation(psys.system).values())[:10])
        report = verify_theorem9_part_a(lower, higher, facts)
        assert report.holds, report.details

    def test_interval_containment_explicit(self, coin):
        named = standard_assignments(coin.psys)
        c = coin.psys.system.points_at_time(1)[0]
        low_interval = named["fut"].knowledge_interval(0, c, coin.heads)
        high_interval = named["post"].knowledge_interval(0, c, coin.heads)
        assert low_interval == (Fraction(0), Fraction(1))
        assert high_interval == (Fraction(1, 2), Fraction(1, 2))


class TestPartB:
    def test_witness_fut_post(self, coin):
        named = standard_assignments(coin.psys)
        witness = theorem9_witness(named["fut"], named["post"])
        assert witness is not None
        assert witness.alpha_high > witness.alpha_low
        # the witness instantiates the theorem's displayed non-implication:
        # K^[alpha_high, 1] holds under P' but not under P.
        assert named["post"].knows_probability_interval(
            witness.agent, witness.point, witness.fact, witness.alpha_high, 1
        )
        assert not named["fut"].knows_probability_interval(
            witness.agent, witness.point, witness.fact, witness.alpha_high, 1
        )

    def test_witness_negation_direction(self, coin):
        # the dual strictness: K^[0, beta'] !phi under P' but not under P
        named = standard_assignments(coin.psys)
        witness = theorem9_witness(named["fut"], named["post"])
        beta = 1 - witness.alpha_high
        assert named["post"].knows_probability_interval(
            witness.agent, witness.point, ~witness.fact, 0, beta
        )
        assert not named["fut"].knows_probability_interval(
            witness.agent, witness.point, ~witness.fact, 0, beta
        )

    def test_no_witness_for_equal_assignments(self, coin):
        lower = ProbabilityAssignment(PostAssignment(coin.psys))
        higher = ProbabilityAssignment(PostAssignment(coin.psys))
        assert theorem9_witness(lower, higher) is None

    def test_witness_random_system(self):
        psys = random_psys(seed=52, depth=2, observability=("clock", "full"))
        lower = ProbabilityAssignment(FutureAssignment(psys))
        higher = ProbabilityAssignment(PostAssignment(psys))
        witness = theorem9_witness(lower, higher)
        assert witness is not None
        assert witness.alpha_high > witness.alpha_low
