"""Concrete-syntax parser for L(Phi)."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.logic import (
    FALSE,
    TRUE,
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnows,
    EveryoneKnowsProb,
    Iff,
    Implies,
    Knows,
    Next,
    Not,
    Or,
    PrAtLeast,
    PrAtMost,
    Prop,
    Until,
    knows_prob_at_least,
    knows_prob_interval,
    parse,
)


class TestAtoms:
    def test_proposition(self):
        assert parse("heads") == Prop("heads")

    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_parentheses(self):
        assert parse("(heads)") == Prop("heads")


class TestBoolean:
    def test_negation(self):
        assert parse("!p") == Not(Prop("p"))

    def test_and_or_precedence(self):
        assert parse("p & q | r") == Or(And(Prop("p"), Prop("q")), Prop("r"))

    def test_implies_right_assoc(self):
        assert parse("p -> q -> r") == Implies(
            Prop("p"), Implies(Prop("q"), Prop("r"))
        )

    def test_iff(self):
        assert parse("p <-> q") == Iff(Prop("p"), Prop("q"))

    def test_double_negation(self):
        assert parse("!!p") == Not(Not(Prop("p")))


class TestModal:
    def test_knows(self):
        assert parse("K0 p") == Knows(0, Prop("p"))

    def test_knows_binds_tight(self):
        assert parse("K1 p & q") == And(Knows(1, Prop("p")), Prop("q"))

    def test_knows_prob_superscript(self):
        assert parse("K0^1/2 p") == knows_prob_at_least(0, "1/2", Prop("p"))

    def test_knows_prob_decimal(self):
        assert parse("K2^0.99 p") == knows_prob_at_least(2, "0.99", Prop("p"))

    def test_knows_interval(self):
        assert parse("K0^[1/3,2/3] p") == knows_prob_interval(
            0, "1/3", "2/3", Prop("p")
        )

    def test_pr_at_least(self):
        assert parse("Pr0(p) >= 1/2") == PrAtLeast(0, Prop("p"), Fraction(1, 2))

    def test_pr_at_most(self):
        assert parse("Pr1(p) <= 0.25") == PrAtMost(1, Prop("p"), Fraction(1, 4))

    def test_pr_of_compound(self):
        formula = parse("Pr0(p & q) >= 1")
        assert formula == PrAtLeast(0, And(Prop("p"), Prop("q")), Fraction(1))

    def test_nested_knowledge(self):
        assert parse("K0 K1 p") == Knows(0, Knows(1, Prop("p")))


class TestGroup:
    def test_everyone(self):
        assert parse("E{0,1} p") == EveryoneKnows((0, 1), Prop("p"))

    def test_common(self):
        assert parse("C{0,1} p") == CommonKnows((0, 1), Prop("p"))

    def test_everyone_prob(self):
        assert parse("E{0,1}^0.99 p") == EveryoneKnowsProb((0, 1), "0.99", Prop("p"))

    def test_common_prob(self):
        assert parse("C{0,1}^99/100 p") == CommonKnowsProb(
            (0, 1), Fraction(99, 100), Prop("p")
        )


class TestTemporal:
    def test_next(self):
        assert parse("X p") == Next(Prop("p"))

    def test_until_right_assoc(self):
        assert parse("p U q U r") == Until(Prop("p"), Until(Prop("q"), Prop("r")))

    def test_eventually_globally(self):
        assert parse("F p") == parse("true U p")
        assert parse("G p") == Not(parse("true U !p"))

    def test_temporal_in_boolean(self):
        assert parse("X p & q") == And(Next(Prop("p")), Prop("q"))


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "p &",
            "(p",
            "p)",
            "Pr0(p) >",
            "Pr0(p) >= ",
            "K p",
            "E{0,1 p",
            "p ? q",
            "Pr0 p >= 1/2",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_pr_requires_comparison(self):
        with pytest.raises(ParseError):
            parse("Pr0(p) = 1/2")
