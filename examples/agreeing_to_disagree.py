#!/usr/bin/env python3
"""Aumann agreement and the announcement dialogue (Appendix B.3's coda).

The appendix closes by invoking Aumann: if the betting dialogue runs until
the odds stabilise, both parties must assign the fact the same probability
-- rational agents cannot agree to disagree.  We check the theorem itself
on a system time slice, then run the announcement dialogue that realises
the convergence.

Run:  python examples/agreeing_to_disagree.py
"""

from repro.core import agreement_dialogue, aumann_agreement
from repro.examples_lib import three_agent_coin_system
from repro.probability import format_fraction
from repro.testing import parity_fact, random_psys


def coin_demo() -> None:
    print("--- the coin: informed p3 vs ignorant p1 ---")
    example = three_agent_coin_system()
    tree = example.psys.trees[0]

    report = aumann_agreement(example.psys, tree, 1, (0, 1, 2), example.heads)
    print(f"Aumann's theorem on the time-1 slice: holds = {report.holds} "
          f"({report.meet_cells} meet cell(s))")
    print("note: p1 (1/2) and p3 (0 or 1) hold different posteriors -- no")
    print("contradiction, because the posterior profile is NOT common knowledge.")
    print()

    heads_point = next(
        point
        for point in example.psys.system.points_at_time(1)
        if example.heads.holds_at(point)
    )
    result = agreement_dialogue(
        example.psys, tree, 1, (2, 0), example.heads, heads_point
    )
    print("announcement dialogue between p3 and p1 at the heads point:")
    for index, round_ in enumerate(result.rounds):
        print(f"  round {index}: p{round_.speaker + 1} announces "
              f"Pr(heads) = {format_fraction(round_.announced)}")
    finals = {f"p{agent + 1}": format_fraction(value)
              for agent, value in result.final_posteriors.items()}
    print(f"  final posteriors: {finals}  agreed = {result.agreed}")
    print()


def random_demo() -> None:
    print("--- a richer random system ---")
    psys = random_psys(seed=7, depth=2, observability=("full", "full"))
    tree = psys.trees[0]
    fact = parity_fact()
    start = [point for point in tree.points if point.time == 1][0]
    result = agreement_dialogue(psys, tree, 1, (0, 1), fact, start)
    for index, round_ in enumerate(result.rounds):
        print(f"  round {index}: p{round_.speaker + 1} announces "
              f"{format_fraction(round_.announced)}; partition sizes "
              f"{round_.partitions_after}")
    print(f"  agreed = {result.agreed}")


def main() -> None:
    coin_demo()
    random_demo()


if __name__ == "__main__":
    main()
