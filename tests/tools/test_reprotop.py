"""The reprotop monitor: trace folding, checkpoint counting, CLI modes."""

import json
import sys
from fractions import Fraction
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from repro.attack.sweep import sweep_row_of, sweep_tasks  # noqa: E402
from repro.errors import TraceError  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRecorder,
    MultiRecorder,
    TraceRecorder,
    read_trace,
    use_recorder,
    write_snapshot,
)
from repro.probability import reset_kernel_totals  # noqa: E402
from repro.robustness import run_tasks  # noqa: E402

from tools.reprotop import (  # noqa: E402
    SweepMonitor,
    checkpoint_status,
    render_status,
    snapshot_status,
)
from tools.reprotop.cli import _TraceTail, main as cli_main  # noqa: E402

MESSENGERS = [1, 2]
LOSSES = [Fraction(1, 2)]


def make_artifacts(tmp_path, max_workers=1):
    """One instrumented sweep; returns (trace path, metrics path, task count)."""
    reset_kernel_totals()
    tasks = sweep_tasks(MESSENGERS, LOSSES)
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.jsonl"
    metrics = MetricsRecorder()
    trace = TraceRecorder(trace_path)
    with use_recorder(MultiRecorder([metrics, trace])):
        run_tasks(
            sweep_row_of,
            tasks,
            max_workers=max_workers,
            progress_every=1,
            sleep=lambda _seconds: None,
        )
    trace.close()
    write_snapshot(metrics_path, metrics=metrics, label="after sweep")
    return trace_path, metrics_path, len(tasks)


class TestSweepMonitor:
    def test_folds_progress_attempts_and_cache(self, tmp_path):
        trace_path, _metrics, total = make_artifacts(tmp_path)
        monitor = SweepMonitor()
        monitor.feed_all(read_trace(trace_path))
        status = monitor.status()
        assert status["done"] == total
        assert status["total"] == total
        assert status["percent"] == 100.0
        assert status["retries"] == 0
        assert status["finished"] is True
        assert status["retry_histogram"] == {1: total}
        assert status["outcomes"] == {"ok": total}
        # Serial run: cache stats come from the cache_stats events.
        assert status["cache"]["hits"] + status["cache"]["misses"] > 0
        assert 0 <= status["cache"]["hit_rate"] <= 1

    def test_empty_monitor_reports_unknowns(self):
        status = SweepMonitor().status()
        assert status["done"] is None
        assert status["total"] is None
        assert status["finished"] is False
        assert status["cache"]["hit_rate"] is None

    def test_render_mentions_every_section(self, tmp_path):
        trace_path, _metrics, total = make_artifacts(tmp_path)
        monitor = SweepMonitor()
        monitor.feed_all(read_trace(trace_path))
        text = render_status(monitor.status())
        assert "Sweep progress" in text
        assert "Measure-kernel cache" in text
        assert "sweep complete" in text


class TestCheckpointStatus:
    def test_counts_rows(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        rows = [{"index": i, "row": {"p": "1/2"}} for i in range(4)]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert checkpoint_status(str(path)) == 4

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            json.dumps({"index": 0}) + "\n" + json.dumps({"index": 1})[:-3]
        )
        assert checkpoint_status(str(path)) == 1

    def test_garbage_before_the_end_is_fatal(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text("{torn\n" + json.dumps({"index": 0}) + "\n")
        with pytest.raises(TraceError):
            checkpoint_status(str(path))


class TestSnapshotStatus:
    def test_lifts_snapshot_with_progress(self, tmp_path):
        from repro.obs import read_snapshot

        _trace, metrics_path, total = make_artifacts(tmp_path)
        snapshot = read_snapshot(metrics_path)
        status = snapshot_status(snapshot, done=total, total=total)
        assert status["done"] == total
        assert status["finished"] is True
        assert status["retries"] == 0
        assert status["snapshot_label"] == "after sweep"
        assert status["cache"]["hits"] + status["cache"]["misses"] > 0


class TestTraceTail:
    def test_holds_back_partial_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        header = json.dumps({"type": "header", "schema": "repro-trace/1"})
        counter = json.dumps({"type": "counter", "name": "a", "value": 1})
        path.write_text(header + "\n" + counter[:5])
        tail = _TraceTail(str(path))
        assert [r["type"] for r in tail.poll()] == ["header"]
        # Completing the line surfaces the record on the next poll.
        with open(path, "a") as handle:
            handle.write(counter[5:] + "\n")
        assert [r["name"] for r in tail.poll()] == ["a"]
        assert tail.poll() == []

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "counter"}\n')
        with pytest.raises(TraceError):
            _TraceTail(str(path)).poll()


class TestCli:
    def test_once_json_on_trace(self, tmp_path, capsys):
        trace_path, _metrics, total = make_artifacts(tmp_path)
        assert cli_main(["--once", "--json", str(trace_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == total
        assert payload["finished"] is True

    def test_checkpoint_plus_metrics(self, tmp_path, capsys):
        _trace, metrics_path, total = make_artifacts(tmp_path)
        ckpt = tmp_path / "ckpt.jsonl"
        ckpt.write_text(
            "".join(json.dumps({"index": i}) + "\n" for i in range(total))
        )
        code = cli_main(
            [
                "--once",
                "--json",
                "--checkpoint",
                str(ckpt),
                "--metrics",
                str(metrics_path),
                "--total",
                str(total),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == total
        assert payload["finished"] is True
        assert payload["snapshot_label"] == "after sweep"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert cli_main(["--once", str(tmp_path / "nope.jsonl")]) == 2
        assert "reprotop" in capsys.readouterr().err

    def test_wrong_schema_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "schema": "repro-metrics/1"}\n')
        assert cli_main(["--once", str(path)]) == 2
        assert "repro-trace/1" in capsys.readouterr().err

    def test_wrong_metrics_schema_exits_2(self, tmp_path, capsys):
        trace_path, _metrics, _total = make_artifacts(tmp_path)
        ckpt = tmp_path / "ckpt.jsonl"
        ckpt.write_text(json.dumps({"index": 0}) + "\n")
        code = cli_main(
            ["--once", "--checkpoint", str(ckpt), "--metrics", str(trace_path)]
        )
        assert code == 2
        assert "repro-metrics/1" in capsys.readouterr().err

    def test_requires_exactly_one_input(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--once"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--once", "t.jsonl", "--checkpoint", "c.jsonl"])
        assert excinfo.value.code == 2
