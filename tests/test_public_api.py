"""Public-API hygiene: exports resolve, and every public item is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.probability",
    "repro.core",
    "repro.trees",
    "repro.logic",
    "repro.betting",
    "repro.systems",
    "repro.attack",
    "repro.examples_lib",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} in __all__ but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and package.__doc__.strip()


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        item = getattr(package, name)
        if inspect.isfunction(item) or inspect.isclass(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_classes_have_documented_public_methods():
    undocumented = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            item = getattr(package, name)
            if not inspect.isclass(item):
                continue
            for method_name, method in inspect.getmembers(item, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != item.__name__:
                    continue  # inherited from elsewhere
                if method.__doc__ and method.__doc__.strip():
                    continue
                # overrides inherit the contract documented on a base class
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in item.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{package_name}.{name}.{method_name}")
    assert not undocumented, f"undocumented public methods: {sorted(set(undocumented))}"


def test_no_duplicate_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exports = getattr(package, "__all__", [])
        assert len(exports) == len(set(exports)), f"duplicates in {package_name}.__all__"
