"""Break-even and safety, enumerated and analytic."""

from fractions import Fraction

import pytest

from repro.betting import (
    BettingRule,
    Strategy,
    breaks_even,
    breaks_even_analytic,
    breaks_even_with,
    constant_strategy,
    enumerate_strategies,
    expected_winnings,
    is_safe,
    is_safe_analytic,
    opponent_states,
    refuting_strategy,
    targeted_strategy,
    worst_expected_winnings,
)
from repro.core import opponent_assignment, PostAssignment, ProbabilityAssignment
from repro.examples_lib import repeated_coin_system, three_agent_coin_system


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def against_p2(coin):
    return opponent_assignment(coin.psys, 1)


@pytest.fixture(scope="module")
def against_p3(coin):
    return opponent_assignment(coin.psys, 2)


@pytest.fixture(scope="module")
def c1(coin):
    return coin.psys.system.points_at_time(1)[0]


HALF = Fraction(1, 2)


class TestExpectedWinnings:
    def test_exact_semantics(self, coin, against_p2, c1):
        rule = BettingRule(coin.heads, HALF)
        space = against_p2.space(0, c1)
        value = expected_winnings(space, rule.winnings(constant_strategy(1, 2)), "exact")
        assert value == 0

    def test_lower_semantics_on_nonmeasurable(self):
        example = repeated_coin_system(2)
        post = ProbabilityAssignment(PostAssignment(example.psys))
        point = example.psys.system.points[0]
        space = post.space(0, point)
        rule = BettingRule(example.most_recent_heads, HALF)
        winnings = rule.winnings(constant_strategy(1, 2))
        lower = expected_winnings(space, winnings, "lower")
        upper = expected_winnings(space, winnings, "upper")
        auto = expected_winnings(space, winnings, "auto")
        assert lower <= upper
        assert auto == lower  # auto falls back to the conservative bound

    def test_unknown_semantics_rejected(self, against_p2, coin, c1):
        rule = BettingRule(coin.heads, HALF)
        with pytest.raises(ValueError):
            expected_winnings(
                against_p2.space(0, c1), rule.winnings(constant_strategy(1, 2)), "vibes"
            )


class TestBreakEven:
    def test_fair_bet_breaks_even_against_p2(self, coin, against_p2, c1):
        rule = BettingRule(coin.heads, HALF)
        assert breaks_even_with(against_p2, 0, c1, rule, constant_strategy(1, 2))

    def test_selective_p3_strategy_loses_money(self, coin, against_p3, c1):
        rule = BettingRule(coin.heads, HALF)
        tails_local = next(
            point.local_state(2)
            for point in coin.psys.system.points_at_time(1)
            if not coin.heads.holds_at(point)
        )
        sneaky = Strategy(2, {tails_local: Fraction(2)})
        tails_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if not coin.heads.holds_at(point)
        )
        assert not breaks_even_with(against_p3, 0, tails_point, rule, sneaky)

    def test_breaks_even_over_family(self, coin, against_p2, c1):
        rule = BettingRule(coin.heads, HALF)
        locals_ = opponent_states(coin.psys.system, 1, coin.psys.system.points_at_time(1))
        family = list(enumerate_strategies(1, locals_, [Fraction(2), Fraction(3)]))
        assert breaks_even(against_p2, 0, c1, rule, family)

    def test_analytic_matches_inner_probability(self, coin, against_p2, against_p3, c1):
        assert breaks_even_analytic(against_p2, 0, c1, coin.heads, HALF)
        heads_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if coin.heads.holds_at(point)
        )
        tails_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if not coin.heads.holds_at(point)
        )
        assert breaks_even_analytic(against_p3, 0, heads_point, coin.heads, HALF)
        assert not breaks_even_analytic(against_p3, 0, tails_point, coin.heads, HALF)


class TestSafety:
    def test_safe_against_p2_unsafe_against_p3(self, coin, against_p2, against_p3, c1):
        rule = BettingRule(coin.heads, HALF)
        locals3 = opponent_states(coin.psys.system, 2, coin.psys.system.points)
        family3 = list(enumerate_strategies(2, locals3, [Fraction(2)]))
        locals2 = opponent_states(coin.psys.system, 1, coin.psys.system.points)
        family2 = list(enumerate_strategies(1, locals2, [Fraction(2)]))
        assert is_safe(against_p2, 0, c1, rule, family2)
        assert not is_safe(against_p3, 0, c1, rule, family3)

    def test_analytic_agrees(self, coin, against_p2, against_p3, c1):
        assert is_safe_analytic(against_p2, 0, c1, coin.heads, HALF)
        assert not is_safe_analytic(against_p3, 0, c1, coin.heads, HALF)

    def test_worst_expected_winnings(self, coin, against_p3, c1):
        rule = BettingRule(coin.heads, HALF)
        locals3 = opponent_states(coin.psys.system, 2, coin.psys.system.points)
        family = list(enumerate_strategies(2, locals3, [Fraction(2)]))
        tails_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if not coin.heads.holds_at(point)
        )
        assert worst_expected_winnings(against_p3, 0, tails_point, rule, family) < 0


class TestRefutingStrategy:
    def test_none_when_safe(self, coin, against_p2, c1):
        assert refuting_strategy(against_p2, 0, 1, c1, coin.heads, HALF) is None

    def test_witness_when_unsafe(self, coin, against_p3, c1):
        rule = BettingRule(coin.heads, HALF)
        witness = refuting_strategy(against_p3, 0, 2, c1, coin.heads, HALF)
        assert witness is not None
        # the witness indeed loses money at some point the agent considers possible
        losses = [
            expected_winnings(against_p3.space(0, d), rule.winnings(witness))
            for d in coin.psys.system.knowledge_set(0, c1)
        ]
        assert min(losses) < 0


class TestSafetyCertificate:
    def test_safe_certificate_carries_checked_witness(self, coin, against_p2, c1):
        from repro.betting import safety_certificate

        certificate = safety_certificate(against_p2, 0, 1, c1, coin.heads, HALF)
        assert certificate.safe
        assert certificate.safe == is_safe_analytic(
            against_p2, 0, c1, coin.heads, HALF
        )
        assert certificate.min_inner >= HALF
        assert certificate.counterexample is None
        assert certificate.refutation is None
        # the witness event's measure really is the inner bound at the
        # minimising candidate (Theorem 7's quantity, re-derived)
        space = against_p2.space(0, certificate.minimising_candidate)
        assert space.measure(certificate.witness_event) == certificate.witness_measure
        assert certificate.witness_measure == certificate.min_inner

    def test_unsafe_certificate_carries_refutation(self, coin, against_p3, c1):
        from repro.betting import BettingRule, safety_certificate

        certificate = safety_certificate(against_p3, 0, 2, c1, coin.heads, HALF)
        assert not certificate.safe
        assert certificate.min_inner < HALF
        assert certificate.witness_event is None
        assert certificate.counterexample is not None
        # the counterexample is the first failing candidate in index order
        index = coin.psys.point_index
        ordered = sorted(
            coin.psys.system.knowledge_set(0, c1), key=index.position
        )
        first_failing = next(
            d
            for d in ordered
            if against_p3.inner_probability(0, d, coin.heads) < HALF
        )
        assert certificate.counterexample == first_failing
        # and the recorded refutation really wins money off the agent there
        rule = BettingRule(coin.heads, HALF)
        losses = [
            expected_winnings(
                against_p3.space(0, d), rule.winnings(certificate.refutation)
            )
            for d in coin.psys.system.knowledge_set(0, c1)
        ]
        assert min(losses) < 0

    def test_candidates_enumerate_knowledge_set_in_index_order(
        self, coin, against_p2, c1
    ):
        from repro.betting import safety_certificate

        certificate = safety_certificate(against_p2, 0, 1, c1, coin.heads, HALF)
        index = coin.psys.point_index
        listed = [candidate for candidate, _ in certificate.candidates]
        assert listed == sorted(
            coin.psys.system.knowledge_set(0, c1), key=index.position
        )
        assert min(inner for _, inner in certificate.candidates) == (
            certificate.min_inner
        )
