"""Whole-program rules (RL009-RL012).

Importing this package populates :data:`~tools.reproflow.rules.base.FLOW_REGISTRY`.
"""

from . import (  # noqa: F401
    rl009_determinism,
    rl010_exactness_taint,
    rl011_pickle_safety,
    rl012_contract_drift,
)
from .base import FLOW_REGISTRY, FlowRule, register

__all__ = ["FLOW_REGISTRY", "FlowRule", "register"]
