"""The language ``L(Phi)`` of knowledge, probability, and linear time.

Section 5 fixes a set ``Phi`` of primitive propositions and closes under
boolean connectives, the knowledge operators ``K_i``, probability formulas
``Pr_i(phi) >= alpha``, and the temporal operators *next* and *until*.
Derived forms -- ``K_i^alpha``, ``K_i^[alpha,beta]``, *eventually*,
*henceforth*, ``E_G``, ``C_G`` and their probabilistic versions -- are
provided as constructors so formulas stay readable.

Formulas are immutable, hashable dataclasses; the model checker memoises on
them directly.  Agent indices are 0-based (the paper's ``p_1`` is agent 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Tuple

from ..probability.fractionutil import ONE, as_fraction


class Formula:
    """Base class for formulas of ``L(Phi)``."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class Prop(Formula):
    """A primitive proposition, interpreted by the model's valuation."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ``true``."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ``false``."""

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    sub: Formula

    def __str__(self) -> str:
        return f"!{self.sub}"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Material implication."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Iff(Formula):
    """Material biconditional (``phi_CA`` is one of these)."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


@dataclass(frozen=True)
class Knows(Formula):
    """``K_i phi``: true at ``c`` iff ``phi`` holds throughout ``K_i(c)``."""

    agent: int
    sub: Formula

    def __str__(self) -> str:
        return f"K{self.agent} {self.sub}"


@dataclass(frozen=True)
class PrAtLeast(Formula):
    """``Pr_i(phi) >= alpha``: inner measure of ``S_ic(phi)`` at least alpha.

    Section 5: the inner measure is the best lower bound on the probability
    of a possibly non-measurable fact, and is the paper's semantics for the
    probability operator.
    """

    agent: int
    sub: Formula
    alpha: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "alpha", as_fraction(self.alpha))

    def __str__(self) -> str:
        return f"Pr{self.agent}({self.sub}) >= {self.alpha}"


@dataclass(frozen=True)
class PrAtMost(Formula):
    """``Pr_i(phi) <= beta``, i.e. ``Pr_i(!phi) >= 1 - beta``.

    By inner/outer duality this says the *outer* measure of ``S_ic(phi)``
    is at most ``beta`` -- exactly the second conjunct of ``K_i^[a,b]``.
    """

    agent: int
    sub: Formula
    beta: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "beta", as_fraction(self.beta))

    def __str__(self) -> str:
        return f"Pr{self.agent}({self.sub}) <= {self.beta}"


@dataclass(frozen=True)
class Next(Formula):
    """``o phi``: true at ``(r,k)`` iff ``phi`` holds at ``(r,k+1)``.

    Finite-horizon semantics: at a run's last point, the successor is the
    point itself (end-stuttering; see :meth:`repro.core.model.Run.state`).
    """

    sub: Formula

    def __str__(self) -> str:
        return f"X {self.sub}"


@dataclass(frozen=True)
class Until(Formula):
    """``phi U psi``: ``psi`` eventually holds and ``phi`` holds until then."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


# ----------------------------------------------------------------------
# Group operators (Section 8)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EveryoneKnows(Formula):
    """``E_G phi``: every agent in the group knows ``phi``."""

    group: Tuple[int, ...]
    sub: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))

    def __str__(self) -> str:
        return f"E{set(self.group)} {self.sub}"


@dataclass(frozen=True)
class CommonKnows(Formula):
    """``C_G phi``: the greatest fixed point of ``X == E_G(phi & X)``."""

    group: Tuple[int, ...]
    sub: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))

    def __str__(self) -> str:
        return f"C{set(self.group)} {self.sub}"


@dataclass(frozen=True)
class EveryoneKnowsProb(Formula):
    """``E_G^alpha phi``: every group member satisfies ``K_i^alpha phi``."""

    group: Tuple[int, ...]
    alpha: Fraction
    sub: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))
        object.__setattr__(self, "alpha", as_fraction(self.alpha))

    def __str__(self) -> str:
        return f"E^{self.alpha}{set(self.group)} {self.sub}"


@dataclass(frozen=True)
class CommonKnowsProb(Formula):
    """``C_G^alpha phi``: greatest fixed point of ``X == E_G^alpha(phi & X)``.

    This is Fagin and Halpern's probabilistic common knowledge, the notion
    Section 8 uses to specify probabilistic coordinated attack.
    """

    group: Tuple[int, ...]
    alpha: Fraction
    sub: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))
        object.__setattr__(self, "alpha", as_fraction(self.alpha))

    def __str__(self) -> str:
        return f"C^{self.alpha}{set(self.group)} {self.sub}"


# ----------------------------------------------------------------------
# Derived constructors
# ----------------------------------------------------------------------


def eventually(sub: Formula) -> Formula:
    """``<> phi  ==  true U phi``."""
    return Until(TRUE, sub)


def henceforth(sub: Formula) -> Formula:
    """``[] phi  ==  !<>!phi``."""
    return Not(eventually(Not(sub)))


def knows_prob_at_least(agent: int, alpha, sub: Formula) -> Formula:
    """``K_i^alpha phi  ==  K_i(Pr_i(phi) >= alpha)`` (Section 5)."""
    return Knows(agent, PrAtLeast(agent, sub, as_fraction(alpha)))


def knows_prob_interval(agent: int, alpha, beta, sub: Formula) -> Formula:
    """``K_i^[a,b] phi == K_i[(Pr_i(phi) >= a) & (Pr_i(!phi) >= 1-b)]``."""
    return Knows(
        agent,
        And(
            PrAtLeast(agent, sub, as_fraction(alpha)),
            PrAtMost(agent, sub, as_fraction(beta)),
        ),
    )


def certainty(agent: int, sub: Formula) -> Formula:
    """``Pr_i(phi) = 1`` -- the consistency axiom's consequent."""
    return PrAtLeast(agent, sub, ONE)


def subformulas(formula: Formula):
    """Yield the formula and all its subformulas (pre-order)."""
    yield formula
    for attribute in ("sub", "left", "right"):
        child = getattr(formula, attribute, None)
        if isinstance(child, Formula):
            yield from subformulas(child)


def formula_depth(formula: Formula) -> int:
    """The operator-nesting depth of a formula."""
    children = [
        getattr(formula, attribute)
        for attribute in ("sub", "left", "right")
        if isinstance(getattr(formula, attribute, None), Formula)
    ]
    if not children:
        return 0
    return 1 + max(formula_depth(child) for child in children)
