"""Plain-text table rendering for the benchmark harness.

Every experiment bench regenerates one of the paper's worked results and
prints it as a table; this module keeps the formatting in one place so the
tables in ``bench_output.txt`` and EXPERIMENTS.md stay consistent.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence

from .probability.fractionutil import format_fraction


def render_cell(value) -> str:
    """Format one table cell: exact fractions, booleans, plain text."""
    if isinstance(value, Fraction):
        return format_fraction(value)
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, tuple) and all(isinstance(item, Fraction) for item in value):
        return "[" + ", ".join(format_fraction(item) for item in value) + "]"
    return str(value)


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a titled, width-aligned plain-text table."""
    rendered_rows: List[List[str]] = [[render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [line(list(headers)), separator]
    body.extend(line(row) for row in rendered_rows)
    return f"== {title} ==\n" + "\n".join(body)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render, print, and return a table (benches print for the tee'd log)."""
    text = render_table(title, headers, rows)
    print("\n" + text)
    return text
