"""Runs, points, global states, systems, knowledge (Section 2)."""

import pytest

from repro.core import GlobalState, Point, Run, System
from repro.errors import ModelError, SynchronyError


def make_run(*locals_sequences):
    """Build a run from per-time local-state tuples; env is the index."""
    return Run(
        tuple(
            GlobalState(("env", time, locals_), tuple(locals_))
            for time, locals_ in enumerate(locals_sequences)
        )
    )


@pytest.fixture
def sync_system():
    """Two runs, two agents, agent 0 clocked, agent 1 sees the branch at t=1."""
    run_h = make_run((("a", 0), "x"), (("a", 1), "h"))
    run_t = make_run((("a", 0), "x"), (("a", 1), "t"))
    return System([run_h, run_t])


@pytest.fixture
def async_system():
    """Agent 0's local state is constant -> no clock."""
    run_h = make_run(("blind", "x"), ("blind", "h"))
    run_t = make_run(("blind", "x"), ("blind", "t"))
    return System([run_h, run_t])


class TestGlobalState:
    def test_accessors(self):
        state = GlobalState("env", ("a", "b"))
        assert state.num_agents == 2
        assert state.local_state(1) == "b"

    def test_with_environment(self):
        state = GlobalState("env", ("a",))
        replaced = state.with_environment("env2")
        assert replaced.environment == "env2"
        assert replaced.local_states == ("a",)

    def test_hashable_and_equal(self):
        assert GlobalState("e", ("a",)) == GlobalState("e", ("a",))
        assert hash(GlobalState("e", ("a",))) == hash(GlobalState("e", ("a",)))


class TestRun:
    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Run(())

    def test_mixed_agent_counts_rejected(self):
        with pytest.raises(ModelError):
            Run((GlobalState("e", ("a",)), GlobalState("e2", ("a", "b"))))

    def test_state_stutters_past_horizon(self):
        run = make_run(("s0",), ("s1",))
        assert run.state(5) == run.state(1)

    def test_negative_time_rejected(self):
        run = make_run(("s0",))
        with pytest.raises(ModelError):
            run.state(-1)

    def test_points_enumeration(self):
        run = make_run(("s0",), ("s1",), ("s2",))
        assert [point.time for point in run.points()] == [0, 1, 2]

    def test_extends(self):
        run_h = make_run(("x",), ("h",))
        run_t = make_run(("x",), ("t",))
        assert run_h.extends(Point(run_t, 0))
        assert not run_h.extends(Point(run_t, 1))

    def test_extends_beyond_horizon_false(self):
        short = make_run(("x",))
        assert not short.extends(Point(short, 3))

    def test_local_and_environment_accessors(self):
        run = make_run(("a", "b"))
        assert run.local_state(1, 0) == "b"
        assert run.environment_state(0) == ("env", 0, ("a", "b"))


class TestPoint:
    def test_global_state(self, sync_system):
        point = sync_system.points[0]
        assert point.global_state == point.run.state(point.time)

    def test_successor_and_stutter(self):
        run = make_run(("s0",), ("s1",))
        assert Point(run, 0).successor() == Point(run, 1)
        assert Point(run, 1).successor() == Point(run, 1)


class TestSystem:
    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            System([])

    def test_agent_count_mismatch_rejected(self):
        with pytest.raises(ModelError):
            System([make_run(("a",)), make_run(("a", "b"))])

    def test_duplicate_runs_deduplicated(self):
        run = make_run(("a",))
        assert len(System([run, run]).runs) == 1

    def test_points_count(self, sync_system):
        assert len(sync_system.points) == 4

    def test_points_at_time(self, sync_system):
        assert len(sync_system.points_at_time(1)) == 2
        assert sync_system.max_horizon() == 2

    def test_contains(self, sync_system):
        assert sync_system.points[0] in sync_system
        foreign = Point(make_run(("z", "z")), 0)
        assert foreign not in sync_system


class TestKnowledge:
    def test_indistinguishable_same_local(self, sync_system):
        h1, t1 = sync_system.points_at_time(1)
        assert sync_system.indistinguishable(0, h1, t1)  # agent 0 sees clock only
        assert not sync_system.indistinguishable(1, h1, t1)  # agent 1 sees outcome

    def test_knowledge_set_contents(self, sync_system):
        h1, t1 = sync_system.points_at_time(1)
        assert sync_system.knowledge_set(0, h1) == frozenset({h1, t1})
        assert sync_system.knowledge_set(1, h1) == frozenset({h1})

    def test_knowledge_set_matches_naive(self, sync_system):
        for agent in sync_system.agents:
            for point in sync_system.points:
                assert sync_system.knowledge_set(
                    agent, point
                ) == sync_system.knowledge_set_naive(agent, point)

    def test_knows(self, sync_system):
        h1, t1 = sync_system.points_at_time(1)
        heads = frozenset({h1})
        assert sync_system.knows(1, h1, heads)
        assert not sync_system.knows(0, h1, heads)

    def test_knows_accepts_callable_and_fact(self, sync_system):
        h1, _ = sync_system.points_at_time(1)
        assert sync_system.knows(1, h1, lambda point: point.time == 1)

    def test_knows_rejects_garbage(self, sync_system):
        with pytest.raises(ModelError):
            sync_system.knows(0, sync_system.points[0], 42)

    def test_local_state_classes_partition(self, sync_system):
        for agent in sync_system.agents:
            classes = sync_system.local_state_classes(agent)
            all_points = [point for points in classes.values() for point in points]
            assert sorted(map(repr, all_points)) == sorted(
                map(repr, sync_system.points)
            )

    def test_knowledge_is_equivalence(self, sync_system):
        # reflexive + symmetric + transitive via partition structure
        for agent in sync_system.agents:
            for point in sync_system.points:
                cell = sync_system.knowledge_set(agent, point)
                assert point in cell
                for other in cell:
                    assert sync_system.knowledge_set(agent, other) == cell


class TestSynchrony:
    def test_clocked_system_is_synchronous(self, sync_system):
        assert sync_system.is_synchronous()

    def test_blind_agent_breaks_synchrony(self, async_system):
        assert not async_system.is_synchronous()

    def test_require_synchronous(self, async_system, sync_system):
        sync_system.require_synchronous()
        with pytest.raises(SynchronyError):
            async_system.require_synchronous()
