"""``Model.explain``: derivations agree with the checker and audit clean."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import opponent_assignment, standard_assignments
from repro.errors import LogicError
from repro.examples_lib import three_agent_coin_system
from repro.logic import (
    And,
    CommonKnows,
    CommonKnowsProb,
    EveryoneKnowsProb,
    Knows,
    Model,
    Next,
    Not,
    PrAtLeast,
    PrAtMost,
    Prop,
    audit_derivation,
    explain,
    knows_prob_at_least,
    resolve_point_ref,
)
from repro.obs import derivation_from_json
from repro.reporting import fraction_from_json

HEADS = Prop("heads")
GROUP = (0, 1, 2)


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def models(coin):
    """One model per named assignment of the Section 6 lattice."""
    named = dict(standard_assignments(coin.psys))
    named["opp(1)"] = opponent_assignment(coin.psys, 1)
    return {
        name: Model(assignment, {"heads": coin.heads})
        for name, assignment in named.items()
    }


@pytest.fixture(scope="module")
def points(coin):
    index = coin.psys.point_index
    return sorted(coin.psys.system.points, key=index.position)


FORMULAS = [
    HEADS,
    Not(HEADS),
    And(HEADS, Not(HEADS)),
    Knows(2, HEADS),
    Knows(0, HEADS),
    Next(HEADS),
    PrAtLeast(0, HEADS, Fraction(1, 2)),
    PrAtLeast(2, HEADS, Fraction(999, 1000)),
    PrAtMost(0, HEADS, Fraction(1, 2)),
    knows_prob_at_least(0, Fraction(1, 2), HEADS),
    knows_prob_at_least(2, Fraction(999, 1000), HEADS),
    EveryoneKnowsProb(GROUP, Fraction(1, 2), HEADS),
    CommonKnows(GROUP, HEADS),
    CommonKnowsProb(GROUP, Fraction(1, 2), HEADS),
]

ASSIGNMENT_NAMES = ["post", "fut", "prior", "opp(1)"]


class TestAgreementAndRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(ASSIGNMENT_NAMES),
        formula=st.sampled_from(FORMULAS),
        position=st.integers(min_value=0, max_value=5),
    )
    def test_explain_round_trips_and_agrees_with_holds(
        self, models, points, name, formula, position
    ):
        model = models[name]
        point = points[position % len(points)]
        derivation = model.explain(formula, point)
        # verdict agrees with the checker
        assert derivation.holds == model.holds(formula, point)
        assert derivation.assignment == name
        # exact round trip through the repro-explain/1 JSON schema
        decoded = derivation_from_json(derivation.json_ready())
        assert decoded == derivation
        assert decoded.fingerprint() == derivation.fingerprint()
        # the recorded evidence audits clean, including the root verdict
        assert audit_derivation(model, derivation, formula) == []

    def test_explain_is_deterministic(self, models, points):
        formula = CommonKnowsProb(GROUP, Fraction(1, 2), HEADS)
        first = models["post"].explain(formula, points[0])
        second = models["post"].explain(formula, points[0])
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_unknown_point_raises(self, models, points):
        from repro.core.model import Point

        foreign = Point(points[0].run, 99)  # beyond the horizon
        with pytest.raises(LogicError, match="not a point"):
            models["post"].explain(HEADS, foreign)


class TestProbabilityEvidence:
    def test_cells_sum_exactly_to_reported_measures(self, models, points):
        formula = PrAtLeast(0, HEADS, Fraction(1, 2))
        for name in ASSIGNMENT_NAMES:
            derivation = models[name].explain(formula, points[0])
            detail = derivation.root.detail
            inner = fraction_from_json(detail["inner"])
            outer = fraction_from_json(detail["outer"])
            contained = sum(
                (
                    fraction_from_json(cell["measure"])
                    for cell in detail["cells"]
                    if cell["contained"]
                ),
                Fraction(0),
            )
            overlapping = sum(
                (
                    fraction_from_json(cell["measure"])
                    for cell in detail["cells"]
                    if cell["overlapping"]
                ),
                Fraction(0),
            )
            assert contained == inner, name
            assert overlapping == outer, name
            assert fraction_from_json(detail["witness_measure"]) == inner, name

    def test_witness_mask_is_subset_of_event_closure(self, models, points):
        derivation = models["post"].explain(
            PrAtLeast(0, HEADS, Fraction(1, 2)), points[0]
        )
        detail = derivation.root.detail
        witness = detail["witness_mask"]
        sample = detail["sample_mask"]
        assert witness & ~sample == 0

    def test_alpha_recorded_exactly(self, models, points):
        derivation = models["post"].explain(
            PrAtLeast(0, HEADS, Fraction(123, 1000)), points[0]
        )
        assert fraction_from_json(derivation.root.detail["alpha"]) == Fraction(
            123, 1000
        )


class TestCounterexamples:
    def test_failing_knows_alpha_carries_confirmed_counterexample(
        self, models, points
    ):
        # K_2^{999/1000} heads fails at time 0: the tosser has not yet
        # seen the coin, so some candidate point gives heads less than
        # the demanded inner probability.
        model = models["post"]
        formula = knows_prob_at_least(2, Fraction(999, 1000), HEADS)
        failing = [
            point for point in points if not model.holds(formula, point)
        ]
        assert failing, "expected the demanding bound to fail somewhere"
        for point in failing:
            derivation = model.explain(formula, point)
            assert not derivation.holds
            knows_node = derivation.root
            assert knows_node.rule == "knows"
            ref = knows_node.detail["counterexample"]
            candidate = resolve_point_ref(model.system, ref)
            # checker-confirmed: the inner-probability bound really
            # fails at the recorded point, which the agent considers
            # possible.
            agent = knows_node.detail["agent"]
            assert candidate in model.system.knowledge_set(agent, point)
            assert not model.holds(
                PrAtLeast(agent, HEADS, Fraction(999, 1000)), candidate
            )
            assert audit_derivation(model, derivation, formula) == []

    def test_counterexample_is_first_in_index_order(self, models, points):
        model = models["post"]
        formula = Knows(0, HEADS)
        point = next(p for p in points if not model.holds(formula, p))
        derivation = model.explain(formula, point)
        ref = derivation.root.detail["counterexample"]
        index = model.psys.point_index
        expected = next(
            candidate
            for candidate in sorted(
                model.system.knowledge_set(0, point), key=index.position
            )
            if not model.holds(HEADS, candidate)
        )
        assert resolve_point_ref(model.system, ref) == expected


class TestFixpointSnapshots:
    def test_common_knowledge_node_records_iterations(self, models, points):
        derivation = models["post"].explain(
            CommonKnowsProb(GROUP, Fraction(1, 2), HEADS), points[0]
        )
        detail = derivation.root.detail
        assert detail["iterations"] >= 1
        snapshots = detail["iteration_snapshots"]
        assert len(snapshots) == detail["iterations"]
        sizes = [snapshot["updated_size"] for snapshot in snapshots]
        # downward iteration: the candidate set shrinks monotonically
        assert sizes == sorted(sizes, reverse=True)
        assert snapshots[-1]["updated_mask"] == detail["fixpoint_mask"]

    def test_fixpoint_mask_matches_extension(self, models, points):
        model = models["post"]
        formula = CommonKnows(GROUP, HEADS)
        derivation = model.explain(formula, points[0])
        assert derivation.root.detail["fixpoint_mask"] == model.extension_mask(
            formula
        )


class TestAudit:
    def test_audit_flags_tampered_cell_measure(self, models, points):
        model = models["post"]
        derivation = model.explain(PrAtLeast(0, HEADS, Fraction(1, 2)), points[0])
        payload = derivation.json_ready()
        payload["root"]["detail"]["inner"] = "1/7"
        tampered = derivation_from_json(payload)
        defects = audit_derivation(model, tampered)
        assert any("contained cells sum" in defect for defect in defects)

    def test_audit_flags_dropped_counterexample(self, models, points):
        model = models["post"]
        formula = Knows(0, HEADS)
        point = next(p for p in points if not model.holds(formula, p))
        payload = model.explain(formula, point).json_ready()
        del payload["root"]["detail"]["counterexample"]
        defects = audit_derivation(model, derivation_from_json(payload))
        assert any("no counterexample" in defect for defect in defects)

    def test_audit_flags_flipped_verdict(self, models, points):
        model = models["post"]
        derivation = model.explain(HEADS, points[0])
        payload = derivation.json_ready()
        payload["holds"] = not payload["holds"]
        payload["root"]["holds"] = not payload["root"]["holds"]
        defects = audit_derivation(model, derivation_from_json(payload), HEADS)
        assert any("disagrees with model.holds" in defect for defect in defects)


class TestModelExplainEntryPoint:
    def test_explain_with_assignment_override(self, coin, models, points):
        post_model = models["post"]
        prior = standard_assignments(coin.psys)["prior"]
        derivation = post_model.explain(HEADS, points[0], assignment=prior)
        assert derivation.assignment == "prior"

    def test_module_function_and_method_agree(self, models, points):
        model = models["post"]
        formula = PrAtLeast(0, HEADS, Fraction(1, 2))
        assert explain(model, formula, points[0]) == model.explain(
            formula, points[0]
        )
