"""Interleaved execution under a scheduler adversary (Section 3).

"In asynchronous distributed systems ... it is common to view the choice of
the next processor to take a step or the next message to be delivered as a
nondeterministic choice.  A common technique for factoring out these
nondeterministic choices is to assume the existence of a scheduler
deterministically choosing (as a function of the history of the system up
to that point) the next processor to take a step."

A :class:`ScheduleAdversary` is exactly that: a deterministic function of
the visible history selecting which agent steps and which pending messages
are delivered.  Each adversary yields one computation tree; the only
branching left inside a tree is the agents' own coin tosses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..probability.fractionutil import ONE, ZERO
from ..trees.builder import build_tree
from ..trees.probabilistic_system import ProbabilisticSystem
from ..trees.tree import ComputationTree
from .agents import Agent
from .messages import Message, inbox_for, sort_messages

History = Tuple[Hashable, ...]
ScheduleChoice = Tuple[int, Tuple[Message, ...]]


@dataclass
class ScheduleAdversary:
    """A deterministic scheduler: history -> (agent to step, deliveries).

    ``choose(time, states, pending)`` must return the index of the agent to
    step next and the (sub)tuple of pending messages to deliver to it now.
    Determinism is what makes the residual system purely probabilistic.
    """

    name: Hashable
    choose: Callable[[int, Tuple[Hashable, ...], Tuple[Message, ...]], ScheduleChoice]


def round_robin(name: Hashable = "round-robin", deliver_all: bool = True) -> ScheduleAdversary:
    """The fair scheduler stepping agents cyclically, delivering eagerly."""

    def choose(time, states, pending):
        agent = time % len(states)
        delivered = inbox_for(agent, pending) if deliver_all else ()
        return agent, delivered

    return ScheduleAdversary(name, choose)


def fixed_order(order: Sequence[int], name: Hashable = None) -> ScheduleAdversary:
    """A scheduler following an explicit agent order, delivering eagerly."""
    order = tuple(order)

    def choose(time, states, pending):
        agent = order[time % len(order)]
        return agent, inbox_for(agent, pending)

    return ScheduleAdversary(name if name is not None else ("order",) + order, choose)


def starving(victim: int, fallback: int, name: Hashable = None) -> ScheduleAdversary:
    """An unfair scheduler that never steps ``victim`` (and starves its
    messages); useful for exhibiting liveness-style sensitivity to the
    scheduler class."""

    def choose(time, states, pending):
        return fallback, inbox_for(fallback, pending)

    return ScheduleAdversary(name if name is not None else ("starve", victim), choose)


def run_scheduled(
    agents: Sequence[Agent],
    inputs: Sequence[Hashable],
    adversary: ScheduleAdversary,
    horizon: int,
) -> ComputationTree:
    """Unfold an interleaved execution under one scheduler adversary.

    At each tick exactly one agent steps (consuming the messages the
    scheduler delivers to it); all other local states are untouched.  Local
    states carry no clock -- interleaved systems are inherently
    asynchronous.
    """
    if len(inputs) != len(agents):
        raise SimulationError("inputs must match the agent count")
    initial_locals = tuple(
        agent.initial_state(input_value) for agent, input_value in zip(agents, inputs)
    )

    def step(time: int, locals_: Tuple[Hashable, ...], extra: Hashable):
        if time >= horizon:
            return ()
        pending: Tuple[Message, ...] = extra if extra is not None else ()
        agent_index, delivered = adversary.choose(time, locals_, pending)
        if not 0 <= agent_index < len(agents):
            raise SimulationError(f"scheduler chose invalid agent {agent_index}")
        delivered = sort_messages(delivered)
        if not set(delivered) <= set(pending):
            raise SimulationError("scheduler delivered messages that were never sent")
        remaining = tuple(message for message in pending if message not in set(delivered))
        branches = []
        actions = agents[agent_index].step(locals_[agent_index], delivered, time)
        total = sum((probability for probability, _ in actions), ZERO)
        if total != ONE:
            raise SimulationError(
                f"agent {agent_index} step probabilities sum to {total} at tick {time}"
            )
        for probability, (new_state, outbox) in actions:
            new_locals = list(locals_)
            new_locals[agent_index] = new_state
            new_pending = sort_messages(remaining + tuple(outbox))
            label = (agent_index, new_state, new_pending)
            branches.append((probability, label, tuple(new_locals), new_pending))
        return branches

    return build_tree(
        adversary.name, initial_locals, step, max_depth=horizon + 1, initial_extra=()
    )


def scheduled_system(
    agents: Sequence[Agent],
    inputs: Sequence[Hashable],
    adversaries: Sequence[ScheduleAdversary],
    horizon: int,
) -> ProbabilisticSystem:
    """One computation tree per scheduler adversary."""
    trees = [
        run_scheduled(agents, inputs, adversary, horizon) for adversary in adversaries
    ]
    return ProbabilisticSystem(trees)
