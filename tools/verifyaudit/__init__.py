"""verifyaudit: certify a sweep from its audit bundle, not by re-running it.

A ``repro-audit/1`` bundle (:mod:`repro.obs.audit`) chains every row of
a Section 8 guarantee sweep -- task fingerprint, exact row payload, and
the Merkle fingerprint of the row's ``post_threshold`` derivation --
into a single running root hash.  This tool is the verifier's side of
that bargain: given the bundle (and, normally, the checkpoint it was
written alongside), it

1. recomputes the hash chain and every derivation-node fingerprint
   (a flipped bit anywhere in any row payload or derivation node breaks
   the arithmetic);
2. cross-checks each leaf against its checkpoint row, byte for byte on
   the exact ``"p/q"`` payloads (task identity compared without the
   ``backend`` field -- provenance, not identity);
3. replays :func:`repro.logic.explain.audit_derivation` over every (or
   ``--sample N`` evenly spaced) derivation DAG against a freshly
   rebuilt attack system, re-checking the Section 5 evidence -- cell
   sums, witness measures -- and that the row's ``post_threshold``
   equals the derivation's inner probability at the witness point.

verifyaudit is the one sanctioned *replayer* among the tools: unlike
the pure artifact auditors (tracediff, tracereport), its whole job is
to rebuild systems and re-derive evidence, so it may import the
computational layers (see the RL002 replayer allowance).  Usage::

    PYTHONPATH=src python -m tools.verifyaudit sweep.jsonl.audit
    PYTHONPATH=src python -m tools.verifyaudit --json --sample 8 B.audit
    make audit-verify BUNDLE=sweep.jsonl.audit

Exit status: 0 clean, 1 divergent (any hash, checkpoint, or replay
defect), 2 when the bundle is unreadable or fails schema validation.
"""

from .verify import (
    REPORT_SCHEMA,
    default_checkpoint_path,
    load_checkpoint_records,
    render_report,
    select_leaves,
    verify_audit,
)

__all__ = [
    "REPORT_SCHEMA",
    "default_checkpoint_path",
    "load_checkpoint_records",
    "render_report",
    "select_leaves",
    "verify_audit",
]
