"""The betting game of Section 6.

At a point ``c``, the opponent ``p_j`` offers agent ``p_i`` a payoff
``beta`` for a bet on the fact ``phi``.  If ``p_i`` accepts, it pays one
dollar and receives ``beta`` dollars if ``phi`` is true at ``c``; its net
gain is ``beta - 1`` or ``-1``.  If it rejects (or no bet is offered), the
gain is 0.

``Bet(phi, alpha)`` is the rule "accept any bet on ``phi`` with a payoff of
at least ``1/alpha``" -- the threshold family footnote 13 shows is without
loss of generality.  :class:`BettingRule` packages the rule; the *winnings
random variable* ``W_f`` of a rule against a strategy ``f`` is produced by
:meth:`BettingRule.winnings`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional

from ..core.facts import Fact
from ..core.model import Point
from ..errors import BettingError
from ..probability.fractionutil import FractionLike, ONE, ZERO, as_fraction
from .strategies import NO_BET, Payoff, Strategy


class BettingRule:
    """``Bet(phi, alpha)``: accept any bet on ``phi`` with payoff >= 1/alpha.

    ``alpha`` must lie in ``(0, 1]``; intuitively it is the probability at
    which the agent is willing to regard ``1/alpha`` as fair odds.
    """

    __slots__ = ("fact", "alpha", "threshold")

    def __init__(self, fact: Fact, alpha: FractionLike) -> None:
        self.fact = fact
        self.alpha = as_fraction(alpha)
        if not ZERO < self.alpha <= ONE:
            raise BettingError(f"Bet(phi, alpha) needs alpha in (0, 1], got {self.alpha}")
        self.threshold = ONE / self.alpha

    def accepts(self, payoff: Payoff) -> bool:
        """Does the rule accept an offered payoff (None = no bet offered)?"""
        return payoff is not NO_BET and payoff >= self.threshold

    def gain(self, point: Point, payoff: Payoff) -> Fraction:
        """The agent's net gain at ``point`` given the offered payoff."""
        if not self.accepts(payoff):
            return ZERO
        if self.fact.holds_at(point):
            return payoff - ONE
        return -ONE

    def winnings(self, strategy: Strategy) -> Callable[[Point], Fraction]:
        """The random variable ``W_f = W_f(phi, alpha)`` on points.

        ``W_f(d)`` is the agent's profit at ``d`` when it follows this rule
        and the opponent follows ``strategy``.
        """

        def variable(point: Point) -> Fraction:
            return self.gain(point, strategy.payoff_at(point))

        return variable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bet({self.fact.name}, {self.alpha})"


def acceptance_set_rule(
    fact: Fact, accepted: Callable[[Fraction], bool]
) -> Callable[[Point, Payoff], Fraction]:
    """A generalized (non-threshold) acceptance rule, for footnote 13.

    ``accepted(payoff)`` decides acceptance; the return value is a gain
    function ``(point, payoff) -> Fraction``.  Footnote 13's claim -- any
    safe acceptance set is equivalent to a threshold rule -- is verified in
    :func:`repro.betting.theorems.footnote13_threshold_optimality`.
    """

    def gain(point: Point, payoff: Payoff) -> Fraction:
        if payoff is NO_BET or not accepted(payoff):
            return ZERO
        if fact.holds_at(point):
            return payoff - ONE
        return -ONE

    return gain
