"""Indexed bitmask representation of events over finite sample spaces.

The measure-theoretic kernels of Section 5 -- ``mu``, ``mu_*``, ``mu^*``
and the interval query ``(mu_*, mu^*)`` -- reduce, on a finite space, to
set algebra between an event and the atoms of the sigma-algebra.  This
module provides the representation that makes that algebra cheap:

* :class:`OutcomeIndex` assigns every outcome a canonical bit position, so
  an event becomes a plain Python ``int`` and ``atom <= event`` /
  ``atom & event`` become the bitwise tests ``mask & event == mask`` /
  ``mask & event``.
* :class:`IntervalCache` is a bounded LRU map ``event mask -> (inner,
  outer, contained mask)`` so that repeated interval queries -- the
  dominant access pattern of ``knows_probability_interval`` and the attack
  sweeps -- cost a dictionary hit after first touch.
* :func:`set_default_backend` / :func:`use_backend` switch newly built
  spaces between the ``"bitmask"`` engine and the retained ``"naive"``
  frozenset kernels, for the differential tests and the ablation
  benchmark.  Switching emits a ``backend_switch`` event through
  :mod:`repro.obs`, so traces show which kernel actually ran.
* :func:`kernel_totals` / :func:`reset_kernel_totals` snapshot the
  process-wide cache hit/miss/eviction and kernel-dispatch counters that
  the observability layer (``repro.obs``, ``tools/tracereport``,
  ``BENCH_4.json``) reports.

The bitmask layer accelerates *set algebra only*: every probability that
flows through it stays an exact :class:`fractions.Fraction`.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple

from ..obs.recorder import get_recorder

__all__ = [
    "OutcomeIndex",
    "IntervalCache",
    "BACKENDS",
    "count_mask_conversion",
    "count_naive_query",
    "count_wordarray_query",
    "get_default_backend",
    "kernel_totals",
    "merge_kernel_totals",
    "reset_kernel_totals",
    "set_default_backend",
    "use_backend",
]


class _KernelTotals:
    """Process-wide aggregate of every measure-kernel statistic.

    Individual :class:`IntervalCache` instances keep their own counters,
    but spaces are constructed by the thousands inside a sweep (every
    conditioning step builds one), so the per-process aggregate is what
    the observability layer snapshots.  Updates are single integer
    increments on the hot path -- deliberately cheaper than calling into
    a recorder per cache probe.
    """

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "naive_queries",
        "backend_switches",
        "wordarray_queries",
        "mask_conversions",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.naive_queries = 0
        self.backend_switches = 0
        self.wordarray_queries = 0
        self.mask_conversions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "naive_queries": self.naive_queries,
            "backend_switches": self.backend_switches,
            "wordarray_queries": self.wordarray_queries,
            "mask_conversions": self.mask_conversions,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.naive_queries = 0
        self.backend_switches = 0
        self.wordarray_queries = 0
        self.mask_conversions = 0


_TOTALS = _KernelTotals()


def kernel_totals() -> Dict[str, int]:
    """Snapshot of the process-wide measure-kernel counters.

    ``cache_hits``/``cache_misses``/``cache_evictions`` aggregate every
    :class:`IntervalCache` in the process; ``naive_queries`` counts
    interval-kernel calls on the naive (frozenset) backend;
    ``wordarray_queries`` counts vectorized kernel dispatches and
    ``mask_conversions`` the int-mask <-> word-array crossings of the
    ``wordarray`` backend (:mod:`repro.probability.wordmask`);
    ``backend_switches`` counts :func:`set_default_backend` changes.
    """
    return _TOTALS.snapshot()


def reset_kernel_totals() -> Dict[str, int]:
    """Zero the process-wide kernel counters; returns the old snapshot."""
    previous = _TOTALS.snapshot()
    _TOTALS.reset()
    return previous


#: ``kernel_totals()`` snapshot key -> :class:`_KernelTotals` attribute,
#: the mapping :func:`merge_kernel_totals` folds shipped deltas through.
_TOTALS_ATTRS = {
    "cache_hits": "hits",
    "cache_misses": "misses",
    "cache_evictions": "evictions",
    "naive_queries": "naive_queries",
    "backend_switches": "backend_switches",
    "wordarray_queries": "wordarray_queries",
    "mask_conversions": "mask_conversions",
}


def merge_kernel_totals(delta: Dict[str, int]) -> None:
    """Fold a shipped kernel-totals delta into this process's counters.

    The cross-process telemetry layer (:mod:`repro.obs.snapshot`) ships
    each worker attempt's ``kernel_totals()`` delta back to the parent,
    which merges it here so a post-sweep :func:`kernel_totals` reflects
    the whole sweep rather than only parent-side work.  Keys follow the
    :func:`kernel_totals` snapshot; unknown keys are ignored so older
    parents tolerate newer workers.
    """
    for key, attr in _TOTALS_ATTRS.items():
        value = int(delta.get(key, 0))
        if value:
            setattr(_TOTALS, attr, getattr(_TOTALS, attr) + value)


def count_naive_query() -> None:
    """Count one naive-backend kernel dispatch (called by the space)."""
    _TOTALS.naive_queries += 1


def count_wordarray_query() -> None:
    """Count one wordarray-backend kernel dispatch (called by wordmask)."""
    _TOTALS.wordarray_queries += 1


def count_mask_conversion() -> None:
    """Count one int-mask <-> word-array conversion at the index boundary."""
    _TOTALS.mask_conversions += 1


class OutcomeIndex:
    """A canonical ``outcome -> bit position`` assignment.

    Positions are assigned in first-seen order of the constructor
    iterable, so two indexes built from the same ordered data agree.
    Events over the indexed universe are represented as ints with bit
    ``position(outcome)`` set.
    """

    __slots__ = ("_positions", "_members", "_full_mask")

    def __init__(self, members: Iterable[Hashable]) -> None:
        positions: Dict[Hashable, int] = {}
        for member in members:
            if member not in positions:
                positions[member] = len(positions)
        self._positions = positions
        self._members: Tuple[Hashable, ...] = tuple(positions)
        self._full_mask = (1 << len(positions)) - 1

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._members)

    def __contains__(self, member: Hashable) -> bool:
        return member in self._positions

    @property
    def members(self) -> Tuple[Hashable, ...]:
        """All indexed members, in bit-position order."""
        return self._members

    @property
    def full_mask(self) -> int:
        """The mask of the whole universe (all bits set)."""
        return self._full_mask

    def position(self, member: Hashable) -> int:
        """The bit position of ``member``; raises ``KeyError`` if unknown."""
        return self._positions[member]

    def singleton(self, member: Hashable) -> int:
        """The mask with only ``member``'s bit set."""
        return 1 << self._positions[member]

    # -- events <-> masks ------------------------------------------------

    def mask_of(self, members: Iterable[Hashable]) -> int:
        """The mask of an event; raises ``KeyError`` on unknown members."""
        positions = self._positions
        mask = 0
        for member in members:
            mask |= 1 << positions[member]
        return mask

    def mask_of_known(self, members: Iterable[Hashable]) -> int:
        """The mask of ``event & universe``: unknown members are ignored.

        This is the conversion behind inner/outer measures, which the
        space defines on arbitrary subsets by first intersecting with
        the sample space.
        """
        positions = self._positions
        mask = 0
        for member in members:
            position = positions.get(member)
            if position is not None:
                mask |= 1 << position
        return mask

    def strict_mask(self, members: Iterable[Hashable]) -> Optional[int]:
        """The mask of an event, or ``None`` if any member is unknown."""
        positions = self._positions
        mask = 0
        for member in members:
            position = positions.get(member)
            if position is None:
                return None
            mask |= 1 << position
        return mask

    def iter_members_of(self, mask: int) -> Iterator[Hashable]:
        """The members whose bits are set in ``mask``, in position order."""
        members = self._members
        while mask:
            low = mask & -mask
            yield members[low.bit_length() - 1]
            mask ^= low

    def members_of(self, mask: int) -> FrozenSet[Hashable]:
        """The event (as a frozenset) encoded by ``mask``."""
        return frozenset(self.iter_members_of(mask))


#: Cached value for one event mask: ``(inner, outer, contained_mask)``
#: where ``contained_mask`` is the union of the atoms wholly inside the
#: event -- the event is measurable iff ``contained_mask`` equals it.
IntervalEntry = Tuple["Fraction", "Fraction", int]


class IntervalCache:
    """A bounded LRU cache ``event mask -> IntervalEntry``.

    One instance lives on each :class:`FiniteProbabilitySpace`; the bound
    keeps long sweeps from accumulating one entry per distinct event
    forever.  Eviction is least-recently-used so the hot interval queries
    of a sweep stay resident.
    """

    __slots__ = ("_entries", "_maxsize", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("IntervalCache needs room for at least one entry")
        self._entries: "OrderedDict[int, IntervalEntry]" = OrderedDict()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def get(self, mask: int) -> Optional[IntervalEntry]:
        """The cached entry for ``mask``, refreshing its recency; None on miss."""
        entry = self._entries.get(mask)
        if entry is None:
            self.misses += 1
            _TOTALS.misses += 1
            return None
        self._entries.move_to_end(mask)
        self.hits += 1
        _TOTALS.hits += 1
        return entry

    def put(self, mask: int, entry: IntervalEntry) -> None:
        """Insert or refresh an entry, evicting the least recently used."""
        entries = self._entries
        if mask in entries:
            entries.move_to_end(mask)
        entries[mask] = entry
        if len(entries) > self._maxsize:
            entries.popitem(last=False)
            self.evictions += 1
            _TOTALS.evictions += 1

    def stats(self) -> Dict[str, int]:
        """This cache's counters and occupancy as one snapshot dict.

        ``hits``/``misses``/``evictions`` are monotonic over the cache's
        lifetime (:meth:`clear` does not reset them); ``size`` is the
        current entry count, bounded by ``maxsize``.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self._maxsize,
        }

    def clear(self) -> None:
        """Drop every cached entry (the monotonic counters are kept)."""
        self._entries.clear()


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

#: The three measure engines: ``"bitmask"`` (indexed ints, default),
#: ``"wordarray"`` (numpy uint64 word arrays, for >=100k-point systems;
#: needs numpy and degrades to ``"bitmask"`` without it) and ``"naive"``
#: (the original frozenset scans, kept for differential testing and the
#: ablation benchmark).
BACKENDS: Tuple[str, ...] = ("bitmask", "wordarray", "naive")

_default_backend = "bitmask"


def get_default_backend() -> str:
    """The engine newly constructed spaces will use."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Select the engine for newly constructed spaces; returns the old one.

    Existing spaces keep the backend they were built with: the choice is
    baked in at construction, which is what lets the ablation benchmark
    time the engines on identically constructed inputs.

    Requesting ``"wordarray"`` without numpy installed degrades
    gracefully to ``"bitmask"`` (numpy is an optional extra, never a
    hard dependency): a ``backend_fallback`` event records the
    substitution and the returned previous backend still restores
    correctly through :func:`use_backend`.
    """
    global _default_backend
    if name not in BACKENDS:
        raise ValueError(f"unknown measure backend {name!r}; expected one of {BACKENDS}")
    if name == "wordarray":
        # Function-local import: the numpy probe is deferred until the
        # backend is actually requested, so bitmask-only processes never
        # pay it (and the module cycle wordmask -> bitset stays one-way
        # at module scope).
        from . import wordmask

        if not wordmask.available():
            get_recorder().event(
                "backend_fallback",
                requested="wordarray",
                backend="bitmask",
                reason="numpy unavailable",
            )
            name = "bitmask"
    previous = _default_backend
    _default_backend = name
    if name != previous:
        _TOTALS.backend_switches += 1
        get_recorder().event("backend_switch", backend=name, previous=previous)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Context manager: build spaces with ``name`` inside the block.

    Yields the backend actually in effect -- ``"bitmask"`` when
    ``"wordarray"`` was requested without numpy available.
    """
    previous = set_default_backend(name)
    try:
        yield get_default_backend()
    finally:
        set_default_backend(previous)
