"""RL004 — no mutable default arguments."""

from __future__ import annotations

import ast
from typing import Iterator

from ..model import Module, Violation
from ..registry import Rule, register

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


@register
class MutableDefaultRule(Rule):
    rule_id = "RL004"
    title = "no mutable default argument values"
    rationale = """\
Default argument values are evaluated once, at definition time.  A
mutable default ([], {}, set(), ...) is shared across *every* call, so
state leaks between invocations.  In this library that failure mode is
existential, not stylistic: the verifiers for the paper's Theorem 7,
Theorem 8, Theorem 9 and Proposition 6 (Section 5) brute-force thousands
of strategies and points, and a shared accumulator would let one
verification contaminate the next, producing a 'holds' verdict that
depends on call order.  Use None and create the container inside the
body, or use an immutable default such as a tuple."""

    def check(self, module: Module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable(default):
                    yield self.violation(
                        module, default,
                        f"mutable default argument in '{name}' "
                        "(use None and build the container in the body)",
                    )


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False
