"""File discovery, rule execution, and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from . import rules as _rules  # noqa: F401  (populates the registry)
from .model import (
    FLOW_RULE_IDS,
    TOOL_ERROR_RULE_ID,
    Module,
    SuppressionDecl,
    Violation,
    parse_suppressions,
)
from .registry import Rule, all_rules


@dataclass(frozen=True)
class LintError:
    """A file reprolint could not analyse (syntax error, unreadable).

    Kept for API compatibility; since the RL000 change these no longer
    abort a run -- :func:`lint_paths` folds them into ordinary
    :data:`~tools.reprolint.model.TOOL_ERROR_RULE_ID` violations so one
    broken file cannot hide findings in the rest of the tree.
    """

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


@dataclass(frozen=True)
class SuppressionWarning:
    """A suppression comment worth flagging: unknown rule id, or stale."""

    path: str
    line: int
    rule_id: str
    kind: str  # "unknown-rule" | "stale"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.kind}: {self.message}"


@dataclass
class LintReport:
    """Everything one lint run learned, including the suppression audit."""

    violations: List[Violation] = field(default_factory=list)
    #: Suppressions naming a rule id no tier knows.  Always surfaced
    #: (a typo like ``disable=RL01`` waives nothing, silently).
    unknown_suppressions: List[SuppressionWarning] = field(default_factory=list)
    #: Suppressions that matched no violation in this run; reported only
    #: under ``--report-stale-suppressions`` because intra-file runs on a
    #: subtree legitimately miss whole-tree context.
    stale_suppressions: List[SuppressionWarning] = field(default_factory=list)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.join(dirpath, filename))
        else:
            found.append(path)
    seen = set()
    unique = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return sorted(unique)


def load_module(path: str) -> Module:
    """Parse ``path`` and compute its package-relative identity.

    The package root is the topmost ancestor directory that still contains
    an ``__init__.py``; for ``src/repro/core/cuts.py`` that is
    ``src/repro``, giving ``rel_parts == ("core", "cuts")`` and
    ``root_package == "repro"``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    directory = os.path.dirname(os.path.abspath(path))
    package_dirs: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        package_dirs.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    package_dirs.reverse()
    stem = os.path.splitext(os.path.basename(path))[0]
    if package_dirs:
        root_package = package_dirs[0]
        rel_parts = tuple(package_dirs[1:]) + (stem,)
    else:
        root_package = ""
        rel_parts = (stem,)
    source_lines = source.splitlines()
    return Module(
        path=path,
        rel_parts=rel_parts,
        tree=tree,
        source_lines=source_lines,
        suppressions=parse_suppressions(source_lines),
        root_package=root_package,
    )


def lint_module(module: Module, rules: Iterable[Rule]) -> List[Violation]:
    violations: List[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.suppressions.suppresses(violation):
                violations.append(violation)
    return violations


def tool_error_violation(path: str, exc: Exception) -> Violation:
    """The RL000 diagnostic for a file the analyzer could not read/parse.

    A :class:`SyntaxError` carries its own position; anything else (an
    unreadable file, a null byte) is pinned to line 1.  RL000 is not
    suppressible -- an unparseable file cannot vouch for itself.
    """
    line = 1
    col = 0
    if isinstance(exc, SyntaxError):
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        detail = exc.msg or str(exc)
        message = f"file does not parse: {detail}"
    else:
        message = f"file could not be analysed: {type(exc).__name__}: {exc}"
    return Violation(
        path=path, line=line, col=col, rule_id=TOOL_ERROR_RULE_ID, message=message
    )


def _suppression_warnings(
    module: Module, known_rule_ids: Set[str]
) -> Tuple[List[SuppressionWarning], List[SuppressionDecl]]:
    """Split a module's suppression audit into unknown-id warnings and
    the declarations eligible for staleness reporting."""
    unknown: List[SuppressionWarning] = []
    stale_candidates: List[SuppressionDecl] = []
    for decl in module.suppressions.declarations:
        if decl.rule_id not in known_rule_ids:
            unknown.append(
                SuppressionWarning(
                    path=module.path,
                    line=decl.line,
                    rule_id=decl.rule_id,
                    kind="unknown-rule",
                    message=(
                        f"suppression names unknown rule {decl.rule_id!r} "
                        "and waives nothing (typo?)"
                    ),
                )
            )
        elif decl.rule_id not in FLOW_RULE_IDS:
            # Flow-tier suppressions are invisible to this tier's
            # violations, so only this tier's own ids can be judged stale.
            stale_candidates.append(decl)
    return unknown, stale_candidates


def lint_paths_report(paths: Sequence[str]) -> LintReport:
    """Lint every python file reachable from ``paths``, with the audit.

    Unparseable or unreadable files become
    :data:`~tools.reprolint.model.TOOL_ERROR_RULE_ID` violations rather
    than aborting the run, so the rest of the tree is still checked.
    """
    rules = all_rules()
    known_rule_ids = (
        {rule.rule_id for rule in rules} | FLOW_RULE_IDS | {TOOL_ERROR_RULE_ID}
    )
    report = LintReport()
    stale_by_module: List[Tuple[Module, List[SuppressionDecl]]] = []
    for path in iter_python_files(paths):
        try:
            module = load_module(path)
        except (OSError, SyntaxError, ValueError) as exc:
            report.violations.append(tool_error_violation(path, exc))
            continue
        report.violations.extend(lint_module(module, rules))
        unknown, stale_candidates = _suppression_warnings(module, known_rule_ids)
        report.unknown_suppressions.extend(unknown)
        stale_by_module.append((module, stale_candidates))
    # Staleness is judged after the whole run: by now every violation the
    # run produced has marked the declarations it consumed.
    for module, candidates in stale_by_module:
        unused = {decl.key() for decl in module.suppressions.stale_declarations()}
        for decl in candidates:
            if decl.key() in unused:
                scope = "file-wide" if decl.scope == "file" else "line-scoped"
                report.stale_suppressions.append(
                    SuppressionWarning(
                        path=module.path,
                        line=decl.line,
                        rule_id=decl.rule_id,
                        kind="stale",
                        message=(
                            f"{scope} suppression of {decl.rule_id} matched no "
                            "violation; delete it (the finding it waived is gone)"
                        ),
                    )
                )
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    report.unknown_suppressions.sort(key=lambda w: (w.path, w.line, w.rule_id))
    report.stale_suppressions.sort(key=lambda w: (w.path, w.line, w.rule_id))
    return report


def lint_paths(
    paths: Sequence[str],
) -> Tuple[List[Violation], List[LintError]]:
    """Lint every python file reachable from ``paths``.

    Returns ``(violations, errors)``, each sorted for stable output.
    The ``errors`` list is always empty since the RL000 change (parse
    failures are RL000 violations now); the tuple shape is kept for the
    existing callers and tests.
    """
    report = lint_paths_report(paths)
    return report.violations, []


__all__ = [
    "LintError",
    "LintReport",
    "SuppressionWarning",
    "iter_python_files",
    "lint_module",
    "lint_paths",
    "lint_paths_report",
    "load_module",
    "tool_error_violation",
]
