"""repro: an executable reproduction of Halpern & Tuttle,
"Knowledge, Probability, and Adversaries" (PODC 1989 / JACM 40(4), 1993).

The package turns the paper's semantic framework for probabilistic
knowledge in distributed systems into a library:

* :mod:`repro.probability` -- exact finite measure theory (spaces,
  sigma-algebras as atom partitions, inner/outer measures and expectations).
* :mod:`repro.core` -- runs, points, knowledge, facts; sample-space and
  probability assignments; the standard lattice (``post``, ``fut``,
  ``opp(j)``, ``prior``); type-3 cut adversaries.
* :mod:`repro.trees` -- labeled computation trees, one per type-1 adversary.
* :mod:`repro.logic` -- the language ``L(Phi)`` of knowledge, probability
  and linear time, with a model checker and (probabilistic) common
  knowledge.
* :mod:`repro.betting` -- the betting game; safety; executable Theorems
  7, 8, 9 and Proposition 6; the embedded game of Appendix B.3.
* :mod:`repro.systems` -- a synchronous/asynchronous message-passing
  simulator that generates probabilistic systems from protocols.
* :mod:`repro.attack` -- probabilistic coordinated attack (CA1, CA2,
  Proposition 11).
* :mod:`repro.examples_lib` -- every worked example of the paper as a
  ready-made system.
* :mod:`repro.robustness` -- fault-tolerant sweep engine (retries,
  checkpoint/resume), deterministic fault injection, and runtime
  validators for the paper's structural invariants.
* :mod:`repro.obs` -- deterministic observability: pluggable recorders
  (no-op by default), in-memory metrics, and ``repro-trace/1`` JSONL
  tracing.  Observe-only: instrumentation can never change a result.
"""

__version__ = "1.0.0"

from . import core, obs, probability, trees
from .errors import (
    CheckpointError,
    ExecutionError,
    ReproError,
    RetryExhaustedError,
    TaskTimeoutError,
    ValidationError,
    WorkerTaskError,
)

__all__ = [
    "core",
    "obs",
    "probability",
    "trees",
    "CheckpointError",
    "ExecutionError",
    "ReproError",
    "RetryExhaustedError",
    "TaskTimeoutError",
    "ValidationError",
    "WorkerTaskError",
    "__version__",
]
