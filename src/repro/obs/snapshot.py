"""Point-in-time metrics snapshots: schema ``repro-metrics/1``.

The trace layer (:mod:`repro.obs.trace`) records *how* a run unfolded;
this module records *where its aggregates stand right now*, in a form
that survives process boundaries.  A snapshot freezes the counters,
gauges and span statistics of a :class:`~repro.obs.metrics.MetricsRecorder`
together with the process-wide measure-kernel totals of
:func:`repro.probability.bitset.kernel_totals`, and two snapshots
subtract (:func:`snapshot_delta`) into a shippable, picklable delta.
That delta is what the fault-tolerant engine's workers return inside
their task envelopes, and what the parent folds back into its own
recorder (:func:`merge_worker_delta`) with per-worker pid attribution --
so ``kernel_totals()`` in the parent reflects the whole sweep, not just
parent-side work.

Schema ``repro-metrics/1``
--------------------------

A metrics artifact is JSONL, mirroring ``repro-trace/1`` so the same
half-written-tail discipline applies.  The first record is always the
header::

    {"seq": 0, "ts": 0.0, "pid": <int>, "type": "header",
     "schema": "repro-metrics/1"}

followed by any number of ``snapshot`` records::

    {"type": "snapshot", "seq": <int>, "ts": <float>, "pid": <int>,
     "label": <str>,
     "counters": {<name>: <int>, ...},
     "gauges": {<name>: <json_ready value>, ...},
     "spans": {<path>: {"count": ..., "total_seconds": ..., ...}, ...},
     "kernel_totals": {"cache_hits": <int>, ...},
     "cache": {"hits": ..., "misses": ..., "evictions": ...,
               "hit_rate": "p/q" | null},
     "gfp": {"fixpoints": <int>, "iterations": <int>}}

Values are encoded with :func:`repro.reporting.json_ready`: an exact
:class:`fractions.Fraction` gauge (and the derived cache hit rate) is
written as its ``"p/q"`` string, never a float.  The content-vs-timing
split of ``tools/tracediff`` applies field-wise: ``seq``/``ts``/``pid``
and the span seconds are timing, everything else is deterministic
content.

Like the rest of the observability layer this is one-way glass: nothing
here returns a value that instrumented code could branch on, and a run
that ships snapshots computes byte-identical results to one that does
not.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from typing import Dict, List, Optional

from ..errors import MetricsError
from ..reporting import json_ready
from .clock import perf_counter
from .metrics import MetricsRecorder
from .recorder import Recorder, set_recorder

__all__ = [
    "METRICS_SCHEMA",
    "MetricsSnapshotWriter",
    "ObsDeltaCapture",
    "merge_worker_delta",
    "read_snapshot",
    "read_snapshots",
    "snapshot_delta",
    "take_snapshot",
    "write_snapshot",
]

#: Identifier written into (and demanded from) every metrics header.
METRICS_SCHEMA = "repro-metrics/1"

#: Counter names holding the gfp totals a snapshot surfaces explicitly
#: (``repro.logic.semantics`` bumps them once per fixpoint).
_GFP_FIXPOINTS = "model.gfp_fixpoints"
_GFP_ITERATIONS = "model.gfp_iterations"


def _kernel_totals() -> Dict[str, int]:
    # Deferred: repro.probability.bitset imports repro.obs.recorder at
    # module scope, so importing it here at module scope would cycle
    # through the package initialisers.
    from ..probability.bitset import kernel_totals

    return kernel_totals()


def _cache_section(kernel: Dict[str, int]) -> Dict[str, object]:
    hits = int(kernel.get("cache_hits", 0))
    misses = int(kernel.get("cache_misses", 0))
    return {
        "hits": hits,
        "misses": misses,
        "evictions": int(kernel.get("cache_evictions", 0)),
        "hit_rate": Fraction(hits, hits + misses) if hits + misses else None,
    }


def take_snapshot(
    metrics: Optional[MetricsRecorder] = None,
    label: str = "",
    kernel: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Freeze the current aggregates into one ``snapshot`` record.

    ``metrics`` supplies the counters/gauges/spans (``None``: empty
    aggregates -- the snapshot still carries the kernel totals);
    ``kernel`` overrides the process-wide :func:`kernel_totals` (the
    delta helpers pass differences through here).  The derived ``cache``
    and ``gfp`` sections are conveniences folded from the same numbers:
    the cache hit rate is an exact Fraction, and the gfp totals mirror
    the ``model.gfp_*`` counters.
    """
    base = metrics.snapshot() if metrics is not None else {
        "counters": {},
        "gauges": {},
        "spans": {},
    }
    totals = dict(kernel) if kernel is not None else _kernel_totals()
    counters = base["counters"]
    return {
        "type": "snapshot",
        "label": label,
        "counters": counters,
        "gauges": base["gauges"],
        "spans": base["spans"],
        "kernel_totals": totals,
        "cache": _cache_section(totals),
        "gfp": {
            "fixpoints": int(counters.get(_GFP_FIXPOINTS, 0)),
            "iterations": int(counters.get(_GFP_ITERATIONS, 0)),
        },
    }


class MetricsSnapshotWriter:
    """Stream ``repro-metrics/1`` records, one JSON object per line.

    ``destination`` is a path (the file is created/truncated and owned
    by the writer -- :meth:`close` closes it) or any object with a
    ``write(str)`` method (borrowed -- :meth:`close` only flushes).  The
    header is written immediately; each :meth:`write` stamps the record
    with ``seq``/``ts``/``pid`` and flushes, so a killed run leaves at
    most a truncated final line (which :func:`read_snapshots`
    tolerates).
    """

    __slots__ = ("_handle", "_owns_handle", "_origin", "_seq", "records_written")

    def __init__(self, destination) -> None:
        if hasattr(destination, "write"):
            self._handle = destination
            self._owns_handle = False
        else:
            self._handle = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        self._seq = 0
        #: Total records emitted, header included (monotonic).
        self.records_written = 0
        self._origin = perf_counter()
        self._emit({"type": "header", "schema": METRICS_SCHEMA})

    def _emit(self, record: Dict) -> None:
        record["seq"] = self._seq
        record["ts"] = round(perf_counter() - self._origin, 9)
        record["pid"] = os.getpid()
        self._seq += 1
        self.records_written += 1
        self._handle.write(json.dumps(json_ready(record), sort_keys=True) + "\n")
        flush = getattr(self._handle, "flush", None)
        if flush is not None:
            flush()

    def write(self, snapshot: Dict[str, object]) -> None:
        """Append one :func:`take_snapshot` record to the stream."""
        self._emit(dict(snapshot))

    def close(self) -> None:
        if self._owns_handle:
            if not self._handle.closed:
                self._handle.close()
        else:
            flush = getattr(self._handle, "flush", None)
            if flush is not None:
                flush()

    def __enter__(self) -> "MetricsSnapshotWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False


def write_snapshot(
    destination,
    metrics: Optional[MetricsRecorder] = None,
    label: str = "",
) -> Dict[str, object]:
    """Write a one-snapshot ``repro-metrics/1`` artifact; returns the record."""
    snapshot = take_snapshot(metrics, label=label)
    with MetricsSnapshotWriter(destination) as writer:
        writer.write(snapshot)
    return snapshot


def read_snapshots(source, strict: bool = True) -> List[Dict]:
    """Load the records of a ``repro-metrics/1`` JSONL file (or lines).

    Mirrors :func:`repro.obs.trace.read_trace`: a final line that does
    not decode as JSON is the half-written tail of a killed run and is
    dropped; an undecodable line *before* the end raises
    :class:`~repro.errors.MetricsError`.  With ``strict=True`` the first
    record must be a ``repro-metrics/1`` header.
    """
    if isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = [line.rstrip("\n") for line in source]
    records: List[Dict] = []
    bad_line: Optional[int] = None
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        if bad_line is not None:
            raise MetricsError(
                f"metrics line {bad_line + 1} is not JSON but is not the final line"
            )
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            bad_line = position
            continue
        if not isinstance(record, dict):
            raise MetricsError(f"metrics line {position + 1} is not a JSON object")
        records.append(record)
    if strict:
        if not records:
            raise MetricsError("metrics artifact is empty: no header record")
        header = records[0]
        if header.get("type") != "header" or header.get("schema") != METRICS_SCHEMA:
            raise MetricsError(
                f"metrics artifact does not start with a {METRICS_SCHEMA!r} "
                f"header: {header!r}"
            )
    return records


def read_snapshot(source, strict: bool = True) -> Dict:
    """The last ``snapshot`` record of a metrics artifact.

    A metrics file is a point-in-time series; the final snapshot is the
    state of the run when it was last written, which is what reports
    fold.  Raises :class:`~repro.errors.MetricsError` when the artifact
    holds no snapshot at all.
    """
    for record in reversed(read_snapshots(source, strict=strict)):
        if record.get("type") == "snapshot":
            return record
    raise MetricsError("metrics artifact contains no snapshot record")


def _diff_counters(before: Dict, after: Dict) -> Dict[str, int]:
    deltas = {}
    for name in sorted(set(before) | set(after)):
        delta = int(after.get(name, 0)) - int(before.get(name, 0))
        if delta:
            deltas[name] = delta
    return deltas


def snapshot_delta(before: Dict, after: Dict) -> Dict[str, object]:
    """The shippable difference between two snapshots of one process.

    Counters and kernel totals subtract exactly (zero deltas dropped);
    gauges keep the ``after`` value (a gauge is last-value, not a sum);
    spans subtract count and total seconds per path.  The result is
    plain picklable dicts -- the form worker envelopes carry.
    """
    span_deltas: Dict[str, Dict[str, object]] = {}
    spans_before = before.get("spans", {})
    spans_after = after.get("spans", {})
    for path in sorted(set(spans_before) | set(spans_after)):
        entry_before = spans_before.get(path, {})
        entry_after = spans_after.get(path, {})
        count = int(entry_after.get("count", 0)) - int(entry_before.get("count", 0))
        seconds = float(entry_after.get("total_seconds", 0.0)) - float(
            entry_before.get("total_seconds", 0.0)
        )
        if count or seconds:
            span_deltas[path] = {"count": count, "total_seconds": seconds}
    return {
        "counters": _diff_counters(
            before.get("counters", {}), after.get("counters", {})
        ),
        "gauges": dict(after.get("gauges", {})),
        "spans": span_deltas,
        "kernel_totals": _diff_counters(
            before.get("kernel_totals", {}), after.get("kernel_totals", {})
        ),
    }


class ObsDeltaCapture:
    """Capture one block's observations as a shippable delta.

    The worker side of the cross-process shipping: entering installs a
    fresh :class:`MetricsRecorder` process-wide and snapshots the kernel
    totals; exiting restores the previous recorder and leaves ``delta``
    holding exactly what the block contributed (counters, gauges, span
    stats, kernel-total increments) as plain picklable dicts.  The
    capture is exception-transparent -- a raising block still yields its
    partial delta, so failed attempts stay attributable.
    """

    __slots__ = ("delta", "worker", "_metrics", "_kernel_before", "_previous")

    def __init__(self) -> None:
        self.delta: Optional[Dict[str, object]] = None
        self.worker = os.getpid()

    def __enter__(self) -> "ObsDeltaCapture":
        self._metrics = MetricsRecorder()
        self._kernel_before = _kernel_totals()
        self._previous = set_recorder(self._metrics)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        set_recorder(self._previous)
        empty = {"counters": {}, "gauges": {}, "spans": {}, "kernel_totals": {}}
        self.delta = snapshot_delta(
            dict(empty, kernel_totals=self._kernel_before),
            take_snapshot(self._metrics),
        )
        return False


def merge_worker_delta(
    recorder: Recorder,
    delta: Dict[str, object],
    worker: Optional[int] = None,
    **event_fields,
) -> None:
    """Fold a worker's shipped delta into the parent's observations.

    Counters land twice: once under their plain name (so parent totals
    equal the exact sum of every shipped delta) and once under
    ``worker.<pid>.<name>`` (per-worker attribution, which is what the
    ``reprotop`` throughput table reads).  Kernel totals merge into this
    process's :func:`~repro.probability.bitset.kernel_totals` *and*
    into ``worker.<pid>.kernel.<key>`` counters; gauges are recorded
    under the worker prefix only (a worker's last value must not
    overwrite the parent's).  Span timings stay inside the emitted
    ``worker_obs_delta`` event -- they are timing, not content.  Must be
    called exactly once per harvested envelope: the engine reads each
    future at most once, which is what makes retried and killed attempts
    impossible to double-count.
    """
    from ..probability.bitset import merge_kernel_totals

    prefix = f"worker.{worker if worker is not None else 'unknown'}."
    counters = delta.get("counters", {})
    for name in sorted(counters):
        value = int(counters[name])
        recorder.counter(name, value)
        recorder.counter(prefix + name, value)
    kernel = {key: int(value) for key, value in delta.get("kernel_totals", {}).items()}
    merge_kernel_totals(kernel)
    for key in sorted(kernel):
        if kernel[key]:
            recorder.counter(f"{prefix}kernel.{key}", kernel[key])
    gauges = delta.get("gauges", {})
    for name in sorted(gauges):
        recorder.gauge(prefix + name, gauges[name])
    recorder.event(
        "worker_obs_delta",
        worker=worker,
        counters=dict(counters),
        kernel_totals=kernel,
        spans=dict(delta.get("spans", {})),
        **event_fields,
    )
