"""The Section 7 closing example: ``P_pts`` versus Fischer-Zuck ``P_state``.

``p_1`` tosses a coin biased 0.99 towards heads.  The system has two runs
``h`` and ``t`` and four points; the computation tree has three nodes: the
root ``R`` (carrying the points ``(h,0)`` and ``(t,0)``), ``H`` = ``(h,1)``
and ``T`` = ``(t,1)``.  Agent ``p_2`` can distinguish *only* ``(h,1)`` from
the other three points.

For the fact "the coin lands heads" at a time-0 point:

* a ``pts`` adversary picks one point per run from ``p_2``'s region
  {(h,0),(t,0),(t,1)} -- either {(h,0),(t,0)} or {(h,0),(t,1)} -- and heads
  has probability 0.99 under both, so ``P_pts |= K_2^[0.99, 0.99] heads``;
* a Fischer-Zuck ``state`` adversary picks an antichain of *global states*
  -- {R} or {T}; the choice {T} yields probability 0, so
  ``P_state |= K_2^[0, 0.99] heads`` and nothing sharper.

The paper's verdict: ``P_pts`` gives the more reasonable answer, since
``p_2`` has learned nothing that should shake its 0.99 prior.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from ..core.facts import Fact
from ..core.model import Point
from ..core.standard import OpponentAssignment, PostAssignment
from ..probability.fractionutil import FractionLike, as_fraction
from ..trees.builder import build_tree, chance_step
from ..trees.probabilistic_system import ProbabilisticSystem, single_tree_system

P1, P2 = 0, 1


@dataclass
class BiasedAsyncExample:
    """The 0.99-coin system, its fact, and the anchor points."""

    psys: ProbabilisticSystem
    heads: Fact
    time0_points: Tuple[Point, ...]
    region_owner: int = P2


def biased_async_system(
    heads_probability: FractionLike = Fraction(99, 100)
) -> BiasedAsyncExample:
    """Build the two-run system with ``p_2``'s odd information structure.

    ``p_1`` sees the outcome at time 1.  ``p_2``'s local state is ``"blind"``
    everywhere except at ``(h,1)``, where it is ``"saw-h1"`` -- realised
    directly via the tree builder (no protocol generates exactly this
    structure, and the paper specifies it pointwise).
    """
    probability = as_fraction(heads_probability)

    def step(time, locals_, extra):
        if time == 0:
            return chance_step(
                [
                    (probability, "heads", ("p1-saw-heads", "saw-h1")),
                    (1 - probability, "tails", ("p1-saw-tails", "blind")),
                ]
            )
        return ()

    tree = build_tree("biased", ("p1-ready", "blind"), step)
    psys = single_tree_system(tree)
    heads = Fact.about_run(
        lambda run: "heads" in run.states[-1].environment.history, name="heads"
    )
    time0 = tuple(point for point in psys.system.points if point.time == 0)
    return BiasedAsyncExample(psys, heads, time0)


def pts_versus_state_intervals(
    example: BiasedAsyncExample,
) -> Tuple[Tuple[Fraction, Fraction], Tuple[Fraction, Fraction]]:
    """The sharpest ``K_2^[a,b] heads`` intervals under the two adversary
    classes, at a time-0 point.  Expected: ``(0.99, 0.99)`` for ``pts`` and
    ``(0, 0.99)`` for ``state``."""
    from ..core.cuts import interval_over_cuts

    post = PostAssignment(example.psys)
    anchor = example.time0_points[0]
    pts = interval_over_cuts(
        example.psys, post, P2, anchor, example.heads, cut_class="pts"
    )
    state = interval_over_cuts(
        example.psys, post, P2, anchor, example.heads, cut_class="state"
    )
    return pts, state
