"""Measurability of facts (Proposition 3 and its asynchronous failure)."""

import pytest

from repro.core import (
    Fact,
    ProbabilityAssignment,
    PostAssignment,
    measurability_report,
    non_measurable_sites,
    proposition3_instance,
    standard_assignments,
    sufficient_richness_propositions,
)
from repro.examples_lib import repeated_coin_system, three_agent_coin_system


@pytest.fixture(scope="module")
def sync_coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def async_coin():
    return repeated_coin_system(3)


class TestSynchronousMeasurability:
    def test_state_facts_measurable_under_post(self, sync_coin):
        post = standard_assignments(sync_coin.psys)["post"]
        assert post.is_measurable(sync_coin.heads)
        assert post.is_measurable(~sync_coin.heads)

    def test_boolean_closure_measurable(self, sync_coin):
        post = standard_assignments(sync_coin.psys)["post"]
        facts = {
            "heads": sync_coin.heads,
            "not": ~sync_coin.heads,
            "and": sync_coin.heads & ~sync_coin.heads,
            "or": sync_coin.heads | ~sync_coin.heads,
        }
        report = measurability_report(post, facts)
        assert all(report.values())

    def test_richness_propositions_measurable(self, sync_coin):
        # Prop 3 instance over the sufficiently-rich primitive propositions.
        post = standard_assignments(sync_coin.psys)["post"]
        primitives = sufficient_richness_propositions(sync_coin.psys.system)
        assert proposition3_instance(post, primitives.values())

    def test_no_failure_sites(self, sync_coin):
        post = standard_assignments(sync_coin.psys)["post"]
        assert non_measurable_sites(post, sync_coin.heads) == ()


class TestAsynchronousFailure:
    def test_most_recent_heads_not_measurable_for_blind_agent(self, async_coin):
        post = ProbabilityAssignment(PostAssignment(async_coin.psys))
        sites = non_measurable_sites(post, async_coin.most_recent_heads)
        assert sites  # Prop 3 fails without synchrony
        agents = {agent for agent, _ in sites}
        assert agents == {0}  # exactly the unclocked agent

    def test_clocked_agents_unaffected(self, async_coin):
        post = ProbabilityAssignment(PostAssignment(async_coin.psys))
        for agent in (1, 2):
            for point in async_coin.psys.system.points:
                assert post.is_measurable_at(agent, point, async_coin.most_recent_heads)


class TestRichness:
    def test_one_proposition_per_global_state(self, sync_coin):
        system = sync_coin.psys.system
        primitives = sufficient_richness_propositions(system)
        states = {point.global_state for point in system.points}
        assert len(primitives) == len(states)

    def test_each_proposition_pins_its_state(self, sync_coin):
        system = sync_coin.psys.system
        for fact in sufficient_richness_propositions(system).values():
            extension = fact.points(system)
            states = {point.global_state for point in extension}
            assert len(states) == 1
            target = states.pop()
            assert extension == frozenset(
                point for point in system.points if point.global_state == target
            )
