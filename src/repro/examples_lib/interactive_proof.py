"""An interactive proof of quadratic residuosity, in the paper's framework.

Section 9 names the analysis of cryptographic protocols -- interactive and
zero-knowledge proofs [FZ87, HMT88, GMR89] -- as the most promising
application of knowledge-and-probability semantics.  This module builds the
classic Goldwasser-Micali-Rackoff-style protocol for quadratic residuosity
as a probabilistic system and makes its three guarantees executable:

* **completeness** -- an honest prover (who knows a square root) convinces
  the verifier in every run of its tree;
* **soundness** -- for a non-residue input, every cheating strategy wins
  each round with probability exactly 1/2, so the verifier accepts ``t``
  rounds with probability ``2**-t`` -- a per-adversary (per-tree) statement,
  exactly like primality testing in Section 3;
* **zero knowledge (witness indistinguishability)** -- when ``x`` has two
  essentially different roots ``w`` and ``n - w``, the verifier's local
  state has identical distributions in the two honest-prover trees: nothing
  in the interaction reveals which witness the prover holds.

The protocol, per round (all arithmetic mod ``n``):
the prover picks a random ``r`` and sends ``y = r**2``; the verifier flips
a coin ``b``; the prover answers ``z`` with ``z**2 = y * x**b``.  The
honest prover answers ``z = r * w**b``.  The cheating prover (no root
exists) commits in advance to the challenge ``g`` it can answer: for
``g = 0`` it sends ``y = r**2`` (and can answer ``b = 0``); for ``g = 1``
it sends ``y = r**2 / x`` (and can answer ``b = 1``); it wins iff
``b = g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.facts import Fact
from ..errors import SimulationError
from ..probability.fractionutil import ONE, ZERO
from ..trees.builder import build_tree
from ..trees.probabilistic_system import ProbabilisticSystem

VERIFIER = 0
PROVER = 1


# ----------------------------------------------------------------------
# Number theory over Z_n*
# ----------------------------------------------------------------------


def units(n: int) -> Tuple[int, ...]:
    """The multiplicative group ``Z_n*``."""
    from math import gcd

    return tuple(a for a in range(1, n) if gcd(a, n) == 1)


def quadratic_residues(n: int) -> FrozenSet[int]:
    """The squares of ``Z_n*``."""
    return frozenset(pow(a, 2, n) for a in units(n))


def square_roots(x: int, n: int) -> Tuple[int, ...]:
    """All unit square roots of ``x`` modulo ``n``."""
    return tuple(w for w in units(n) if pow(w, 2, n) == x % n)


def modular_inverse(a: int, n: int) -> int:
    """The inverse of a unit modulo ``n``."""
    result = pow(a, -1, n)
    return result


# ----------------------------------------------------------------------
# The protocol as a probabilistic system
# ----------------------------------------------------------------------


@dataclass
class QRProofExample:
    """The interactive-proof system and the facts of its analysis."""

    psys: ProbabilisticSystem
    modulus: int
    rounds: int
    accepted: Fact        # the verifier accepted every round
    honest_adversaries: Tuple[object, ...]
    cheating_adversaries: Tuple[object, ...]


def _honest_tree(n: int, x: int, w: int, rounds: int, randomness: Sequence[int], adversary):
    """The tree of an honest prover holding the specific root ``w``."""

    def step(time, locals_, extra):
        verifier_state, prover_state = locals_
        round_index = time
        if round_index >= rounds:
            return ()
        branches = []
        mass = Fraction(1, len(randomness) * 2)
        for r in randomness:
            y = pow(r, 2, n)
            for challenge in (0, 1):
                z = (r * pow(w, challenge, n)) % n
                valid = pow(z, 2, n) == (y * pow(x, challenge, n)) % n
                verdict = "ok" if valid else "reject"
                new_verifier = verifier_state + ((y, challenge, z, verdict),)
                new_prover = prover_state  # witness + transcript index only
                label = (r, challenge)
                branches.append(
                    (mass, label, (new_verifier, new_prover), None)
                )
        return branches

    return build_tree(
        adversary,
        ((), ("holds-root",)),
        step,
        max_depth=rounds + 1,
    )


def _cheating_tree(n: int, x: int, rounds: int, randomness: Sequence[int], adversary):
    """The tree of the optimal cheating prover for a non-residue ``x``.

    Each round it guesses the challenge ``g`` uniformly (any deterministic
    guessing rule does equally well; the uniform mix keeps the tree
    symmetric) and prepares ``y`` so it can answer exactly that challenge.
    """
    x_inverse = modular_inverse(x, n)

    def step(time, locals_, extra):
        verifier_state, prover_state = locals_
        if time >= rounds:
            return ()
        branches = []
        mass = Fraction(1, len(randomness) * 4)
        for r in randomness:
            for guess in (0, 1):
                y = pow(r, 2, n) if guess == 0 else (pow(r, 2, n) * x_inverse) % n
                for challenge in (0, 1):
                    if challenge == guess:
                        z = r % n
                        valid = pow(z, 2, n) == (y * pow(x, challenge, n)) % n
                        verdict = "ok" if valid else "reject"
                    else:
                        z = 0  # cannot answer; sends garbage
                        verdict = "reject"
                    new_verifier = verifier_state + ((y, challenge, z, verdict),)
                    label = (r, guess, challenge)
                    branches.append(
                        (mass, label, (new_verifier, prover_state), None)
                    )
        return branches

    return build_tree(
        adversary,
        ((), ("no-root",)),
        step,
        max_depth=rounds + 1,
    )


def qr_proof_system(
    modulus: int = 15,
    residue: Optional[int] = None,
    non_residue: Optional[int] = None,
    rounds: int = 1,
    randomness: Optional[Sequence[int]] = None,
) -> QRProofExample:
    """Build the interactive-proof system over ``Z_modulus*``.

    Type-1 adversaries: one honest prover per essentially-different root of
    the residue (for the zero-knowledge comparison) and one cheating prover
    for the non-residue.  Defaults for modulus 15: residue 4 (roots
    2, 7, 8, 13), non-residue 2.
    """
    n = modulus
    residues = quadratic_residues(n)
    if residue is None:
        residue = sorted(residues - {1})[0] if len(residues) > 1 else 1
    if residue not in residues:
        raise SimulationError(f"{residue} is not a quadratic residue mod {n}")
    if non_residue is None:
        non_residue = sorted(set(units(n)) - residues)[0]
    if non_residue in residues:
        raise SimulationError(f"{non_residue} is a quadratic residue mod {n}")
    roots = square_roots(residue, n)
    if randomness is None:
        # The prover's coin must be uniform over a set closed under
        # negation: the bijection r <-> n-r is what makes the transcripts
        # of the two witnesses w and n-w identically distributed.
        randomness = units(n)
    closed = {r % n for r in randomness}
    if {(n - r) % n for r in closed} != closed:
        raise SimulationError(
            "prover randomness must be closed under negation mod n "
            "(otherwise witness indistinguishability fails by construction)"
        )
    witness_pair = (roots[0], (n - roots[0]) % n)
    trees = []
    honest_names = []
    for w in witness_pair:
        name = ("honest", w)
        honest_names.append(name)
        trees.append(_honest_tree(n, residue, w, rounds, randomness, name))
    cheat_name = ("cheating", non_residue)
    trees.append(_cheating_tree(n, non_residue, rounds, randomness, cheat_name))
    psys = ProbabilisticSystem(trees)

    def all_ok(local) -> bool:
        transcript = local
        return len(transcript) > 0 and all(entry[3] == "ok" for entry in transcript)

    accepted = Fact.about_local_state(VERIFIER, all_ok, name="verifier_accepts")
    return QRProofExample(
        psys=psys,
        modulus=n,
        rounds=rounds,
        accepted=accepted,
        honest_adversaries=tuple(honest_names),
        cheating_adversaries=(cheat_name,),
    )


# ----------------------------------------------------------------------
# The three guarantees
# ----------------------------------------------------------------------


def acceptance_probability(example: QRProofExample, adversary) -> Fraction:
    """P(verifier accepts all rounds) within one adversary's tree."""
    tree = example.psys.tree(adversary)
    total = ZERO
    final_time = example.rounds
    for run in tree.runs:
        last = list(run.points())[-1]
        if example.accepted.holds_at(last):
            total += tree.run_probability(run)
    return total


def completeness(example: QRProofExample) -> bool:
    """Honest provers convince the verifier with probability 1."""
    return all(
        acceptance_probability(example, adversary) == ONE
        for adversary in example.honest_adversaries
    )


def soundness_error(example: QRProofExample) -> Fraction:
    """The cheating prover's acceptance probability (expected ``2**-t``)."""
    (cheat,) = example.cheating_adversaries
    return acceptance_probability(example, cheat)


def verifier_view_distribution(
    example: QRProofExample, adversary
) -> Dict[object, Fraction]:
    """The distribution of the verifier's final local state in one tree."""
    tree = example.psys.tree(adversary)
    distribution: Dict[object, Fraction] = {}
    for run in tree.runs:
        view = run.states[-1].local_states[VERIFIER]
        distribution[view] = distribution.get(view, ZERO) + tree.run_probability(run)
    return distribution


def witness_indistinguishable(example: QRProofExample) -> bool:
    """Zero-knowledge flavour: the verifier's view distribution is identical
    whichever root the honest prover holds.

    Consequently the verifier's knowledge can never separate the two
    honest trees: it learns *that* ``x`` is a residue, and nothing about
    *which* witness the prover used.
    """
    first, second = example.honest_adversaries
    return verifier_view_distribution(example, first) == verifier_view_distribution(
        example, second
    )


def simulated_view_distribution(
    example: QRProofExample,
) -> Dict[object, Fraction]:
    """The GMR simulator: sample the verifier's view *without any witness*.

    Per round, pick the answer ``z`` uniformly from the prover's randomness
    and the challenge ``b`` uniformly, then set ``y = z**2 / x**b``.  The
    resulting transcript distribution is exactly the honest view -- the
    protocol is zero knowledge, not merely witness-indistinguishable: a
    poly-time simulator ignorant of the root reproduces everything the
    verifier sees.
    """
    n = example.modulus
    residues = quadratic_residues(n)
    x = None
    for adversary in example.honest_adversaries:
        x = adversary[1] ** 2 % n  # the root is recorded in the adversary id
        break
    if x is None:  # pragma: no cover - systems always have honest trees
        raise SimulationError("no honest adversary to read the statement from")
    # recover the actual statement: the square of either recorded root
    root = example.honest_adversaries[0][1]
    x = pow(root, 2, n)
    x_inverse = modular_inverse(x, n)
    randomness = _randomness_of(example)
    distribution: Dict[object, Fraction] = {}
    mass = Fraction(1, len(randomness) * 2)

    def extend(prefix: tuple, depth: int, probability: Fraction) -> None:
        if depth == example.rounds:
            distribution[prefix] = distribution.get(prefix, ZERO) + probability
            return
        for z in randomness:
            for challenge in (0, 1):
                y = pow(z, 2, n) if challenge == 0 else (pow(z, 2, n) * x_inverse) % n
                entry = (y, challenge, z % n, "ok")
                extend(prefix + (entry,), depth + 1, probability * mass)

    extend((), 0, ONE)
    return distribution


def _randomness_of(example: QRProofExample) -> Tuple[int, ...]:
    """Recover the prover-randomness support from an honest tree."""
    tree = example.psys.tree(example.honest_adversaries[0])
    root_children = tree.children(tree.root)
    coins = sorted(
        {child.environment.history[-1][0] for child in root_children}
    )
    return tuple(coins)


def zero_knowledge(example: QRProofExample) -> bool:
    """The simulator's distribution equals the honest verifier's view.

    This is the genuine (perfect) zero-knowledge property for the honest
    verifier, strictly stronger than witness indistinguishability.  It
    holds when the prover's coin set is the full unit group (the default):
    the simulator's change of variable ``z = r * w**b`` is then a bijection
    of the coin space.  Restricted coin sets that are merely closed under
    negation still give witness indistinguishability, but the simulator --
    which must work *without* the witness -- can no longer match the view
    exactly; :class:`SimulationError` is raised for such systems rather
    than returning a misleading ``False``.
    """
    n = example.modulus
    randomness = set(_randomness_of(example))
    root = example.honest_adversaries[0][1]
    if {(r * root) % n for r in randomness} != randomness:
        raise SimulationError(
            "perfect simulation needs prover randomness closed under "
            "multiplication by the witness (use the default full unit group)"
        )
    real = verifier_view_distribution(example, example.honest_adversaries[0])
    simulated = simulated_view_distribution(example)
    return real == simulated


def verifier_cannot_identify_witness(example: QRProofExample) -> bool:
    """The knowledge-level reading: at every point of an honest tree, the
    verifier considers a point of the *other* honest tree possible."""
    system = example.psys.system
    first, second = example.honest_adversaries
    for adversary, other in ((first, second), (second, first)):
        for point in example.psys.points_of_tree(adversary):
            knowledge = system.knowledge_set(VERIFIER, point)
            if not any(
                example.psys.adversary_of(candidate) == other for candidate in knowledge
            ):
                return False
    return True
