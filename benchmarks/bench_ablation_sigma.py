"""Ablation -- sigma-algebras as atom partitions vs explicit set closures.

The library represents a finite sigma-algebra by its atom partition
(complete information, linear size).  The retained alternative --
explicitly closing the generators under complement and union -- is
exponential in the atom count.  This ablation times both representations
on the same generator families and cross-checks that they induce the same
measurability verdicts.
"""

from repro.probability import (
    atoms_from_generators,
    atoms_of_explicit_algebra,
    explicit_closure,
)
from repro.reporting import print_table

SPACE = tuple(range(12))
GENERATORS = [
    frozenset(range(0, 6)),
    frozenset(range(3, 9)),
    frozenset({0, 4, 8}),
]


def atom_representation():
    return atoms_from_generators(SPACE, GENERATORS)


def explicit_representation():
    return explicit_closure(SPACE, GENERATORS)


def test_ablation_atoms(benchmark):
    atoms = benchmark(atom_representation)
    closure = explicit_representation()
    # cross-check: the closure's atoms are exactly the direct atoms
    assert set(atoms_of_explicit_algebra(SPACE, closure)) == set(atoms)
    print_table(
        "ABLATION  sigma-algebra representations (12 outcomes, 3 generators)",
        ["representation", "size"],
        [
            ("atom partition", f"{len(atoms)} atoms"),
            ("explicit closure", f"{len(closure)} measurable sets"),
        ],
    )
    assert len(closure) == 2 ** len(atoms)


def test_ablation_explicit_closure(benchmark):
    closure = benchmark(explicit_representation)
    assert len(closure) >= 2
