"""Sigma-algebra utilities: atoms, closures, refinements."""

import pytest

from repro.errors import NotAPartitionError
from repro.probability import (
    atoms_from_generators,
    atoms_of_explicit_algebra,
    check_partition,
    common_refinement,
    explicit_closure,
    is_partition,
    restrict_partition,
)

SPACE = ["a", "b", "c", "d"]


class TestIsPartition:
    def test_valid(self):
        assert is_partition(SPACE, [frozenset("ab"), frozenset("cd")])

    def test_overlap_rejected(self):
        assert not is_partition(SPACE, [frozenset("ab"), frozenset("bc")])

    def test_missing_coverage_rejected(self):
        assert not is_partition(SPACE, [frozenset("ab")])

    def test_empty_atom_rejected(self):
        assert not is_partition(SPACE, [frozenset(), frozenset("abcd")])

    def test_escaping_atom_rejected(self):
        assert not is_partition(SPACE, [frozenset("abcd"), frozenset("e")])


class TestCheckPartition:
    def test_normalises_deterministically(self):
        first = check_partition(SPACE, [frozenset("cd"), frozenset("ab")])
        second = check_partition(SPACE, [frozenset("ab"), frozenset("cd")])
        assert first == second

    def test_raises_on_gap(self):
        with pytest.raises(NotAPartitionError):
            check_partition(SPACE, [frozenset("ab")])

    def test_raises_on_overlap(self):
        with pytest.raises(NotAPartitionError):
            check_partition(SPACE, [frozenset("ab"), frozenset("bcd")])


class TestAtomsFromGenerators:
    def test_no_generators_single_atom(self):
        atoms = atoms_from_generators(SPACE, [])
        assert atoms == (frozenset(SPACE),)

    def test_one_generator_two_atoms(self):
        atoms = atoms_from_generators(SPACE, [frozenset("ab")])
        assert set(atoms) == {frozenset("ab"), frozenset("cd")}

    def test_crossing_generators_refine(self):
        atoms = atoms_from_generators(SPACE, [frozenset("ab"), frozenset("bc")])
        assert set(atoms) == {
            frozenset("a"),
            frozenset("b"),
            frozenset("c"),
            frozenset("d"),
        }

    def test_matches_explicit_closure(self):
        generators = [frozenset("ab"), frozenset("ac")]
        closure = explicit_closure(SPACE, generators)
        assert set(atoms_of_explicit_algebra(SPACE, closure)) == set(
            atoms_from_generators(SPACE, generators)
        )


class TestExplicitClosure:
    def test_contains_space_and_empty(self):
        closure = explicit_closure(SPACE, [frozenset("ab")])
        assert frozenset() in closure
        assert frozenset(SPACE) in closure

    def test_closed_under_complement(self):
        closure = explicit_closure(SPACE, [frozenset("ab"), frozenset("a")])
        for member in closure:
            assert frozenset(SPACE) - member in closure

    def test_closed_under_union(self):
        closure = explicit_closure(SPACE, [frozenset("a"), frozenset("b")])
        for left in closure:
            for right in closure:
                assert left | right in closure

    def test_powerset_when_fully_generated(self):
        closure = explicit_closure(
            SPACE, [frozenset("a"), frozenset("b"), frozenset("c")]
        )
        assert len(closure) == 16


class TestCommonRefinement:
    def test_refines_both(self):
        first = [frozenset("ab"), frozenset("cd")]
        second = [frozenset("ac"), frozenset("bd")]
        refined = common_refinement(SPACE, first, second)
        assert set(refined) == {
            frozenset("a"),
            frozenset("b"),
            frozenset("c"),
            frozenset("d"),
        }

    def test_identity_on_same_partition(self):
        partition = [frozenset("ab"), frozenset("cd")]
        assert set(common_refinement(SPACE, partition, partition)) == set(
            frozenset(block) for block in partition
        )


class TestRestrictPartition:
    def test_trace_drops_empties(self):
        atoms = [frozenset("ab"), frozenset("cd")]
        assert restrict_partition(atoms, frozenset("ab")) == (frozenset("ab"),)

    def test_trace_intersects(self):
        atoms = [frozenset("ab"), frozenset("cd")]
        restricted = restrict_partition(atoms, frozenset("ac"))
        assert set(restricted) == {frozenset("a"), frozenset("c")}
