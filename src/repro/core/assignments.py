"""Sample-space assignments and induced probability assignments (Section 5).

A *probability assignment* ``P`` maps an agent ``p_i`` and a point ``c`` to
a probability space ``P_ic = (S_ic, X_ic, mu_ic)`` used to evaluate
``Pr_i(phi) >= alpha`` at ``c``.  The paper reduces choosing ``P`` to
choosing a *sample-space assignment* ``S`` -- which points appear in
``S_ic`` -- subject to:

* **REQ1**: all points of ``S_ic`` lie in the one computation tree ``T(c)``;
* **REQ2**: the runs through ``S_ic`` form a measurable set of positive
  measure in ``T(c)``'s run space.

Given these, the induced space conditions the run distribution on
``R(S_ic)`` and projects: measurable point sets are projections of
measurable run sets (``X_ic = { Proj(R', S_ic) : R' in X_A }``), and
``mu_ic(S) = mu_A(R(S) | R(S_ic))``.  Propositions 1 and 2 (this module's
:func:`check_req2_state_generated` and the constructor of
:func:`induced_point_space`) guarantee the construction is well-defined.
"""

from __future__ import annotations

from fractions import Fraction
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import NotMeasurableError, Req1Error, Req2Error
from ..probability.fractionutil import ZERO
from ..probability.space import FiniteProbabilitySpace
from .facts import Fact, state_generated_point_set
from .model import Point, Run

if TYPE_CHECKING:
    # Annotation-only: core sits below trees in the import DAG (RL002).
    from ..trees.probabilistic_system import ProbabilisticSystem
    from ..trees.tree import ComputationTree

PointSet = FrozenSet[Point]


# ----------------------------------------------------------------------
# REQ1 / REQ2
# ----------------------------------------------------------------------


def check_req1(psys: ProbabilisticSystem, point: Point, sample: Iterable[Point]) -> ComputationTree:
    """Verify REQ1: every point of the sample lies in ``T(c)``.

    Returns the tree on success; raises :class:`Req1Error` otherwise.
    """
    tree = psys.tree_of(point)
    for member in sample:
        if not tree.contains_point(member):
            raise Req1Error(
                f"sample point {member!r} lies outside T(c) "
                f"(adversary {tree.adversary!r})"
            )
    return tree


def check_req2(
    psys: ProbabilisticSystem, point: Point, sample: Iterable[Point]
) -> Fraction:
    """Verify REQ2: ``R(S_ic)`` is measurable with positive measure.

    Returns ``mu_A(R(S_ic))`` on success; raises :class:`Req2Error`.
    """
    sample_set = frozenset(sample)
    tree = check_req1(psys, point, sample_set)
    runs = tree.runs_through(sample_set)
    space = psys.run_space(tree.adversary)
    if not space.is_measurable(runs):
        raise Req2Error("the runs through the sample space are not measurable")
    measure = space.measure(runs)
    if measure <= ZERO:
        raise Req2Error("the runs through the sample space have measure zero")
    return measure


def requirement_defects(
    psys: ProbabilisticSystem, point: Point, sample: Iterable[Point]
) -> List[str]:
    """Every REQ1/REQ2 defect of one sample space, as messages (Section 5).

    The non-raising counterpart of :func:`check_req2`, used by
    :func:`repro.robustness.validate.validate_assignment` to aggregate
    violations across all (agent, point) pairs instead of stopping at the
    first :class:`Req1Error`/:class:`Req2Error`.  An empty list means the
    sample satisfies both requirements at this point.
    """
    sample_set = frozenset(sample)
    defects: List[str] = []
    try:
        tree = psys.tree_of(point)
    except Exception as error:
        return [f"REQ1: the point belongs to no computation tree ({error})"]
    outside = [member for member in sample_set if not tree.contains_point(member)]
    if outside:
        defects.append(
            f"REQ1: {len(outside)} sample point(s) lie outside T(c) "
            f"(adversary {tree.adversary!r})"
        )
    inside = frozenset(member for member in sample_set if tree.contains_point(member))
    if not inside:
        defects.append("REQ2: no sample point lies in T(c), so R(S) is empty")
        return defects
    runs = tree.runs_through(inside)
    space = psys.run_space(tree.adversary)
    if not space.is_measurable(runs):
        defects.append("REQ2: the runs through the sample space are not measurable")
    elif space.measure(runs) <= ZERO:
        defects.append("REQ2: the runs through the sample space have measure zero")
    return defects


def check_req2_state_generated(
    psys: ProbabilisticSystem, point: Point, sample: Iterable[Point]
) -> bool:
    """Proposition 1: a state-generated sample satisfying REQ1 satisfies REQ2.

    Returns True iff the hypothesis holds (state generated and REQ1), in
    which case the conclusion is checked by actually running
    :func:`check_req2` -- so a ``True`` return certifies both the
    proposition's hypothesis and its conclusion for this instance.
    """
    sample_set = frozenset(sample)
    if not sample_set:
        return False
    if not state_generated_point_set(psys.system, sample_set):
        return False
    try:
        check_req1(psys, point, sample_set)
    except Req1Error:
        return False
    check_req2(psys, point, sample_set)  # raises if Proposition 1 were false
    return True


# ----------------------------------------------------------------------
# The induced probability space (Proposition 2)
# ----------------------------------------------------------------------


def project_runs(runs: Iterable[Run], sample: Iterable[Point]) -> PointSet:
    """``Proj(R', S) = { (r, k) in S : r in R' }`` (Section 5)."""
    run_set = frozenset(runs)
    return frozenset(point for point in sample if point.run in run_set)


def induced_point_space(
    psys: ProbabilisticSystem, point: Point, sample: Iterable[Point]
) -> FiniteProbabilitySpace:
    """The probability space ``P_ic`` induced on a sample space.

    Atoms of ``X_ic`` are projections of the run-space atoms onto the
    sample; with the (default) powerset run algebra, the atom for run ``r``
    is the set of sample points lying on ``r`` -- one atom per run, which in
    asynchronous systems may contain several points (this is exactly the
    source of Section 7's non-measurability).  The measure conditions
    ``mu_A`` on ``R(S_ic)``.
    """
    sample_set = frozenset(sample)
    check_req2(psys, point, sample_set)  # REQ1 checked inside
    tree = psys.tree_of(point)
    run_space = psys.run_space(tree.adversary)
    # group the sample by run once, so projection is linear in the sample
    # instead of quadratic (sample x atoms) in large systems
    points_on_run: Dict[Run, List[Point]] = {}
    for member in sample_set:
        points_on_run.setdefault(member.run, []).append(member)
    atoms: List[PointSet] = []
    weight_of: Dict[PointSet, int] = {}
    # conditioning on R(S_ic) in integer weight form: the conditional
    # measure of a projected atom is its run weight over the total weight
    # of runs through the sample, with no per-atom Fraction division
    for run_atom, weight in zip(run_space.atoms, run_space.atom_weights):
        projected = frozenset(
            member
            for run in run_atom
            if run in points_on_run
            for member in points_on_run[run]
        )
        if not projected:
            continue
        if projected in weight_of:
            weight_of[projected] += weight
        else:
            atoms.append(projected)
            weight_of[projected] = weight
    # distinct run atoms project to disjoint point sets covering the
    # sample (each point lies on exactly one run), so the projections are
    # a partition by construction; the weights sum to the denominator by
    # construction, and check_req2 guarantees the denominator is positive
    total_weight = sum(weight_of.values())
    return FiniteProbabilitySpace._from_atom_weights(
        tuple(atoms),
        tuple(weight_of[atom] for atom in atoms),
        total_weight,
        interval_cache_maxsize=psys.interval_cache_maxsize,
    )


# ----------------------------------------------------------------------
# Sample-space assignments
# ----------------------------------------------------------------------


class SampleSpaceAssignment:
    """A function ``S`` from (agent, point) to a sample space of points.

    Subclasses implement :meth:`sample_space`.  The assignment is bound to a
    probabilistic system so that its properties (consistency, uniformity,
    the lattice order) are decidable by enumeration.
    """

    def __init__(self, psys: ProbabilisticSystem, name: Optional[str] = None) -> None:
        self.psys = psys
        self.name = name or type(self).__name__

    def sample_space(self, agent: int, point: Point) -> PointSet:
        """``S(i, c) = S_ic``; must satisfy REQ1 and REQ2."""
        raise NotImplementedError

    # -- paper's structural properties ---------------------------------

    def is_consistent(self) -> bool:
        """``S_ic subseteq K_i(c)`` everywhere (Section 5).

        Consistency characterises the axiom ``K_i(phi) => Pr_i(phi) = 1``.
        """
        system = self.psys.system
        for agent in system.agents:
            for point in system.points:
                if not self.sample_space(agent, point) <= system.knowledge_set(agent, point):
                    return False
        return True

    def is_state_generated(self) -> bool:
        """Every ``S_ic`` contains all points sharing a member's global state."""
        system = self.psys.system
        return all(
            state_generated_point_set(system, self.sample_space(agent, point))
            for agent in system.agents
            for point in system.points
        )

    def is_inclusive(self) -> bool:
        """``c in S_ic`` everywhere (property (b) of Section 6)."""
        system = self.psys.system
        return all(
            point in self.sample_space(agent, point)
            for agent in system.agents
            for point in system.points
        )

    def is_uniform(self) -> bool:
        """``d in S_ic`` implies ``S_id = S_ic`` (property (c) of Section 6)."""
        system = self.psys.system
        for agent in system.agents:
            for point in system.points:
                sample = self.sample_space(agent, point)
                for other in sample:
                    if self.sample_space(agent, other) != sample:
                        return False
        return True

    def is_standard(self) -> bool:
        """State generated + inclusive + uniform (Section 6)."""
        return self.is_state_generated() and self.is_inclusive() and self.is_uniform()

    def satisfies_requirements(self) -> bool:
        """REQ1 and REQ2 hold at every (agent, point)."""
        system = self.psys.system
        for agent in system.agents:
            for point in system.points:
                try:
                    check_req2(self.psys, point, self.sample_space(agent, point))
                except (Req1Error, Req2Error):
                    return False
        return True

    # -- the lattice order (Section 6) ---------------------------------

    def leq(self, other: "SampleSpaceAssignment") -> bool:
        """``S <= S'`` iff ``S_ic subseteq S'_ic`` for every agent and point."""
        system = self.psys.system
        return all(
            self.sample_space(agent, point) <= other.sample_space(agent, point)
            for agent in system.agents
            for point in system.points
        )

    def lt(self, other: "SampleSpaceAssignment") -> bool:
        """Strict order: ``S <= S'`` and they differ somewhere."""
        if not self.leq(other):
            return False
        system = self.psys.system
        return any(
            self.sample_space(agent, point) != other.sample_space(agent, point)
            for agent in system.agents
            for point in system.points
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class ExplicitAssignment(SampleSpaceAssignment):
    """An assignment given by an explicit table ``(agent, point) -> sample``.

    Missing entries default to the singleton ``{c}`` so that partial tables
    (as in the Section 5 coin/die examples) stay total.
    """

    def __init__(
        self,
        psys: ProbabilisticSystem,
        table: Mapping[Tuple[int, Point], Iterable[Point]],
        name: Optional[str] = None,
        default_to_singleton: bool = True,
    ) -> None:
        super().__init__(psys, name)
        self._table: Dict[Tuple[int, Point], PointSet] = {
            key: frozenset(value) for key, value in table.items()
        }
        self._default_to_singleton = default_to_singleton

    def sample_space(self, agent: int, point: Point) -> PointSet:
        key = (agent, point)
        if key in self._table:
            return self._table[key]
        if self._default_to_singleton:
            return frozenset([point])
        raise KeyError(f"no sample space for agent {agent} at {point!r}")


class FunctionAssignment(SampleSpaceAssignment):
    """An assignment computed by an arbitrary function of (agent, point)."""

    def __init__(
        self,
        psys: ProbabilisticSystem,
        function: Callable[[int, Point], Iterable[Point]],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(psys, name)
        self._function = function

    def sample_space(self, agent: int, point: Point) -> PointSet:
        return frozenset(self._function(agent, point))


# ----------------------------------------------------------------------
# Probability assignments
# ----------------------------------------------------------------------


class ProbabilityAssignment:
    """The probability assignment induced by a sample-space assignment.

    ``P_ic`` is built by :func:`induced_point_space` and cached.  Because a
    uniform assignment reuses the same sample at every member point, spaces
    are cached by ``(agent, sample)`` rather than ``(agent, point)``.
    """

    def __init__(self, ssa: SampleSpaceAssignment, name: Optional[str] = None) -> None:
        self.ssa = ssa
        self.psys = ssa.psys
        self.name = name or ssa.name
        self._space_cache: Dict[Tuple[int, PointSet], FiniteProbabilitySpace] = {}
        self._event_cache: Dict[Tuple[Fact, PointSet], PointSet] = {}

    # -- spaces ----------------------------------------------------------

    def sample_space(self, agent: int, point: Point) -> PointSet:
        """``S_ic``."""
        return self.ssa.sample_space(agent, point)

    def space(self, agent: int, point: Point) -> FiniteProbabilitySpace:
        """``P_ic = (S_ic, X_ic, mu_ic)``."""
        sample = self.ssa.sample_space(agent, point)
        key = (agent, sample)
        if key not in self._space_cache:
            self._space_cache[key] = induced_point_space(self.psys, point, sample)
        return self._space_cache[key]

    # -- probabilities at a point ----------------------------------------

    def satisfying_points(self, agent: int, point: Point, fact: Fact) -> PointSet:
        """``S_ic(phi)``: the sample points where the fact holds (Section 5).

        Cached per (fact, sample space): uniform assignments reuse one
        sample across many points, and facts are immutable in practice, so
        the cache turns repeated interval queries from quadratic to linear
        in the system size.  :class:`Fact` hashes and compares by identity,
        so keying by the fact object itself is exactly the old
        ``id(fact)``-keyed scheme without the id-recycling hazard (and
        without the keep-alive workaround it required).
        """
        sample = self.ssa.sample_space(agent, point)
        key = (fact, sample)
        cached = self._event_cache.get(key)
        if cached is None:
            cached = fact.restricted_to(sample)
            self._event_cache[key] = cached
        return cached

    def is_measurable_at(self, agent: int, point: Point, fact: Fact) -> bool:
        """True iff ``S_ic(phi)`` is measurable in ``P_ic``."""
        return self.space(agent, point).is_measurable(
            self.satisfying_points(agent, point, fact)
        )

    def is_measurable(self, fact: Fact) -> bool:
        """Measurable with respect to the assignment: at every agent/point."""
        system = self.psys.system
        return all(
            self.is_measurable_at(agent, point, fact)
            for agent in system.agents
            for point in system.points
        )

    def probability(self, agent: int, point: Point, fact: Fact) -> Fraction:
        """``mu_ic(S_ic(phi))``; raises if the fact is not measurable at c."""
        event = self.satisfying_points(agent, point, fact)
        space = self.space(agent, point)
        if not space.is_measurable(event):
            raise NotMeasurableError(
                f"{fact.name} is not measurable for agent {agent} here; "
                "use inner_probability / outer_probability"
            )
        return space.measure(event)

    def inner_probability(self, agent: int, point: Point, fact: Fact) -> Fraction:
        """``(mu_ic)_*(S_ic(phi))`` -- the semantics of ``Pr_i(phi) >= alpha``."""
        return self.space(agent, point).inner_measure(
            self.satisfying_points(agent, point, fact)
        )

    def outer_probability(self, agent: int, point: Point, fact: Fact) -> Fraction:
        """``(mu_ic)^*(S_ic(phi))``."""
        return self.space(agent, point).outer_measure(
            self.satisfying_points(agent, point, fact)
        )

    def probability_interval(
        self, agent: int, point: Point, fact: Fact
    ) -> Tuple[Fraction, Fraction]:
        """``(inner, outer)`` measure of the fact at the point."""
        return self.space(agent, point).measure_interval(
            self.satisfying_points(agent, point, fact)
        )

    # -- probabilistic knowledge ------------------------------------------

    def pr_at_least(self, agent: int, point: Point, fact: Fact, alpha) -> bool:
        """``(P, c) |= Pr_i(phi) >= alpha`` (inner-measure semantics)."""
        from ..probability.fractionutil import as_fraction

        return self.inner_probability(agent, point, fact) >= as_fraction(alpha)

    def knows_probability_at_least(self, agent: int, point: Point, fact: Fact, alpha) -> bool:
        """``(P, c) |= K_i^alpha phi``: ``Pr_i(phi) >= alpha`` at every point
        the agent considers possible at ``c``."""
        from ..probability.fractionutil import as_fraction

        threshold = as_fraction(alpha)
        system = self.psys.system
        return all(
            self.inner_probability(agent, candidate, fact) >= threshold
            for candidate in system.knowledge_set(agent, point)
        )

    def knows_probability_interval(
        self, agent: int, point: Point, fact: Fact, alpha, beta
    ) -> bool:
        """``(P, c) |= K_i^[alpha,beta] phi``.

        Per Section 6 this abbreviates
        ``K_i[(Pr_i(phi) >= alpha) & (Pr_i(~phi) >= 1 - beta)]``: inner
        measure of the fact at least ``alpha`` and outer measure at most
        ``beta``, at every point the agent considers possible.
        """
        from ..probability.fractionutil import as_fraction

        low = as_fraction(alpha)
        high = as_fraction(beta)
        system = self.psys.system
        for candidate in system.knowledge_set(agent, point):
            inner, outer = self.probability_interval(agent, candidate, fact)
            if inner < low or outer > high:
                return False
        return True

    def knowledge_interval(self, agent: int, point: Point, fact: Fact) -> Tuple[Fraction, Fraction]:
        """The sharpest ``[alpha, beta]`` with ``K_i^[alpha,beta] phi`` at ``c``."""
        from ..probability.fractionutil import ONE, ZERO

        low = ONE
        high = ZERO
        system = self.psys.system
        for candidate in system.knowledge_set(agent, point):
            inner, outer = self.probability_interval(agent, candidate, fact)
            low = min(low, inner)
            high = max(high, outer)
        return low, high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbabilityAssignment({self.name})"
