"""Ablation -- exact Fraction arithmetic versus floats.

DESIGN.md commits to exact rationals end-to-end.  This ablation measures
what exactness costs on a representative workload (the induced-space
construction plus knowledge-interval queries) and demonstrates why floats
were rejected: the theorem verifiers compare probabilities with ``==``,
and float probability chains drift off the exact values.
"""

from fractions import Fraction

from repro.core import PostAssignment, ProbabilityAssignment
from repro.examples_lib import repeated_coin_system
from repro.reporting import print_table


def exact_workload():
    example = repeated_coin_system(6)
    post = ProbabilityAssignment(example.post_toss_assignment())
    anchor = next(iter(example.post_toss_points))
    return post.probability_interval(0, anchor, example.most_recent_heads)


def float_simulation():
    """The same inner/outer computation with float arithmetic."""
    example = repeated_coin_system(6)
    tree = example.psys.trees[0]
    runs = list(tree.runs)
    probabilities = [float(tree.run_probability(run)) for run in runs]
    total = sum(probabilities)
    inner = 0.0
    outer = 0.0
    for run, probability in zip(runs, probabilities):
        values = [
            example.most_recent_heads.holds_at(point)
            for point in run.points()
            if point.time >= 1  # post-toss points, as in the exact path
        ]
        if all(values):
            inner += probability / total
        if any(values):
            outer += probability / total
    return inner, outer


def test_ablation_exact_arithmetic(benchmark):
    interval = benchmark(exact_workload)
    float_interval = float_simulation()
    print_table(
        "ABLATION  exact rationals vs floats (6-toss system)",
        ["arithmetic", "inner", "outer", "inner == 1/64 exactly?"],
        [
            ("Fraction", str(interval[0]), str(interval[1]), interval[0] == Fraction(1, 64)),
            (
                "float",
                f"{float_interval[0]:.17f}",
                f"{float_interval[1]:.17f}",
                float_interval[0] == 1 / 64,
            ),
        ],
    )
    assert interval == (Fraction(1, 64), Fraction(63, 64))
    # floats happen to be exact for dyadic values; the design point is that
    # equality-based theorem checking is only *guaranteed* for Fractions
    # (non-dyadic probabilities break float equality immediately):
    assert 0.1 + 0.2 != 0.3
    assert Fraction(1, 10) + Fraction(1, 5) == Fraction(3, 10)
