"""Messages exchanged by simulated agents.

Messages are immutable and totally ordered (via :func:`message_sort_key`)
so that inboxes, outboxes, and in-flight buffers are deterministic -- a run
of the simulator is a pure function of the protocol, inputs, and the
probabilistic choices, as the paper's model requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Tuple


@dataclass(frozen=True)
class Message:
    """A point-to-point message: sender and recipient are agent indices."""

    sender: int
    recipient: int
    content: Hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.sender}->{self.recipient}: {self.content!r})"


def message_sort_key(message: Message) -> tuple:
    """A deterministic total order on messages."""
    return (message.sender, message.recipient, repr(message.content))


def sort_messages(messages: Iterable[Message]) -> Tuple[Message, ...]:
    """Normalise a collection of messages into sorted-tuple form."""
    return tuple(sorted(messages, key=message_sort_key))


def inbox_for(agent: int, messages: Iterable[Message]) -> Tuple[Message, ...]:
    """The sorted messages addressed to ``agent``."""
    return sort_messages(message for message in messages if message.recipient == agent)
