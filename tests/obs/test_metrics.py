"""MetricsRecorder aggregation: counters, gauges, hierarchical spans."""

import json
from fractions import Fraction

from repro.obs import MetricsRecorder, SpanStats
from repro.reporting import json_ready


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        recorder = MetricsRecorder()
        recorder.counter("hits")
        recorder.counter("hits", 4)
        recorder.counter("misses")
        assert recorder.counters == {"hits": 5, "misses": 1}

    def test_events_bump_a_kind_counter(self):
        recorder = MetricsRecorder()
        recorder.event("gfp", iterations=3)
        recorder.event("gfp", iterations=1)
        recorder.event("backend_switch", backend="naive")
        assert recorder.counters["event:gfp"] == 2
        assert recorder.counters["event:backend_switch"] == 1

    def test_gauges_keep_exact_fractions(self):
        recorder = MetricsRecorder()
        recorder.gauge("hit_rate", Fraction(2, 3))
        recorder.gauge("hit_rate", Fraction(3, 4))  # last write wins
        assert recorder.gauges["hit_rate"] == Fraction(3, 4)
        assert isinstance(recorder.gauges["hit_rate"], Fraction)


class TestSpans:
    def test_nested_spans_join_paths(self):
        recorder = MetricsRecorder()
        with recorder.span("sweep"):
            with recorder.span("row"):
                pass
            with recorder.span("row"):
                pass
        assert recorder.spans["sweep"].count == 1
        assert recorder.spans["sweep/row"].count == 2
        assert "row" not in recorder.spans

    def test_span_stats_track_min_max_total(self):
        stats = SpanStats()
        for seconds in (3.0, 1.0, 2.0):
            stats.add(seconds)
        assert stats.count == 3
        assert stats.total_seconds == 6.0
        assert stats.min_seconds == 1.0
        assert stats.max_seconds == 3.0

    def test_span_durations_are_nonnegative_and_nested_totals_ordered(self):
        recorder = MetricsRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                sum(range(1000))
        outer = recorder.spans["outer"]
        inner = recorder.spans["outer/inner"]
        assert inner.total_seconds >= 0.0
        assert outer.total_seconds >= inner.total_seconds


class TestSnapshot:
    def test_snapshot_is_json_ready(self):
        recorder = MetricsRecorder()
        recorder.counter("hits", 3)
        recorder.gauge("rate", Fraction(1, 3))
        with recorder.span("work"):
            pass
        text = json.dumps(json_ready(recorder.snapshot()))
        decoded = json.loads(text)
        assert decoded["counters"] == {"hits": 3}
        assert decoded["gauges"] == {"rate": "1/3"}
        assert decoded["spans"]["work"]["count"] == 1

    def test_snapshot_sorts_keys(self):
        recorder = MetricsRecorder()
        recorder.counter("zebra")
        recorder.counter("aard")
        assert list(recorder.snapshot()["counters"]) == ["aard", "zebra"]
