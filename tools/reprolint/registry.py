"""Pluggable rule registry shared by both static-analysis tiers.

A rule is a class with a unique ``rule_id``, a one-line ``title``, a
``rationale`` tying the invariant back to the paper, and a ``check``
method yielding :class:`~tools.reprolint.model.Violation` objects.
Registering is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "RL042"
        ...

``Registry`` is the reusable container: reprolint keeps its intra-file
rules in the module-level default instance (the functions below), while
``tools/reproflow`` instantiates its own :class:`Registry` for the
whole-program rules -- same registration, lookup, ``--list-rules`` and
``--explain`` machinery, different rule universe.  New rule modules only
need to be imported from their tier's ``rules.__init__`` to take effect.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Type, TypeVar

from .model import Module, Violation


class Rule:
    """Base class for reprolint rules."""

    #: Unique identifier, ``RL`` followed by three digits.
    rule_id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: Multi-paragraph explanation printed by ``--explain``; must say which
    #: part of the paper the invariant protects.
    rationale: str = ""

    def check(self, module: Module) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: Module, node: object, message: str) -> Violation:
        return module.violation(node, self.rule_id, message)  # type: ignore[arg-type]


_RuleT = TypeVar("_RuleT", bound=Rule)


class Registry(Generic[_RuleT]):
    """A rule-id keyed collection of singleton rule instances."""

    def __init__(self) -> None:
        self._rules: Dict[str, _RuleT] = {}

    def register(self, rule_class: Type[_RuleT]) -> Type[_RuleT]:
        """Class decorator adding a rule (as a singleton) to this registry."""
        rule = rule_class()
        if not rule.rule_id:
            raise ValueError(f"{rule_class.__name__} has no rule_id")
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule.rule_id}")
        self._rules[rule.rule_id] = rule
        return rule_class

    def all_rules(self) -> List[_RuleT]:
        return [self._rules[rule_id] for rule_id in sorted(self._rules)]

    def rule_ids(self) -> List[str]:
        return sorted(self._rules)

    def get_rule(self, rule_id: str) -> _RuleT:
        try:
            return self._rules[rule_id]
        except KeyError:
            known = ", ".join(sorted(self._rules))
            raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


#: The intra-file tier's registry; the functions below are its
#: historical module-level spelling, kept because every rule module and
#: test imports them.
DEFAULT_REGISTRY: Registry[Rule] = Registry()


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default (intra-file) registry."""
    return DEFAULT_REGISTRY.register(rule_class)


def all_rules() -> List[Rule]:
    return DEFAULT_REGISTRY.all_rules()


def get_rule(rule_id: str) -> Rule:
    return DEFAULT_REGISTRY.get_rule(rule_id)


__all__ = ["DEFAULT_REGISTRY", "Registry", "Rule", "all_rules", "get_rule", "register"]
