"""The betting rule Bet(phi, alpha) and the winnings variable."""

from fractions import Fraction

import pytest

from repro.betting import BettingRule, NO_BET, Strategy, constant_strategy
from repro.core import Fact
from repro.errors import BettingError
from repro.examples_lib import three_agent_coin_system


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def rule(coin):
    return BettingRule(coin.heads, Fraction(1, 2))


class TestRule:
    def test_threshold(self, rule):
        assert rule.threshold == 2

    def test_alpha_range(self, coin):
        with pytest.raises(BettingError):
            BettingRule(coin.heads, 0)
        with pytest.raises(BettingError):
            BettingRule(coin.heads, Fraction(3, 2))
        BettingRule(coin.heads, 1)  # alpha = 1 is allowed

    def test_accepts(self, rule):
        assert rule.accepts(Fraction(2))
        assert rule.accepts(Fraction(5, 2))
        assert not rule.accepts(Fraction(3, 2))
        assert not rule.accepts(NO_BET)


class TestGain:
    def test_win(self, coin, rule):
        heads_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if coin.heads.holds_at(point)
        )
        assert rule.gain(heads_point, Fraction(2)) == 1  # payoff 2 - stake 1

    def test_lose(self, coin, rule):
        tails_point = next(
            point
            for point in coin.psys.system.points_at_time(1)
            if not coin.heads.holds_at(point)
        )
        assert rule.gain(tails_point, Fraction(2)) == -1

    def test_reject_is_zero(self, coin, rule):
        point = coin.psys.system.points[0]
        assert rule.gain(point, Fraction(3, 2)) == 0
        assert rule.gain(point, NO_BET) == 0


class TestWinningsVariable:
    def test_against_constant_strategy(self, coin, rule):
        winnings = rule.winnings(constant_strategy(2, 2))
        time1 = coin.psys.system.points_at_time(1)
        values = sorted(winnings(point) for point in time1)
        assert values == [Fraction(-1), Fraction(1)]

    def test_against_selective_strategy(self, coin, rule):
        # p3 offers only when it saw tails: agent always loses when bet.
        time1 = coin.psys.system.points_at_time(1)
        tails_local = next(
            point.local_state(2)
            for point in time1
            if not coin.heads.holds_at(point)
        )
        sneaky = Strategy(2, {tails_local: Fraction(2)})
        winnings = rule.winnings(sneaky)
        values = {winnings(point) for point in time1}
        assert values == {Fraction(0), Fraction(-1)}

    def test_expected_value_fair_bet(self, coin, rule):
        from repro.core import opponent_assignment

        pa = opponent_assignment(coin.psys, 1)
        point = coin.psys.system.points_at_time(1)[0]
        space = pa.space(0, point)
        winnings = rule.winnings(constant_strategy(1, 2))
        assert space.expectation(winnings) == 0  # exactly fair at 2:1 on 1/2
