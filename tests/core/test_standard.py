"""The standard assignments and the lattice (Section 6, Propositions 4-5)."""

from fractions import Fraction

import pytest

from repro.core import (
    Fact,
    FutureAssignment,
    OpponentAssignment,
    PostAssignment,
    PriorAssignment,
    ProbabilityAssignment,
    conditioning_identity_everywhere,
    conditioning_identity_holds,
    opponent_assignment,
    refinement_partition,
    standard_assignments,
)
from repro.errors import AssignmentError
from repro.examples_lib import three_agent_coin_system


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def psys(coin):
    return coin.psys


@pytest.fixture(scope="module")
def named(psys):
    return {
        "post": PostAssignment(psys),
        "fut": FutureAssignment(psys),
        "prior": PriorAssignment(psys),
        "opp2": OpponentAssignment(psys, 1),
        "opp3": OpponentAssignment(psys, 2),
    }


class TestSampleSpaces:
    def test_post_is_tree_knowledge(self, psys, named):
        c = psys.system.points_at_time(1)[0]
        sample = named["post"].sample_space(0, c)
        tree = psys.tree_of(c)
        assert sample == frozenset(
            d for d in tree.points if d.local_state(0) == c.local_state(0)
        )

    def test_fut_is_same_global_state(self, psys, named):
        c = psys.system.points_at_time(1)[0]
        sample = named["fut"].sample_space(0, c)
        assert sample == frozenset(
            d for d in psys.system.points if d.global_state == c.global_state
        )

    def test_fut_is_agent_independent(self, psys, named):
        for point in psys.system.points:
            assert named["fut"].sample_space(0, point) == named["fut"].sample_space(
                2, point
            )

    def test_opp_is_intersection(self, psys, named):
        for point in psys.system.points:
            joint = named["opp3"].sample_space(0, point)
            mine = named["post"].sample_space(0, point)
            theirs = named["post"].sample_space(2, point)
            assert joint == mine & theirs

    def test_opp_self_is_post_for_that_agent(self, psys, named):
        # footnote 12: Tree^i_ic = Tree_ic
        own = OpponentAssignment(psys, 0)
        for point in psys.system.points:
            assert own.sample_space(0, point) == named["post"].sample_space(0, point)

    def test_prior_is_time_slice(self, psys, named):
        c = psys.system.points_at_time(1)[0]
        assert named["prior"].sample_space(0, c) == frozenset(
            psys.system.points_at_time(1)
        )


class TestStructuralProperties:
    def test_all_named_are_standard(self, named):
        for name, ssa in named.items():
            assert ssa.is_standard(), name

    def test_consistency(self, named):
        assert named["post"].is_consistent()
        assert named["fut"].is_consistent()
        assert named["opp3"].is_consistent()
        # prior is inconsistent: p3 knows the outcome but All_ic ignores it
        assert not named["prior"].is_consistent()

    def test_requirements_satisfied(self, named):
        for name, ssa in named.items():
            assert ssa.satisfies_requirements(), name


class TestLattice:
    def test_chain_fut_opp_post(self, named):
        assert named["fut"].leq(named["opp3"])
        assert named["opp3"].leq(named["post"])
        assert named["fut"].leq(named["post"])

    def test_post_maximal_consistent(self, named):
        # post is greatest among the consistent assignments here
        for name in ("fut", "opp2", "opp3"):
            assert named[name].leq(named["post"])

    def test_strictness(self, named):
        assert named["fut"].lt(named["post"])
        # in this small system fut and opp3 happen to coincide everywhere
        assert named["fut"].leq(named["opp3"]) and named["opp3"].leq(named["fut"])
        assert not named["post"].lt(named["post"])

    def test_leq_fails_across_incomparable(self, named):
        # prior vs fut: prior's spaces are whole time slices, fut's are nodes
        assert named["fut"].leq(named["prior"])
        assert not named["prior"].leq(named["fut"])


class TestProposition4:
    def test_refinement_fut_in_post(self, psys, named):
        c = psys.system.points_at_time(1)[0]
        blocks = refinement_partition(named["fut"], named["post"], 0, c)
        union = frozenset().union(*blocks)
        assert union == named["post"].sample_space(0, c)
        assert sum(len(block) for block in blocks) == len(union)

    def test_refinement_opp_in_post(self, psys, named):
        for point in psys.system.points:
            blocks = refinement_partition(named["opp3"], named["post"], 0, point)
            assert frozenset().union(*blocks) == named["post"].sample_space(0, point)

    def test_refinement_fails_when_not_leq(self, psys, named):
        # post inside fut is not a refinement (fut is smaller)
        c = psys.system.points_at_time(1)[0]
        with pytest.raises(AssignmentError):
            refinement_partition(named["post"], named["fut"], 0, c)


class TestProposition5:
    def test_conditioning_identity_fut_under_post(self, psys, named):
        lower = ProbabilityAssignment(named["fut"])
        higher = ProbabilityAssignment(named["post"])
        assert conditioning_identity_everywhere(lower, higher)

    def test_conditioning_identity_opp_under_post(self, psys, named):
        lower = ProbabilityAssignment(named["opp3"])
        higher = ProbabilityAssignment(named["post"])
        assert conditioning_identity_everywhere(lower, higher)

    def test_pointwise_values(self, coin, psys, named):
        # mu_fut derived by conditioning mu_post on Pref_ic.
        lower = ProbabilityAssignment(named["fut"])
        higher = ProbabilityAssignment(named["post"])
        c = psys.system.points_at_time(1)[0]
        assert conditioning_identity_holds(lower, higher, 0, c)
        small = named["fut"].sample_space(0, c)
        conditioned = higher.space(0, c).condition(small)
        for atom in lower.space(0, c).atoms:
            assert conditioned.measure(atom) == lower.space(0, c).measure(atom)


class TestFactories:
    def test_standard_assignments_names(self, psys):
        named = standard_assignments(psys)
        assert set(named) == {"post", "fut", "prior"}
        assert all(isinstance(pa, ProbabilityAssignment) for pa in named.values())

    def test_opponent_assignment_factory(self, psys):
        pa = opponent_assignment(psys, 2)
        assert pa.ssa.opponent == 2


class TestPaperValues:
    def test_coin_probabilities(self, coin, psys):
        heads = coin.heads
        named = standard_assignments(psys)
        time1 = psys.system.points_at_time(1)
        c = time1[0]
        assert named["post"].probability(0, c, heads) == Fraction(1, 2)
        fut_values = sorted(named["fut"].probability(0, p, heads) for p in time1)
        assert fut_values == [Fraction(0), Fraction(1)]
        assert named["prior"].probability(0, c, heads) == Fraction(1, 2)

    def test_knowledge_against_each_opponent(self, coin, psys):
        heads = coin.heads
        c = psys.system.points_at_time(1)[0]
        against_p2 = opponent_assignment(psys, 1)
        against_p3 = opponent_assignment(psys, 2)
        half = Fraction(1, 2)
        assert against_p2.knows_probability_at_least(0, c, heads, half)
        assert not against_p3.knows_probability_at_least(0, c, heads, half)
