"""The recorder protocol: null default, registry, fan-out, observe-only."""

import pytest

from repro.obs import (
    MetricsRecorder,
    MultiRecorder,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)


class TestDefaultRecorder:
    def test_default_is_the_null_singleton(self):
        # The identity pin matters: instrumented hot paths rely on the
        # uninstrumented default costing nothing but a no-op method call.
        assert get_recorder() is NULL_RECORDER
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_null_recorder_methods_return_nothing(self):
        recorder = NullRecorder()
        assert recorder.counter("x") is None
        assert recorder.counter("x", 5) is None
        assert recorder.gauge("g", 1) is None
        assert recorder.event("e", detail="d") is None
        assert recorder.close() is None

    def test_null_span_is_a_working_context_manager(self):
        with NullRecorder().span("anything", extra=1):
            pass

    def test_base_recorder_is_a_context_manager(self):
        closed = []

        class Closing(Recorder):
            def close(self):
                closed.append(True)

        with Closing() as recorder:
            assert isinstance(recorder, Closing)
        assert closed == [True]


class TestRegistry:
    def test_set_recorder_returns_previous(self):
        first = MetricsRecorder()
        try:
            assert set_recorder(first) is NULL_RECORDER
            assert get_recorder() is first
            assert set_recorder(None) is first
            assert get_recorder() is NULL_RECORDER
        finally:
            set_recorder(None)

    def test_use_recorder_scopes_and_restores(self):
        recorder = MetricsRecorder()
        with use_recorder(recorder) as installed:
            assert installed is recorder
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_exception(self):
        recorder = MetricsRecorder()
        with pytest.raises(RuntimeError):
            with use_recorder(recorder):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_nests(self):
        outer, inner = MetricsRecorder(), MetricsRecorder()
        with use_recorder(outer):
            with use_recorder(inner):
                assert get_recorder() is inner
            assert get_recorder() is outer
        assert get_recorder() is NULL_RECORDER


class TestMultiRecorder:
    def test_fans_out_counters_gauges_events(self):
        children = [MetricsRecorder(), MetricsRecorder()]
        multi = MultiRecorder(children)
        multi.counter("hits", 2)
        multi.gauge("rate", 7)
        multi.event("switch", backend="naive")
        for child in children:
            assert child.counters["hits"] == 2
            assert child.gauges["rate"] == 7
            assert child.counters["event:switch"] == 1

    def test_fans_out_spans(self):
        children = [MetricsRecorder(), MetricsRecorder()]
        multi = MultiRecorder(children)
        with multi.span("work"):
            pass
        for child in children:
            assert child.spans["work"].count == 1

    def test_close_closes_every_child(self):
        closed = []

        class Closing(Recorder):
            def close(self):
                closed.append(id(self))

        children = [Closing(), Closing()]
        MultiRecorder(children).close()
        assert closed == [id(children[0]), id(children[1])]
