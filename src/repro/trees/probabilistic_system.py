"""Probabilistic systems: one computation tree per type-1 adversary.

Section 3 defines a *probabilistic system* as a collection of labeled
computation trees, one for each adversary ``A`` in some set ``A``, viewed as
separate probability spaces.  :class:`ProbabilisticSystem` bundles the trees
with the (plain, possible-worlds) :class:`~repro.core.model.System` of all
their runs, and answers the key structural query ``T(c)`` -- which tree a
point lies in -- which the technical assumption makes well-defined.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

from ..errors import TechnicalAssumptionError, TreeError
from ..core.model import GlobalState, Point, Run, System
from ..probability.bitset import OutcomeIndex
from ..probability.space import FiniteProbabilitySpace
from .tree import ComputationTree


class ProbabilisticSystem:
    """A collection of computation trees indexed by type-1 adversary.

    Verifies the paper's technical assumption across trees: no global state
    may appear in two different trees (the environment encodes the
    adversary, so this can only fail if a caller hand-built inconsistent
    states).
    """

    def __init__(
        self,
        trees: Iterable[ComputationTree],
        interval_cache_maxsize: Optional[int] = None,
    ) -> None:
        self._interval_cache_maxsize = interval_cache_maxsize
        self._trees: Dict[Hashable, ComputationTree] = {}
        node_owner: Dict[GlobalState, Hashable] = {}
        for tree in trees:
            if tree.adversary in self._trees:
                raise TreeError(f"duplicate adversary id {tree.adversary!r}")
            for node in tree.nodes:
                if node in node_owner:
                    raise TechnicalAssumptionError(
                        f"global state {node!r} appears in trees "
                        f"{node_owner[node]!r} and {tree.adversary!r}"
                    )
                node_owner[node] = tree.adversary
            self._trees[tree.adversary] = tree
        if not self._trees:
            raise TreeError("a probabilistic system needs at least one tree")
        self._node_owner = node_owner
        self._system = System(
            run for tree in self._trees.values() for run in tree.runs
        )
        self._run_spaces: Dict[Hashable, FiniteProbabilitySpace] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def adversaries(self) -> Tuple[Hashable, ...]:
        """The type-1 adversaries, one per tree."""
        return tuple(self._trees)

    @property
    def interval_cache_maxsize(self) -> Optional[int]:
        """Interval-cache bound applied to every space this system builds.

        ``None`` means the
        :attr:`~repro.probability.space.FiniteProbabilitySpace.interval_cache_size`
        class default.  Flows into the per-adversary run spaces and (via
        :func:`repro.core.assignments.induced_point_space`) the induced
        sample spaces, so one constructor argument tunes cache pressure
        for a whole 100k-point analysis.
        """
        return self._interval_cache_maxsize

    @property
    def trees(self) -> Tuple[ComputationTree, ...]:
        """The computation trees."""
        return tuple(self._trees.values())

    def tree(self, adversary: Hashable) -> ComputationTree:
        """The tree ``T_A`` of a given adversary."""
        try:
            return self._trees[adversary]
        except KeyError:
            raise TreeError(f"no tree for adversary {adversary!r}") from None

    @property
    def system(self) -> System:
        """The plain system (set of runs) underlying all trees.

        Knowledge (``K_i``) is computed here, across trees: an agent may
        well consider points of several trees possible -- that is exactly
        why REQ1 is a real restriction.
        """
        return self._system

    @property
    def point_index(self) -> OutcomeIndex:
        """The underlying system's ``point -> bit position`` index.

        Every consumer of this probabilistic system (model checking,
        sweeps, the parallel runner) shares one index, so event masks can
        be exchanged between layers without translation.
        """
        return self._system.point_index

    def tree_of(self, point: Point) -> ComputationTree:
        """``T(c)``: the unique tree containing the point."""
        try:
            return self._trees[self._node_owner[point.global_state]]
        except KeyError:
            raise TreeError(f"point {point!r} lies in no tree of this system") from None

    def adversary_of(self, point: Point) -> Hashable:
        """The adversary whose tree contains the point."""
        return self.tree_of(point).adversary

    # ------------------------------------------------------------------
    # Probability on runs
    # ------------------------------------------------------------------

    def run_space(self, adversary: Hashable) -> FiniteProbabilitySpace:
        """``(R_A, X_A, mu_A)`` for the given adversary (cached)."""
        if adversary not in self._run_spaces:
            self._run_spaces[adversary] = self.tree(adversary).run_space(
                interval_cache_maxsize=self._interval_cache_maxsize
            )
        return self._run_spaces[adversary]

    def run_probability(self, run: Run) -> Fraction:
        """The probability of a run within its own tree's space."""
        for tree in self._trees.values():
            if run in tree.runs:
                return tree.run_probability(run)
        raise TreeError("run does not belong to any tree of this system")

    def points_of_tree(self, adversary: Hashable) -> Tuple[Point, ...]:
        """All points of one tree."""
        return self.tree(adversary).points

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbabilisticSystem({len(self._trees)} trees, "
            f"{len(self._system.points)} points)"
        )


def single_tree_system(tree: ComputationTree) -> ProbabilisticSystem:
    """A probabilistic system with exactly one adversary."""
    return ProbabilisticSystem([tree])
