"""RL008 — wall-clock reads are quarantined inside ``repro.obs``."""

from __future__ import annotations

import ast
from typing import Iterator

from ..model import Module, Violation
from ..registry import Rule, register

#: The subpackage allowed to read clocks: ``repro.obs`` defines the
#: sanctioned wrappers (``repro.obs.clock``) that timing spans and the
#: engine's timeout bookkeeping import.
CLOCK_SUBPACKAGE = "obs"

#: Clock-reading attributes of the ``time`` module.  ``time.sleep`` is
#: deliberately absent: sleeping changes *when* code runs, never *what*
#: it computes, and the engine's deterministic backoff depends on it.
BANNED_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
    }
)

#: Modules whose import alone signals wall-clock dependence.
BANNED_MODULES = frozenset({"datetime"})


@register
class ClockQuarantineRule(Rule):
    rule_id = "RL008"
    title = "wall-clock reads only inside repro/obs/ (time.sleep stays allowed)"
    rationale = """\
Every result the library computes -- measures, fixpoints, sweep rows --
is a pure function of its inputs; that is what makes the executable
Sections 3-8 claims *checkable* (two runs must agree bit-for-bit before
`==` against a theorem statement means anything).  A wall-clock read in
computational code is the canonical leak: it smuggles nondeterminism
into values, cache keys, or control flow, and no test can pin behaviour
that depends on when it ran.

The observability layer genuinely needs clocks (timing spans, trace
timestamps), so repro/obs/ -- specifically repro/obs/clock.py -- is the
single sanctioned reader; instrumented code elsewhere imports the
wrappers from repro.obs.clock, which keeps every clock read greppable
and auditable in one place.  time.sleep is exempt everywhere: the sweep
engine's deterministic backoff sleeps but never *reads* time, which
affects scheduling, not results.

The quarantine applies to tools/ verbatim: tools/reprotop's refresh
loop is the worked example -- it measures tail staleness through
repro.obs.clock.monotonic and touches the raw time module only for
time.sleep between refreshes.  A raw time.time() anywhere under tools/
still fails this rule; a monitor that cannot keep its own clock reads
quarantined has no business auditing anyone else's."""

    def check(self, module: Module) -> Iterator[Violation]:
        if module.subpackage == CLOCK_SUBPACKAGE:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in BANNED_MODULES:
                        yield self.violation(
                            module, node,
                            f"import of wall-clock module '{alias.name}' "
                            "outside repro/obs/ (results must not depend "
                            "on when they were computed)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level != 0:
                    continue
                root = node.module.split(".")[0]
                if root in BANNED_MODULES:
                    yield self.violation(
                        module, node,
                        f"import from wall-clock module '{node.module}' "
                        "outside repro/obs/",
                    )
                elif root == "time":
                    for alias in node.names:
                        if alias.name in BANNED_TIME_ATTRS:
                            yield self.violation(
                                module, node,
                                f"clock read 'time.{alias.name}' imported "
                                "outside repro/obs/; use repro.obs.clock",
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                    and node.attr in BANNED_TIME_ATTRS
                ):
                    yield self.violation(
                        module, node,
                        f"clock read 'time.{node.attr}' outside repro/obs/; "
                        "use the wrappers in repro.obs.clock",
                    )
