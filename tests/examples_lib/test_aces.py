"""Freund's two-aces puzzle (Appendix B.1)."""

from fractions import Fraction

import pytest

from repro.examples_lib import (
    HANDS,
    ask_then_ask,
    posterior_after,
    reveal_hearts_bias,
    reveal_random,
)


@pytest.fixture(scope="module")
def protocol1():
    return ask_then_ask()


@pytest.fixture(scope="module")
def protocol2():
    return reveal_random()


@pytest.fixture(scope="module")
def protocol3():
    return reveal_hearts_bias()


class TestDeck:
    def test_six_hands(self):
        assert len(HANDS) == 6

    def test_prior_probabilities(self, protocol1):
        # Pr(A)=1/6, Pr(B)=5/6, Pr(C)=Pr(D)=1/2 at the dealt-but-silent stage
        assert posterior_after(protocol1, ("dealt",), protocol1.both_aces) == Fraction(1, 6)
        assert posterior_after(protocol1, ("dealt",), protocol1.at_least_one_ace) == Fraction(5, 6)
        assert posterior_after(protocol1, ("dealt",), protocol1.has_ace_of_spades) == Fraction(1, 2)
        assert posterior_after(protocol1, ("dealt",), protocol1.has_ace_of_hearts) == Fraction(1, 2)


class TestProtocol1AskThenAsk:
    def test_after_yes_ace(self, protocol1):
        assert posterior_after(protocol1, ("yes-ace",), protocol1.both_aces) == Fraction(1, 5)

    def test_after_yes_spades(self, protocol1):
        assert posterior_after(
            protocol1, ("yes-spades",), protocol1.both_aces
        ) == Fraction(1, 3)

    def test_after_no_spades_drops_to_zero(self, protocol1):
        assert posterior_after(
            protocol1, ("yes-ace", "no-spades"), protocol1.both_aces
        ) == Fraction(0)


class TestProtocol2RevealRandom:
    def test_after_yes_ace(self, protocol2):
        assert posterior_after(protocol2, ("yes-ace",), protocol2.both_aces) == Fraction(1, 5)

    def test_suit_reveals_nothing(self, protocol2):
        # Shafer's point: under the random tie-break, hearing the suit
        # leaves the probability at 1/5.
        assert posterior_after(
            protocol2, ("say-spades",), protocol2.both_aces
        ) == Fraction(1, 5)
        assert posterior_after(
            protocol2, ("say-hearts",), protocol2.both_aces
        ) == Fraction(1, 5)

    def test_suit_confirms_that_ace(self, protocol2):
        assert posterior_after(
            protocol2, ("say-spades",), protocol2.has_ace_of_spades
        ) == Fraction(1)


class TestProtocol3HeartsBias:
    def test_spades_announcement_kills_both_aces(self, protocol3):
        # footnote 20: with the hearts-biased tie-break, saying "spades"
        # means the hand is exactly {AS} + a deuce.
        assert posterior_after(
            protocol3, ("say-spades",), protocol3.both_aces
        ) == Fraction(0)

    def test_hearts_announcement_raises_both_aces(self, protocol3):
        # hands announcing hearts: {AH,2S}, {AH,2H}, {AS,AH} -> 1/3
        assert posterior_after(
            protocol3, ("say-hearts",), protocol3.both_aces
        ) == Fraction(1, 3)


class TestCrossProtocol:
    def test_protocol_dependence_is_the_whole_point(self, protocol1, protocol2, protocol3):
        values = {
            "ask": posterior_after(protocol1, ("yes-spades",), protocol1.both_aces),
            "random": posterior_after(protocol2, ("say-spades",), protocol2.both_aces),
            "biased": posterior_after(protocol3, ("say-spades",), protocol3.both_aces),
        }
        assert values == {
            "ask": Fraction(1, 3),
            "random": Fraction(1, 5),
            "biased": Fraction(0),
        }

    def test_first_announcement_agrees_across_protocols(
        self, protocol1, protocol2, protocol3
    ):
        for example in (protocol1, protocol2, protocol3):
            assert posterior_after(example, ("yes-ace",), example.both_aces) == Fraction(1, 5)
