"""JSON round-trips for trees and systems."""

from fractions import Fraction

import pytest

from repro.errors import TreeError
from repro.trees import (
    system_from_json,
    system_to_json,
    tree_from_dict,
    tree_to_dict,
)
from repro.examples_lib import three_agent_coin_system
from repro.testing import random_psys, random_tree


class TestTreeRoundTrip:
    def test_structure_preserved(self):
        tree = random_tree(seed=5, depth=2)
        rebuilt = tree_from_dict(tree_to_dict(tree))
        assert rebuilt.adversary == tree.adversary
        assert rebuilt.nodes == tree.nodes
        assert set(rebuilt.edges) == set(tree.edges)

    def test_probabilities_preserved(self):
        tree = random_tree(seed=6, depth=2)
        rebuilt = tree_from_dict(tree_to_dict(tree))
        for parent, child in tree.edges:
            assert rebuilt.edge_probability(parent, child) == tree.edge_probability(
                parent, child
            )

    def test_runs_preserved(self):
        tree = random_tree(seed=7, depth=3)
        rebuilt = tree_from_dict(tree_to_dict(tree))
        original = {run.states: tree.run_probability(run) for run in tree.runs}
        recovered = {run.states: rebuilt.run_probability(run) for run in rebuilt.runs}
        assert original == recovered

    def test_protocol_built_tree(self):
        tree = three_agent_coin_system().psys.trees[0]
        rebuilt = tree_from_dict(tree_to_dict(tree))
        assert rebuilt.nodes == tree.nodes

    def test_unserializable_payload_rejected(self):
        from repro.trees.serialize import _encode_value

        with pytest.raises(TreeError):
            _encode_value(object())


class TestSystemRoundTrip:
    def test_multi_tree_system(self):
        psys = random_psys(seed=8, num_trees=3, depth=2)
        rebuilt = system_from_json(system_to_json(psys))
        assert set(rebuilt.adversaries) == set(psys.adversaries)
        assert len(rebuilt.system.points) == len(psys.system.points)

    def test_semantics_survive_roundtrip(self):
        from repro.core import PostAssignment, ProbabilityAssignment
        from repro.testing import parity_fact

        psys = random_psys(seed=9, depth=2, observability=("clock", "full"))
        rebuilt = system_from_json(system_to_json(psys))
        fact = parity_fact()
        original = ProbabilityAssignment(PostAssignment(psys))
        recovered = ProbabilityAssignment(PostAssignment(rebuilt))
        original_values = sorted(
            original.inner_probability(0, point, fact) for point in psys.system.points
        )
        recovered_values = sorted(
            recovered.inner_probability(0, point, fact)
            for point in rebuilt.system.points
        )
        assert original_values == recovered_values

    def test_json_is_text(self):
        psys = random_psys(seed=10, depth=1)
        text = system_to_json(psys, indent=2)
        assert text.startswith("{")
        assert "trees" in text
