"""E04 -- the Section 5 die: whole space vs split sample spaces.

Paper claims: with S1 (all six points), p2 knows Pr(even) = 1/2; with S2
(split into {c1,c2,c3} / {c4,c5,c6}), p2 only knows Pr(even) is 1/3 or 2/3.
Subdividing the sample space makes the agent's knowledge *less* precise.
"""

from fractions import Fraction

from repro.core import ProbabilityAssignment
from repro.examples_lib import die_assignments, die_system
from repro.reporting import print_table


def run_experiment():
    psys, even = die_system()
    assignments = die_assignments(psys)
    whole = ProbabilityAssignment(assignments.whole)
    split = ProbabilityAssignment(assignments.split)
    c = assignments.time2_points[0]
    return {
        "whole_values": sorted(
            {whole.probability(1, point, even) for point in assignments.time2_points}
        ),
        "split_values": sorted(
            {split.probability(1, point, even) for point in assignments.time2_points}
        ),
        "whole_interval": whole.knowledge_interval(1, c, even),
        "split_interval": split.knowledge_interval(1, c, even),
    }


def test_e04_die(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E04  the die: sample-space subdivision weakens knowledge",
        ["assignment", "Pr(even) values", "K-interval (paper)", "K-interval (measured)"],
        [
            ("S1 whole", results["whole_values"], "[1/2, 1/2]", results["whole_interval"]),
            ("S2 split", results["split_values"], "[1/3, 2/3]", results["split_interval"]),
        ],
    )
    assert results["whole_values"] == [Fraction(1, 2)]
    assert results["split_values"] == [Fraction(1, 3), Fraction(2, 3)]
    assert results["whole_interval"] == (Fraction(1, 2), Fraction(1, 2))
    assert results["split_interval"] == (Fraction(1, 3), Fraction(2, 3))
