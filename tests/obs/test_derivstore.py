"""Hash-consed ``repro-explain/2``: lossless bridge, Merkle invariants."""

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.obs import (
    EXPLAIN_SCHEMA,
    EXPLAIN_SCHEMA_2,
    Derivation,
    DerivationNode,
    DerivationStore,
    decode_derivation,
    downgrade,
    encode_derivation,
    encoded_size,
    node_fingerprint,
    upgrade,
)
from repro.obs.derivstore import decode_derivations, node_from_table


def _canonical(payload):
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# Hypothesis strategy: arbitrary derivation trees with shared shapes
# ----------------------------------------------------------------------

_points = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "bit": st.integers(min_value=0, max_value=7),
            "time": st.integers(min_value=0, max_value=3),
            "label": st.sampled_from(["(r0, 0)", "(r1, 1)", "(r2, 2)"]),
        }
    ),
)

_details = st.fixed_dictionaries(
    {},
    optional={
        "measure": st.fractions(min_value=0, max_value=1),
        "count": st.integers(min_value=0, max_value=9),
        "witness": st.lists(st.integers(min_value=0, max_value=7), max_size=3),
    },
)


def _node_builder(children):
    return st.builds(
        DerivationNode,
        rule=st.sampled_from(["prop", "knows", "pr-at-least", "cell", "gfp-step"]),
        formula=st.sampled_from(["heads", "K0 heads", "Pr0(coord) >= 1/2", "C_G^a coord"]),
        point=_points,
        holds=st.booleans(),
        definition=st.sampled_from(["Section 4", "Section 5", "Theorem 7"]),
        detail=_details,
        children=children,
    )


_nodes = st.recursive(
    _node_builder(st.just(())),
    lambda inner: _node_builder(st.lists(inner, min_size=1, max_size=3).map(tuple)),
    max_leaves=10,
)

_derivations = st.builds(
    Derivation,
    assignment=st.sampled_from(["post", "fut", "prior"]),
    formula=st.sampled_from(["K0 heads", "Pr0(coord) >= 1/2"]),
    point=_points,
    root=_nodes,
)


def wide_derivation(copies=6):
    """One shared subtree referenced ``copies`` times: the dedup case."""
    shared = DerivationNode(
        rule="cell",
        formula="heads",
        point={"bit": 0, "time": 1, "label": "(r0, 1)"},
        holds=True,
        definition="Section 5",
        detail={"measure": Fraction(1, 2), "mask": 0b1010},
        children=(
            DerivationNode(
                rule="prop",
                formula="heads",
                point={"bit": 0, "time": 0, "label": "(r0, 0)"},
                holds=True,
                definition="Section 5",
            ),
        ),
    )
    root = DerivationNode(
        rule="gfp-step",
        formula="C_G^a coord",
        point={"bit": 1, "time": 1, "label": "(r1, 1)"},
        holds=True,
        definition="Section 8",
        children=tuple(shared for _ in range(copies)),
    )
    return Derivation(
        assignment="post",
        formula="C_G^a coord",
        point={"bit": 1, "time": 1, "label": "(r1, 1)"},
        root=root,
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_derivations)
    def test_upgrade_downgrade_is_byte_identity(self, derivation):
        # the pinned acceptance property: /1 -> /2 -> /1 reproduces the
        # canonical bytes exactly, for arbitrary derivation trees
        doc_1 = json.loads(_canonical(derivation.json_ready()))
        doc_2 = upgrade(doc_1)
        assert doc_2["schema"] == EXPLAIN_SCHEMA_2
        back = downgrade(doc_2)
        assert _canonical(back) == _canonical(doc_1)

    @settings(max_examples=60, deadline=None)
    @given(_derivations)
    def test_fingerprint_is_invariant_under_the_bridge(self, derivation):
        doc_2 = upgrade(derivation.json_ready())
        decoded = decode_derivation(doc_2)
        assert decoded.fingerprint() == derivation.fingerprint()

    @settings(max_examples=40, deadline=None)
    @given(_derivations)
    def test_node_fingerprint_equals_stored_ref(self, derivation):
        # the fingerprint function and the store must agree: the /2 root
        # ref is exactly node_fingerprint of the root
        doc_2 = encode_derivation(derivation)
        assert doc_2["root"] == node_fingerprint(derivation.root)
        for ref, payload in doc_2["nodes"].items():
            rebuilt = node_from_table(doc_2["nodes"], ref)
            assert node_fingerprint(rebuilt) == ref

    def test_upgrade_passes_v2_through(self):
        doc_2 = encode_derivation(wide_derivation())
        assert upgrade(doc_2) == doc_2

    def test_downgrade_passes_v1_through(self):
        doc_1 = wide_derivation().json_ready()
        assert downgrade(doc_1) == doc_1


class TestHashConsing:
    def test_shared_subtrees_stored_once(self):
        doc_2 = encode_derivation(wide_derivation(copies=6))
        # root + shared cell + its prop leaf: 3 distinct subtrees,
        # though the tree form writes the cell and leaf 6 times each
        assert len(doc_2["nodes"]) == 3

    def test_store_counts_added_and_deduped(self):
        store = DerivationStore()
        store.add(wide_derivation(copies=6).root)
        assert store.nodes_added == 3
        # 5 repeated cells, each also answering for its leaf child
        assert store.nodes_deduped == 10

    def test_encoding_wins_on_wide_derivations(self):
        derivation = wide_derivation(copies=6)
        assert encoded_size(encode_derivation(derivation)) < encoded_size(
            derivation.json_ready()
        )

    def test_encode_many_shares_across_derivations(self):
        first = wide_derivation(copies=2)
        second = wide_derivation(copies=3)
        store = DerivationStore()
        doc = store.encode_many([first, second])
        separate = sum(
            len(encode_derivation(d)["nodes"]) for d in (first, second)
        )
        assert len(doc["nodes"]) < separate
        assert [entry["root"] for entry in doc["roots"]] == [
            node_fingerprint(first.root),
            node_fingerprint(second.root),
        ]
        decoded = decode_derivations(doc)
        assert [d.fingerprint() for d in decoded] == [
            first.fingerprint(),
            second.fingerprint(),
        ]


class TestMalformedDocuments:
    def test_dangling_reference_is_an_error(self):
        doc_2 = encode_derivation(wide_derivation())
        del doc_2["nodes"][doc_2["root"]]
        with pytest.raises(ProvenanceError):
            decode_derivation(doc_2)

    def test_missing_field_is_an_error(self):
        doc_2 = encode_derivation(wide_derivation())
        del doc_2["nodes"][doc_2["root"]]["rule"]
        with pytest.raises(ProvenanceError):
            decode_derivation(doc_2)

    def test_non_reference_children_are_an_error(self):
        doc_2 = encode_derivation(wide_derivation())
        doc_2["nodes"][doc_2["root"]]["children"] = [42]
        with pytest.raises(ProvenanceError):
            decode_derivation(doc_2)

    def test_unknown_schema_is_an_error(self):
        with pytest.raises(ProvenanceError):
            decode_derivation({"schema": "repro-explain/9"})

    def test_multi_root_document_points_at_decode_derivations(self):
        doc = DerivationStore().encode_many([wide_derivation()])
        with pytest.raises(ProvenanceError, match="decode_derivations"):
            decode_derivation(doc)

    def test_decode_accepts_both_schemas(self):
        derivation = wide_derivation()
        from_1 = decode_derivation(derivation.json_ready())
        from_2 = decode_derivation(encode_derivation(derivation))
        assert from_1.fingerprint() == from_2.fingerprint()
        assert from_1.json_ready()["schema"] == EXPLAIN_SCHEMA
