# Convenience targets for the reproduction.

PYTHON ?= python3

.PHONY: install test bench examples quicktest clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

quicktest:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly -k "not properties and not random_systems"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis .benchmarks build *.egg-info
