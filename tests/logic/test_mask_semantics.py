"""Mask-based extension computation agrees with the point-set boundary."""

from fractions import Fraction

import pytest

from repro.core import standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import Model, parse


@pytest.fixture()
def model():
    example = three_agent_coin_system()
    post = standard_assignments(example.psys)["post"]
    return Model(post, {"heads": example.heads})


FORMULAS = [
    "heads",
    "!heads",
    "heads & !heads",
    "heads | !heads",
    "heads -> heads",
    "heads <-> heads",
    "K2 heads",
    "!K0 heads",
    "E{0,1} (heads | !heads)",
    "C{0,1} (heads | !heads)",
    "Pr0(heads) >= 1/2",
    "Pr0(heads) <= 1/2",
    "X heads",
    "(!heads) U heads",
]


@pytest.mark.parametrize("text", FORMULAS)
def test_extension_mask_encodes_extension(model, text):
    formula = parse(text)
    extension = model.extension(formula)
    mask = model.extension_mask(formula)
    assert model._index.members_of(mask) == extension


@pytest.mark.parametrize("text", FORMULAS)
def test_holds_and_valid_agree_with_extension(model, text):
    formula = parse(text)
    extension = model.extension(formula)
    all_points = frozenset(model.system.points)
    assert model.valid(formula) == (extension == all_points)
    for point in model.system.points:
        assert model.holds(formula, point) == (point in extension)


def test_full_extension_reuses_the_cached_point_set(model):
    tautology = parse("heads | !heads")
    assert model.extension(tautology) is model._all_points()
    assert model._all_points() is model._all_points()


def test_probabilistic_common_knowledge_masks(model):
    formula = parse("C{0,1}^1/2 (heads | !heads)")
    assert model.valid(formula)
    nobody = parse("C{0,1}^1/1 heads")
    assert model.extension(nobody) == frozenset()
