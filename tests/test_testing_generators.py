"""The deterministic pseudo-random system generators used by the tests."""

import pytest

from repro.core import Fact
from repro.testing import (
    all_observability_profiles,
    first_branch_fact,
    history_fact,
    parity_fact,
    random_psys,
    random_tree,
    two_agent_coin_psys,
)


class TestRandomTree:
    def test_deterministic(self):
        first = random_tree(seed=42, depth=2)
        second = random_tree(seed=42, depth=2)
        assert first.nodes == second.nodes
        assert {edge: first.edge_probability(*edge) for edge in first.edges} == {
            edge: second.edge_probability(*edge) for edge in second.edges
        }

    def test_distinct_seeds_differ(self):
        # some pair of nearby seeds must give different structures
        trees = [random_tree(seed=s, depth=2) for s in range(5)]
        assert len({len(tree.runs) for tree in trees}) > 1

    def test_probabilities_valid(self):
        for seed in range(10):
            tree = random_tree(seed=seed, depth=3)
            assert sum(tree.run_probability(run) for run in tree.runs) == 1

    def test_root_always_branches(self):
        for seed in range(10):
            tree = random_tree(seed=seed, depth=2)
            assert len(tree.children(tree.root)) >= 2

    def test_observability_modes(self):
        tree = random_tree(seed=1, depth=2, observability=("blind", "clock"))
        blind_states = {point.local_state(0) for point in tree.points}
        clock_states = {point.local_state(1) for point in tree.points}
        assert blind_states == {"blind"}
        assert clock_states == {("clock", time) for time in range(3)}

    def test_parity_mode(self):
        tree = random_tree(seed=1, depth=2, observability=("parity", "clock"))
        assert {point.local_state(0)[0] for point in tree.points} == {"parity"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            random_tree(seed=1, observability=("telepathic", "clock")).points

    def test_observability_length_checked(self):
        with pytest.raises(ValueError):
            random_tree(seed=1, num_agents=2, observability=("clock",))


class TestRandomPsys:
    def test_tree_count(self):
        psys = random_psys(seed=3, num_trees=4, depth=1)
        assert len(psys.trees) == 4

    def test_deterministic(self):
        assert len(random_psys(5, depth=2).system.points) == len(
            random_psys(5, depth=2).system.points
        )


class TestFacts:
    def test_parity_fact_values(self):
        psys = random_psys(seed=2, depth=2)
        fact = parity_fact()
        for point in psys.system.points:
            history = point.global_state.environment.history
            assert fact.holds_at(point) == (sum(history) % 2 == 0)

    def test_first_branch_fact(self):
        psys = random_psys(seed=2, depth=2)
        fact = first_branch_fact()
        for point in psys.system.points:
            history = point.global_state.environment.history
            expected = bool(history) and history[0] == 0
            assert fact.holds_at(point) == expected

    def test_history_fact_custom(self):
        psys = random_psys(seed=2, depth=2)
        fact = history_fact(lambda history: len(history) == 1, name="time-1")
        for point in psys.system.points:
            assert fact.holds_at(point) == (point.time == 1)


class TestHelpers:
    def test_two_agent_coin_shape(self):
        psys = two_agent_coin_psys()
        assert len(psys.system.runs) == 2
        assert psys.system.is_synchronous()

    def test_observer_sees_variant(self):
        psys = two_agent_coin_psys(observer_sees=True)
        time1 = psys.system.points_at_time(1)
        assert len({point.local_state(1) for point in time1}) == 2

    def test_all_observability_profiles(self):
        profiles = all_observability_profiles(2)
        assert len(profiles) == 16
        assert ("blind", "full") in profiles
