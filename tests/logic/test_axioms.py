"""The executable axiom system for knowledge and probability."""

import pytest

from repro.core import standard_assignments
from repro.examples_lib import three_agent_coin_system
from repro.logic import (
    Model,
    Prop,
    check_consistency_axiom,
    check_distribution,
    check_monotonicity,
    check_negative_introspection,
    check_positive_introspection,
    check_probability_bounds,
    check_superadditivity,
    check_veridicality,
    full_audit,
)

AGENTS = (0, 1, 2)


@pytest.fixture(scope="module")
def coin():
    return three_agent_coin_system()


@pytest.fixture(scope="module")
def post_model(coin):
    named = standard_assignments(coin.psys)
    return Model(named["post"], {"heads": coin.heads})


@pytest.fixture(scope="module")
def prior_model(coin):
    named = standard_assignments(coin.psys)
    return Model(named["prior"], {"heads": coin.heads})


@pytest.fixture(scope="module")
def formulas():
    heads = Prop("heads")
    return [heads, ~heads, heads & ~heads, heads | ~heads]


class TestS5:
    def test_distribution(self, post_model, formulas):
        report = check_distribution(post_model, AGENTS, formulas)
        assert report.valid and report.instances == len(AGENTS) * len(formulas) ** 2

    def test_veridicality(self, post_model, formulas):
        assert check_veridicality(post_model, AGENTS, formulas).valid

    def test_positive_introspection(self, post_model, formulas):
        assert check_positive_introspection(post_model, AGENTS, formulas).valid

    def test_negative_introspection(self, post_model, formulas):
        assert check_negative_introspection(post_model, AGENTS, formulas).valid


class TestProbabilityAxioms:
    def test_bounds(self, post_model, formulas):
        assert check_probability_bounds(post_model, AGENTS, formulas).valid

    def test_monotonicity(self, post_model, formulas):
        report = check_monotonicity(post_model, AGENTS, formulas)
        assert report.valid
        assert report.instances > 0  # some valid implications were found

    def test_superadditivity(self, post_model, formulas):
        report = check_superadditivity(post_model, AGENTS, formulas)
        assert report.valid and report.instances > 0

    def test_superadditivity_on_async_model(self, formulas):
        # superadditivity of inner measures survives non-measurability
        from repro.core import PostAssignment, ProbabilityAssignment
        from repro.examples_lib import repeated_coin_system

        example = repeated_coin_system(2)
        post = ProbabilityAssignment(PostAssignment(example.psys))
        model = Model(post, {"heads": example.most_recent_heads})
        heads = Prop("heads")
        report = check_superadditivity(model, (0,), [heads, ~heads])
        assert report.valid


class TestConsistencyAxiom:
    def test_holds_for_post(self, post_model, formulas):
        assert check_consistency_axiom(post_model, AGENTS, formulas).valid

    def test_fails_for_prior(self, prior_model, formulas):
        # p3 knows the outcome while P_prior still spreads probability:
        # the consistency axiom fails, certifying P_prior inconsistent.
        report = check_consistency_axiom(prior_model, AGENTS, formulas)
        assert not report.valid
        assert report.failures


class TestAudit:
    def test_full_audit_post(self, post_model, formulas):
        reports = full_audit(post_model, AGENTS, formulas)
        assert all(report.valid for report in reports)

    def test_full_audit_prior_fails_only_consistency(self, prior_model, formulas):
        reports = full_audit(prior_model, AGENTS, formulas)
        verdicts = {report.name: report.valid for report in reports}
        assert not verdicts["CONS"]
        del verdicts["CONS"]
        assert all(verdicts.values())
