"""Break-even and safety for betting rules (Section 6, Appendix B.2).

Definitions made executable:

* ``p_i`` *breaks even* with ``Bet(phi, alpha)`` w.r.t. assignment ``S`` at
  ``c`` if ``E_{S_ic}[W_f] >= 0`` for every strategy ``f`` of the opponent.
* ``Bet(phi, alpha)`` is *S-safe* for ``p_i`` at ``c`` if ``p_i`` knows it
  breaks even: it breaks even at every point of ``K_i(c)``.

Two evaluation routes are provided:

* **enumerated** -- quantify over an explicit finite family of strategies
  (exhaustive menus from :mod:`repro.betting.strategies`); this is the
  brute-force route the theorem verifiers use as ground truth;
* **analytic** -- the closed form the proof of Theorem 7 derives: against
  the ``Tree^j`` spaces the opponent's payoff is constant on each space, so
  break-even against *all* strategies reduces to ``(mu_id)_*(phi) >= alpha``.

When the winnings variable is not measurable (asynchronous systems), the
expectation is taken in the lower sense -- exactly Appendix B.2's inner
expectation, which the paper shows keeps Theorem 7 true.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..core.assignments import ProbabilityAssignment
from ..core.facts import Fact
from ..core.model import Point
from ..errors import NotMeasurableError
from ..probability.fractionutil import FractionLike, ZERO, as_fraction
from ..probability.space import FiniteProbabilitySpace
from .game import BettingRule
from .strategies import Strategy


def expected_winnings(
    space: FiniteProbabilitySpace,
    winnings: Callable[[Point], Fraction],
    semantics: str = "auto",
) -> Fraction:
    """``E[W_f]`` over a point space.

    ``semantics``: ``"exact"`` demands measurability; ``"lower"`` /
    ``"upper"`` use the corresponding bounding expectation; ``"auto"``
    (default) uses the exact expectation when the variable is measurable and
    falls back to the lower expectation otherwise (the conservative reading
    Appendix B.2 adopts for the safety definition).
    """
    if semantics == "exact":
        return space.expectation(winnings)
    if semantics == "lower":
        return space.lower_expectation(winnings)
    if semantics == "upper":
        return space.upper_expectation(winnings)
    if semantics != "auto":
        raise ValueError(f"unknown expectation semantics {semantics!r}")
    try:
        return space.expectation(winnings)
    except NotMeasurableError:
        return space.lower_expectation(winnings)


def breaks_even_with(
    assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    rule: BettingRule,
    strategy: Strategy,
    semantics: str = "auto",
) -> bool:
    """``E_{S_i,point}[W_f] >= 0`` for one specific strategy."""
    space = assignment.space(agent, point)
    return expected_winnings(space, rule.winnings(strategy), semantics) >= ZERO


def breaks_even(
    assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    rule: BettingRule,
    strategies: Iterable[Strategy],
    semantics: str = "auto",
) -> bool:
    """Break-even against every strategy in the (finite) family."""
    space = assignment.space(agent, point)
    return all(
        expected_winnings(space, rule.winnings(strategy), semantics) >= ZERO
        for strategy in strategies
    )


def is_safe(
    assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    rule: BettingRule,
    strategies: Sequence[Strategy],
    semantics: str = "auto",
) -> bool:
    """``Bet(phi, alpha)`` is S-safe for ``p_i`` at ``c``: ``p_i`` knows it
    breaks even, i.e. it breaks even at every point of ``K_i(c)``."""
    system = assignment.psys.system
    return all(
        breaks_even(assignment, agent, candidate, rule, strategies, semantics)
        for candidate in system.knowledge_set(agent, point)
    )


def worst_expected_winnings(
    assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    rule: BettingRule,
    strategies: Iterable[Strategy],
    semantics: str = "auto",
) -> Fraction:
    """The minimum of ``E[W_f]`` over the strategy family at one point."""
    space = assignment.space(agent, point)
    return min(
        expected_winnings(space, rule.winnings(strategy), semantics)
        for strategy in strategies
    )


# ----------------------------------------------------------------------
# Analytic characterization (the computation inside Theorem 7's proof)
# ----------------------------------------------------------------------


def breaks_even_analytic(
    opponent_assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    fact: Fact,
    alpha: FractionLike,
) -> bool:
    """Break-even against *all* strategies, via the Theorem 7 closed form.

    On ``Tree^j_id`` the opponent's local state -- hence its offered payoff
    ``beta`` -- is constant.  If the rule rejects, the expectation is 0; if
    it accepts (``beta >= 1/alpha``), the (lower) expectation is
    ``beta * (mu_id)_*(phi) - 1``, worst at ``beta = 1/alpha``.  So break-even
    for every strategy holds iff ``(mu_id)_*(phi) >= alpha``.
    """
    threshold = as_fraction(alpha)
    return opponent_assignment.inner_probability(agent, point, fact) >= threshold


def is_safe_analytic(
    opponent_assignment: ProbabilityAssignment,
    agent: int,
    point: Point,
    fact: Fact,
    alpha: FractionLike,
) -> bool:
    """``Bet(phi, alpha)`` is ``P^j``-safe at ``c``, in closed form.

    By Theorem 7 this is equivalent to ``(P^j, c) |= K_i^alpha phi``; the
    equivalence itself is *verified* (against enumerated strategies) by
    :func:`repro.betting.theorems.verify_theorem7`.
    """
    threshold = as_fraction(alpha)
    system = opponent_assignment.psys.system
    return all(
        opponent_assignment.inner_probability(agent, candidate, fact) >= threshold
        for candidate in system.knowledge_set(agent, point)
    )


def refuting_strategy(
    opponent_assignment: ProbabilityAssignment,
    agent: int,
    opponent: int,
    point: Point,
    fact: Fact,
    alpha: FractionLike,
) -> Optional[Strategy]:
    """The proof's witness when the bet is unsafe, or ``None`` if safe.

    If ``(mu_id)_*(phi) < alpha`` at some ``d in K_i(c)``, the strategy that
    offers ``1/alpha`` throughout ``K_j(d)`` and the harmless payoff 1
    elsewhere gives the agent strictly negative expected winnings at ``d``.
    """
    from .strategies import targeted_strategy

    threshold = as_fraction(alpha)
    system = opponent_assignment.psys.system
    for candidate in system.knowledge_set(agent, point):
        if opponent_assignment.inner_probability(agent, candidate, fact) < threshold:
            return targeted_strategy(
                opponent,
                [candidate.local_state(opponent)],
                special_payoff=Fraction(1) / threshold,
                elsewhere_payoff=1,
            )
    return None


# ----------------------------------------------------------------------
# Safety certificates (provenance for Theorems 7-8)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SafetyCertificate:
    """The full evidence behind one safety verdict (Theorems 7-8).

    When the bet is safe, ``witness_event`` is the measurable event
    realising the inner bound at the *minimising* candidate point -- the
    concrete event whose measure certifies ``(mu_id)_* >= alpha`` at the
    tightest ``d in K_i(c)``.  When it is unsafe, ``counterexample`` is
    the first candidate (in point-index order) where the bound fails and
    ``refutation`` is the Theorem 7 proof's strategy that wins money
    there.  ``candidates`` lists every point of ``K_i(c)`` with its
    exact inner probability, so the min/argmin is re-checkable.
    """

    agent: int
    point: Point
    fact_name: str
    alpha: Fraction
    safe: bool
    #: Every candidate of ``K_i(c)`` (point-index order) with its exact
    #: inner probability ``(mu_id)_*(phi)``.
    candidates: Tuple[Tuple[Point, Fraction], ...]
    #: The candidate attaining the minimum inner probability.
    minimising_candidate: Point
    #: ``min_d (mu_id)_*(phi)`` -- safety holds iff this is ``>= alpha``.
    min_inner: Fraction
    #: When safe: the measurable witness event at the minimising candidate.
    witness_event: Optional[FrozenSet[Point]]
    #: The witness event's exact measure (equals ``min_inner`` when safe).
    witness_measure: Optional[Fraction]
    #: When unsafe: the first candidate where the bound fails.
    counterexample: Optional[Point]
    #: When unsafe: the opponent strategy refuting safety there.
    refutation: Optional[Strategy]


def safety_certificate(
    opponent_assignment: ProbabilityAssignment,
    agent: int,
    opponent: int,
    point: Point,
    fact: Fact,
    alpha: FractionLike,
) -> SafetyCertificate:
    """:func:`is_safe_analytic` with its work shown (Theorems 7-8).

    Theorem 7: ``Bet(phi, alpha)`` is safe for ``p_i`` against ``p_j`` at
    ``c`` iff ``(P^j, c) |= K_i^alpha phi``, i.e. the inner probability
    of ``phi`` is at least ``alpha`` at every ``d in K_i(c)``.  The
    certificate materialises both directions: the witness event whose
    exact measure realises the bound at the tightest candidate when the
    bet is safe, and the failing candidate plus the refuting strategy
    (the proof's construction, Theorem 8's sharpness direction) when it
    is not.  Candidate order follows the system's shared point index, so
    certificates are deterministic and diffable across runs.
    """
    threshold = as_fraction(alpha)
    psys = opponent_assignment.psys
    system = psys.system
    index = psys.point_index
    ordered = sorted(system.knowledge_set(agent, point), key=index.position)
    candidates = tuple(
        (candidate, opponent_assignment.inner_probability(agent, candidate, fact))
        for candidate in ordered
    )
    minimising_candidate, min_inner = min(candidates, key=lambda pair: pair[1])
    safe = min_inner >= threshold
    witness_event: Optional[FrozenSet[Point]] = None
    witness_measure: Optional[Fraction] = None
    counterexample: Optional[Point] = None
    refutation: Optional[Strategy] = None
    if safe:
        space = opponent_assignment.space(agent, minimising_candidate)
        event = opponent_assignment.satisfying_points(
            agent, minimising_candidate, fact
        )
        witness_event = frozenset(space.inner_witness(event))
        witness_measure = space.inner_measure(event)
    else:
        counterexample = next(
            candidate for candidate, inner in candidates if inner < threshold
        )
        refutation = refuting_strategy(
            opponent_assignment, agent, opponent, point, fact, threshold
        )
    return SafetyCertificate(
        agent=agent,
        point=point,
        fact_name=fact.name,
        alpha=threshold,
        safe=safe,
        candidates=candidates,
        minimising_candidate=minimising_candidate,
        min_inner=min_inner,
        witness_event=witness_event,
        witness_measure=witness_measure,
        counterexample=counterexample,
        refutation=refutation,
    )
