"""E15 -- Appendix B.3, Theorem 11: putting the betting game in the system.

Paper claims: for propositional phi, (P^j, c) |= K_i^alpha phi iff
(P^j, c_f) |= K_i^alpha phi in R^phi iff (P_post, c_f^+) |= K_i^alpha phi
-- after hearing the offer, the agent's own posterior already accounts for
the opponent's knowledge.
"""

from repro.betting import (
    build_embedded_system,
    constant_strategy,
    targeted_strategy,
    verify_theorem11,
)
from repro.examples_lib import three_agent_coin_system
from repro.reporting import print_table


def run_experiment():
    coin = three_agent_coin_system()
    tails_local = next(
        point.local_state(2)
        for point in coin.psys.system.points_at_time(1)
        if point.local_state(2)[0] == "saw-tails"
    )
    results = {}
    for name, opponent, seeds in (
        ("vs p3, constant offers", 2, [constant_strategy(2, 2)]),
        (
            "vs p3, outcome-revealing offers",
            2,
            [constant_strategy(2, 2), targeted_strategy(2, [tails_local], 2, 100)],
        ),
        ("vs p2, constant offers", 1, [constant_strategy(1, 3)]),
    ):
        embedded = build_embedded_system(coin.psys, 0, opponent, seeds)
        report = verify_theorem11(embedded, coin.heads)
        results[name] = (len(embedded.strategies), report)
    return results


def test_e15_theorem11(benchmark):
    results = benchmark(run_experiment)
    print_table(
        "E15  Theorem 11: (a) <=> (b) <=> (c) in R^phi",
        ["strategy family", "strategies", "triples checked", "measured"],
        [
            (name, family_size, report.checked, "equivalent" if report.holds else "FAILS")
            for name, (family_size, report) in results.items()
        ],
    )
    assert all(report.holds for _, report in results.values())
